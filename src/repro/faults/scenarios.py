"""Named chaos scenarios: seeded fault-plan builders.

Each scenario turns ``(seed, horizon, n_locals)`` into a concrete
:class:`~repro.faults.plan.FaultPlan` using its own deterministic RNG, so
the same name + seed always yields the same schedule — on the simulator and
on the live runtime alike.  Timings are fractions of the workload horizon
rather than absolute seconds, so scenarios scale with run length.

The scenario also carries the failure-detection posture that makes it
meaningful: ``crash-reconnect`` keeps the detector's grace period *longer*
than the outage so recovery happens purely through reconnect + session
resume (every window stays exact), while ``dead-local`` detects quickly so
the root degrades instead of stalling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["ChaosScenario", "SCENARIOS", "build_plan"]


@dataclass(frozen=True, slots=True)
class ChaosScenario:
    """One named fault pattern plus its detection posture.

    Attributes:
        name: CLI-facing identifier.
        description: One line for ``--list`` output.
        detect_after_s: Failure-detector silence threshold in event-time
            seconds, or ``None`` to keep the detector in grace for the
            whole run (recovery must come from reconnect/resume).
        build: ``(rng, horizon_s, n_targets) -> events``.  The target
            pool is the local set for flat scenarios and the shard set
            for mesh ones.
        substrate: ``"flat"`` runs on the simulator or the flat live
            cluster; ``"mesh"`` needs the sharded mesh (and a failover
            controller); ``"query"`` drives the durable query plane.
    """

    name: str
    description: str
    detect_after_s: float | None
    build: Callable[[random.Random, float, int], tuple[FaultEvent, ...]]
    substrate: str = "flat"


def _pick_local(rng: random.Random, n_locals: int) -> int:
    return rng.randrange(1, n_locals + 1)


def _crash_reconnect(
    rng: random.Random, horizon_s: float, n_locals: int
) -> tuple[FaultEvent, ...]:
    victim = _pick_local(rng, n_locals)
    crash_at = horizon_s * (0.35 + 0.10 * rng.random())
    down_for = horizon_s * (0.15 + 0.05 * rng.random())
    return (
        FaultEvent(at_s=crash_at, kind="crash", node=victim),
        FaultEvent(at_s=crash_at + down_for, kind="restart", node=victim),
    )


def _dead_local(
    rng: random.Random, horizon_s: float, n_locals: int
) -> tuple[FaultEvent, ...]:
    victim = _pick_local(rng, n_locals)
    crash_at = horizon_s * (0.40 + 0.10 * rng.random())
    return (FaultEvent(at_s=crash_at, kind="crash", node=victim),)


def _flaky_link(
    rng: random.Random, horizon_s: float, n_locals: int
) -> tuple[FaultEvent, ...]:
    victim = _pick_local(rng, n_locals)
    gap = max(0.15, horizon_s * 0.05)
    return (
        FaultEvent(
            at_s=horizon_s * (0.25 + 0.05 * rng.random()),
            kind="drop_link",
            node=victim,
            duration_s=gap,
        ),
        FaultEvent(
            at_s=horizon_s * (0.60 + 0.05 * rng.random()),
            kind="drop_link",
            node=victim,
            duration_s=gap,
        ),
    )


def _partition(
    rng: random.Random, horizon_s: float, n_locals: int
) -> tuple[FaultEvent, ...]:
    start = horizon_s * (0.40 + 0.05 * rng.random())
    return (
        FaultEvent(at_s=start, kind="partition_start"),
        FaultEvent(at_s=start + horizon_s * 0.15, kind="partition_heal"),
    )


def _kill_shard(
    rng: random.Random, horizon_s: float, n_shards: int
) -> tuple[FaultEvent, ...]:
    # The mesh runner pins the kill to a protocol point (after the
    # victim's first answered window) rather than this wall-clock time;
    # the event records *which* shard dies and the nominal schedule.
    victim = rng.randrange(n_shards)
    return (
        FaultEvent(
            at_s=horizon_s * (0.40 + 0.10 * rng.random()),
            kind="kill_shard",
            node=victim,
        ),
    )


def _driver_drop(
    rng: random.Random, horizon_s: float, n_locals: int
) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            at_s=horizon_s * (0.25 + 0.10 * rng.random()),
            kind="driver_drop",
        ),
    )


SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="crash-reconnect",
            description=(
                "one local crashes mid-stream and restarts; session resume "
                "recovers every window exactly"
            ),
            detect_after_s=None,
            build=_crash_reconnect,
        ),
        ChaosScenario(
            name="dead-local",
            description=(
                "one local crashes and never returns; the root detects it "
                "and answers later windows degraded"
            ),
            detect_after_s=0.25,
            build=_dead_local,
        ),
        ChaosScenario(
            name="flaky-link",
            description=(
                "one local's root link drops twice; retransmits and "
                "reconnects recover every window"
            ),
            detect_after_s=None,
            build=_flaky_link,
        ),
        ChaosScenario(
            name="partition",
            description=(
                "every local is cut off from the root, then the partition "
                "heals; resume catches the backlog up"
            ),
            detect_after_s=None,
            build=_partition,
        ),
        ChaosScenario(
            name="kill-shard",
            description=(
                "one root shard dies mid-run; its windows fail over to "
                "the ring successor and replay from retained buffers"
            ),
            detect_after_s=0.15,
            build=_kill_shard,
            substrate="mesh",
        ),
        ChaosScenario(
            name="kill-shard-with-relay",
            description=(
                "kill-shard behind a relay tier; relays re-send retained "
                "combined frames to the successor"
            ),
            detect_after_s=0.15,
            build=_kill_shard,
            substrate="mesh",
        ),
        ChaosScenario(
            name="driver-drop",
            description=(
                "the query driver's connection dies mid-run; it redials "
                "with its cursor and receives every result exactly once"
            ),
            detect_after_s=None,
            build=_driver_drop,
            substrate="query",
        ),
    )
}


def build_plan(
    name: str, *, seed: int, horizon_s: float, n_locals: int
) -> FaultPlan:
    """Instantiate the named scenario into a concrete plan."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        )
    rng = random.Random(f"{name}:{seed}")
    events = scenario.build(rng, horizon_s, n_locals)
    return FaultPlan(seed=seed, horizon_s=horizon_s, events=events)
