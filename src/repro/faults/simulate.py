"""Compile a fault plan onto the discrete-event simulator.

The simulator has no connections to sever — its fault surface is the
:class:`~repro.network.channels.Channel` outage mechanism plus scheduled
calls into the root's failure-detector API.  :func:`compile_plan` maps each
:class:`~repro.faults.plan.FaultPlan` event onto that surface:

* ``crash``/``restart`` — every channel touching the node gets an outage
  covering the down interval (an unmatched crash extends past the horizon),
  and, when a detection delay is given, ``root.mark_dead`` / ``mark_alive``
  are scheduled to mirror the live heartbeat monitor's verdicts.
* ``drop_link`` — a short outage of the event's ``duration_s`` on both
  directions of the node↔root link (the live runtime's analogue is a sever
  plus automatic reconnect).
* ``partition_start``/``partition_heal`` — outages on every channel that
  touches the root.

The function returns the canonical applied-event strings so tests can
assert schedule parity with the live chaos driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.root_node import DemaRootNode
    from repro.network.simulator import Simulator

__all__ = ["compile_plan"]

#: How far past the plan horizon an unhealed fault's outage extends —
#: effectively "until the run ends", without needing the run length.
_OPEN_ENDED_SLACK_S = 1000.0


def compile_plan(
    plan: FaultPlan,
    simulator: "Simulator",
    *,
    root: "DemaRootNode | None" = None,
    root_id: int = 0,
    detect_after_s: float | None = None,
) -> list[str]:
    """Install ``plan`` on ``simulator``; returns the applied schedule.

    Args:
        plan: The fault schedule (event-time seconds).
        simulator: The target; its channels must already be wired.
        root: When given together with ``detect_after_s``, failure
            detection is simulated: ``mark_dead`` fires that long into a
            crash window (if the node is still down) and ``mark_alive``
            fires at the restart.  Without it, crashes rely purely on the
            reliability timers (resume semantics).
        root_id: The root's node id (partitions cut channels touching it).
        detect_after_s: The simulated failure detector's silence threshold.
    """
    horizon = plan.horizon_s + _OPEN_ENDED_SLACK_S
    channels = simulator.channels

    for node, intervals in plan.crash_intervals().items():
        for start, end in intervals:
            stop = horizon if end is None else end
            for (src, dst), channel in channels.items():
                if node in (src, dst):
                    channel.add_outage(start, stop)
            if root is not None and detect_after_s is not None:
                detect_at = start + detect_after_s
                if detect_at < stop:
                    simulator.schedule(
                        detect_at,
                        lambda t, n=node: root.mark_dead(n, t),
                    )
                    if end is not None:
                        simulator.schedule(
                            end, lambda t, n=node: root.mark_alive(n)
                        )

    for event in plan.schedule():
        if event.kind != "drop_link":
            continue
        gap = event.duration_s if event.duration_s > 0 else 0.25
        for (src, dst), channel in channels.items():
            if {src, dst} == {event.node, root_id}:
                channel.add_outage(event.at_s, event.at_s + gap)

    for start, end in plan.partition_intervals():
        stop = horizon if end is None else end
        for (src, dst), channel in channels.items():
            if root_id in (src, dst):
                channel.add_outage(start, stop)

    return list(plan.described())
