"""End-to-end chaos runs: a named scenario on either substrate, graded.

:func:`run_chaos` generates a seeded workload, computes the fault-free
ground truth with a plain :class:`~repro.core.engine.DemaEngine`, then runs
the *same* workload under the scenario's fault plan — either compiled onto
the simulator or injected into the live asyncio cluster — and classifies
every ground-truth window:

``recovered``
    Answered with completeness 1.0 and a value bit-identical to the
    fault-free run (retransmits, reconnects and session resume hid the
    fault entirely).
``degraded``
    Answered from a strict subset of the locals (completeness < 1.0)
    because the failure detector declared someone dead.
``lost``
    No answer at all — the window was aborted or the run gave up on it.
``mismatch``
    Answered at full completeness but with a different value; this is
    never expected and always indicates a protocol bug.

This module imports the live runtime, so :mod:`repro.faults` loads it
lazily; plan building stays importable without asyncio machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.generator import GeneratorConfig, workload
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, ToleranceConfig
from repro.faults.scenarios import SCENARIOS, build_plan
from repro.faults.simulate import compile_plan
from repro.network.topology import TopologyConfig
from repro.obs.live.config import TelemetryConfig
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.cluster import LiveClusterConfig, run_live
from repro.streaming.windows import Window

__all__ = ["ChaosReport", "run_chaos"]

#: Detector grace when the scenario declares no detection threshold: long
#: enough that nothing is ever declared dead within a test-scale run.
_NO_DETECT_GRACE_S = 3600.0


@dataclass
class ChaosReport:
    """One graded chaos run."""

    scenario: str
    mode: str
    seed: int
    plan: FaultPlan
    #: Canonical fault-event strings actually applied, in order.
    applied: list[str]
    #: Ground-truth window count (windows the fault-free run answered).
    windows: int
    #: Per-window grade: recovered / degraded / lost / mismatch.
    classes: dict[Window, str] = field(default_factory=dict)
    reconnects: int = 0
    heartbeat_misses: int = 0
    locals_declared_dead: int = 0
    wall_seconds: float = 0.0
    #: Live mode with telemetry: the run report's telemetry section
    #: (bound port, flight-recorder path, traced span count).
    telemetry: dict = field(default_factory=dict)

    def count(self, grade: str) -> int:
        """Windows with the given grade."""
        return sum(1 for g in self.classes.values() if g == grade)

    @property
    def recovered(self) -> int:
        return self.count("recovered")

    @property
    def degraded(self) -> int:
        return self.count("degraded")

    @property
    def lost(self) -> int:
        return self.count("lost")

    @property
    def mismatched(self) -> int:
        return self.count("mismatch")


def _classify(truth: dict, outcomes) -> dict:
    got = {outcome.window: outcome for outcome in outcomes}
    classes: dict[Window, str] = {}
    for window, value in truth.items():
        outcome = got.get(window)
        if outcome is None or outcome.value is None:
            classes[window] = "lost"
        elif outcome.completeness < 1.0:
            classes[window] = "degraded"
        elif outcome.value == value:
            classes[window] = "recovered"
        else:
            classes[window] = "mismatch"
    return classes


def run_chaos(
    scenario_name: str,
    *,
    mode: str = "sim",
    seed: int = 7,
    n_locals: int = 2,
    streams_per_local: int = 2,
    rate: float = 300.0,
    duration_s: float = 3.0,
    time_scale: float = 0.3,
    transport: str = "memory",
    gamma: int = 64,
    q: float = 0.5,
    tracer: Tracer = NOOP_TRACER,
    telemetry: TelemetryConfig | None = None,
) -> ChaosReport:
    """Run one named scenario and grade every window against ground truth.

    Args:
        scenario_name: A key of :data:`~repro.faults.scenarios.SCENARIOS`.
        mode: ``"sim"`` compiles the plan onto the discrete-event
            simulator; ``"live"`` injects it into the asyncio cluster.
        seed: Seeds both the workload and the scenario's fault timings.
        n_locals: Local node count (fault targets are drawn from these).
        streams_per_local: Live replay tasks per local (live mode only).
        rate: Aggregate events per second of event time.
        duration_s: Workload length in event-time seconds (= plan horizon).
        time_scale: Live mode: wall seconds per event-time second.
        transport: Live mode: ``"memory"`` or ``"tcp"``.
        gamma: Fixed slice count (adaptive γ would break bit-equality).
        q: The quantile.
        tracer: Observability hooks for the faulted run.
        telemetry: Live mode: turn on the telemetry plane (wire tracing,
            scrape endpoint, flight recorder) for the chaotic run.
    """
    if mode not in ("sim", "live"):
        raise ConfigurationError(
            f"chaos mode must be 'sim' or 'live', got {mode!r}"
        )
    scenario = SCENARIOS.get(scenario_name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown chaos scenario {scenario_name!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        )
    plan = build_plan(
        scenario_name, seed=seed, horizon_s=duration_s, n_locals=n_locals
    )
    query = QuantileQuery(q=q, gamma=gamma)
    streams = workload(
        list(range(1, n_locals + 1)),
        GeneratorConfig(
            event_rate=max(1.0, rate / n_locals),
            duration_s=duration_s,
            seed=seed,
        ),
    )
    truth_report = DemaEngine(
        query, TopologyConfig(n_local_nodes=n_locals)
    ).run(streams)
    truth = {
        outcome.window: outcome.value
        for outcome in truth_report.outcomes
        if outcome.value is not None
    }

    started = time.monotonic()
    if mode == "sim":
        tolerance = ToleranceConfig()
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=n_locals),
            reliability=tolerance.reliability,
            degrade_after_retries=True,
            tracer=tracer,
        )
        applied = compile_plan(
            plan,
            engine.simulator,
            root=engine.root,
            detect_after_s=scenario.detect_after_s,
        )
        report = engine.run(streams)
        return ChaosReport(
            scenario=scenario_name,
            mode=mode,
            seed=seed,
            plan=plan,
            applied=applied,
            windows=len(truth),
            classes=_classify(truth, report.outcomes),
            locals_declared_dead=engine.root.deaths_declared,
            wall_seconds=time.monotonic() - started,
        )

    detect = scenario.detect_after_s
    declare_dead = (
        _NO_DETECT_GRACE_S
        if detect is None
        else max(0.15, detect * time_scale)
    )
    tolerance = ToleranceConfig(declare_dead_after_s=declare_dead)
    config = LiveClusterConfig(
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        query=query,
        transport=transport,
        time_scale=time_scale,
        timeout_s=120.0,
        faults=plan,
        tolerance=tolerance,
        telemetry=telemetry,
    )
    live = run_live(config, streams, tracer=tracer)
    return ChaosReport(
        scenario=scenario_name,
        mode=mode,
        seed=seed,
        plan=plan,
        applied=list(live.fault_events),
        windows=len(truth),
        classes=_classify(truth, live.outcomes),
        reconnects=live.reconnects,
        heartbeat_misses=live.heartbeat_misses,
        locals_declared_dead=live.locals_declared_dead,
        wall_seconds=time.monotonic() - started,
        telemetry=live.telemetry,
    )
