"""End-to-end chaos runs: a named scenario on either substrate, graded.

:func:`run_chaos` generates a seeded workload, computes the fault-free
ground truth with a plain :class:`~repro.core.engine.DemaEngine`, then runs
the *same* workload under the scenario's fault plan — either compiled onto
the simulator or injected into the live asyncio cluster — and classifies
every ground-truth window:

``recovered``
    Answered with completeness 1.0 and a value bit-identical to the
    fault-free run (retransmits, reconnects and session resume hid the
    fault entirely).
``degraded``
    Answered from a strict subset of the locals (completeness < 1.0)
    because the failure detector declared someone dead.
``lost``
    No answer at all — the window was aborted or the run gave up on it.
``mismatch``
    Answered at full completeness but with a different value; this is
    never expected and always indicates a protocol bug.

This module imports the live runtime, so :mod:`repro.faults` loads it
lazily; plan building stays importable without asyncio machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.generator import GeneratorConfig, workload
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, ToleranceConfig, describe_event
from repro.faults.scenarios import SCENARIOS, build_plan
from repro.faults.simulate import compile_plan
from repro.network.topology import TopologyConfig
from repro.obs.live.config import TelemetryConfig
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.cluster import LiveClusterConfig, run_live
from repro.streaming.windows import Window

__all__ = ["ChaosReport", "run_chaos"]

#: Detector grace when the scenario declares no detection threshold: long
#: enough that nothing is ever declared dead within a test-scale run.
_NO_DETECT_GRACE_S = 3600.0


@dataclass
class ChaosReport:
    """One graded chaos run."""

    scenario: str
    mode: str
    seed: int
    plan: FaultPlan
    #: Canonical fault-event strings actually applied, in order.
    applied: list[str]
    #: Ground-truth window count (windows the fault-free run answered).
    windows: int
    #: Per-window grade: recovered / degraded / lost / mismatch.
    classes: dict[Window, str] = field(default_factory=dict)
    reconnects: int = 0
    heartbeat_misses: int = 0
    locals_declared_dead: int = 0
    wall_seconds: float = 0.0
    #: Live mode with telemetry: the run report's telemetry section
    #: (bound port, flight-recorder path, traced span count).
    telemetry: dict = field(default_factory=dict)
    #: Mesh scenarios: deployment shape and failover accounting.
    shards: int = 0
    relay_fanin: int = 0
    shard_failovers: int = 0
    windows_adopted: int = 0
    relay_frames_replayed: int = 0
    #: Query scenarios: driver connections re-established mid-run.
    driver_reconnects: int = 0
    #: Aggregate grade counts for substrates whose grading is not
    #: per-window (mesh runs grade per window but fill this directly;
    #: query runs grade per (query, window) pair).  When set, it is the
    #: source of truth for :meth:`count` and :attr:`classes` stays empty.
    class_counts: "dict[str, int] | None" = None

    def count(self, grade: str) -> int:
        """Windows (or graded pairs) with the given grade."""
        if self.class_counts is not None:
            return self.class_counts.get(grade, 0)
        return sum(1 for g in self.classes.values() if g == grade)

    @property
    def recovered(self) -> int:
        return self.count("recovered")

    @property
    def degraded(self) -> int:
        return self.count("degraded")

    @property
    def lost(self) -> int:
        return self.count("lost")

    @property
    def mismatched(self) -> int:
        return self.count("mismatch")


def _classify(truth: dict, outcomes) -> dict:
    got = {outcome.window: outcome for outcome in outcomes}
    classes: dict[Window, str] = {}
    for window, value in truth.items():
        outcome = got.get(window)
        if outcome is None or outcome.value is None:
            classes[window] = "lost"
        elif outcome.completeness < 1.0:
            classes[window] = "degraded"
        elif outcome.value == value:
            classes[window] = "recovered"
        else:
            classes[window] = "mismatch"
    return classes


def run_chaos(
    scenario_name: str,
    *,
    mode: str = "sim",
    seed: int = 7,
    n_locals: int = 2,
    streams_per_local: int = 2,
    rate: float = 300.0,
    duration_s: float = 3.0,
    time_scale: float = 0.3,
    transport: str = "memory",
    gamma: int = 64,
    q: float = 0.5,
    tracer: Tracer = NOOP_TRACER,
    telemetry: TelemetryConfig | None = None,
    shards: int = 0,
    relay_fanin: int = 0,
) -> ChaosReport:
    """Run one named scenario and grade every window against ground truth.

    Args:
        scenario_name: A key of :data:`~repro.faults.scenarios.SCENARIOS`.
        mode: ``"sim"`` compiles the plan onto the discrete-event
            simulator; ``"live"`` injects it into the asyncio cluster.
            Mesh and query scenarios run live only.
        seed: Seeds both the workload and the scenario's fault timings.
        n_locals: Local node count (fault targets are drawn from these).
        streams_per_local: Live replay tasks per local (live mode only).
        rate: Aggregate events per second of event time.
        duration_s: Workload length in event-time seconds (= plan horizon).
        time_scale: Live mode: wall seconds per event-time second.
        transport: Live mode: ``"memory"`` or ``"tcp"``.
        gamma: Fixed slice count (adaptive γ would break bit-equality).
        q: The quantile.
        tracer: Observability hooks for the faulted run.
        telemetry: Live mode: turn on the telemetry plane (wire tracing,
            scrape endpoint, flight recorder) for the chaotic run.
        shards: Mesh scenarios: root shard count (defaults to 2 — the
            smallest ring with a successor to fail onto).
        relay_fanin: Mesh scenarios: relay fan-in (``kill-shard-with-relay``
            defaults to 3; ``0`` keeps the flat local→shard wiring).
    """
    if mode not in ("sim", "live"):
        raise ConfigurationError(
            f"chaos mode must be 'sim' or 'live', got {mode!r}"
        )
    scenario = SCENARIOS.get(scenario_name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown chaos scenario {scenario_name!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        )
    if scenario.substrate == "mesh":
        return _run_mesh_chaos(
            scenario_name,
            mode=mode,
            seed=seed,
            n_locals=n_locals,
            streams_per_local=streams_per_local,
            rate=rate,
            duration_s=duration_s,
            transport=transport,
            gamma=gamma,
            q=q,
            tracer=tracer,
            telemetry=telemetry,
            shards=shards,
            relay_fanin=relay_fanin,
        )
    if scenario.substrate == "query":
        return _run_query_chaos(
            scenario_name,
            mode=mode,
            seed=seed,
            n_locals=n_locals,
            streams_per_local=streams_per_local,
            rate=rate,
            duration_s=duration_s,
            time_scale=time_scale,
            transport=transport,
            gamma=gamma,
            tracer=tracer,
        )
    if shards or relay_fanin:
        raise ConfigurationError(
            f"scenario {scenario_name!r} runs on the flat topology; "
            "--shards/--relay-fanin apply to mesh scenarios only"
        )
    plan = build_plan(
        scenario_name, seed=seed, horizon_s=duration_s, n_locals=n_locals
    )
    query = QuantileQuery(q=q, gamma=gamma)
    streams = workload(
        list(range(1, n_locals + 1)),
        GeneratorConfig(
            event_rate=max(1.0, rate / n_locals),
            duration_s=duration_s,
            seed=seed,
        ),
    )
    truth_report = DemaEngine(
        query, TopologyConfig(n_local_nodes=n_locals)
    ).run(streams)
    truth = {
        outcome.window: outcome.value
        for outcome in truth_report.outcomes
        if outcome.value is not None
    }

    started = time.monotonic()
    if mode == "sim":
        tolerance = ToleranceConfig()
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=n_locals),
            reliability=tolerance.reliability,
            degrade_after_retries=True,
            tracer=tracer,
        )
        applied = compile_plan(
            plan,
            engine.simulator,
            root=engine.root,
            detect_after_s=scenario.detect_after_s,
        )
        report = engine.run(streams)
        return ChaosReport(
            scenario=scenario_name,
            mode=mode,
            seed=seed,
            plan=plan,
            applied=applied,
            windows=len(truth),
            classes=_classify(truth, report.outcomes),
            locals_declared_dead=engine.root.deaths_declared,
            wall_seconds=time.monotonic() - started,
        )

    detect = scenario.detect_after_s
    declare_dead = (
        _NO_DETECT_GRACE_S
        if detect is None
        else max(0.15, detect * time_scale)
    )
    tolerance = ToleranceConfig(declare_dead_after_s=declare_dead)
    config = LiveClusterConfig(
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        query=query,
        transport=transport,
        time_scale=time_scale,
        timeout_s=120.0,
        faults=plan,
        tolerance=tolerance,
        telemetry=telemetry,
    )
    live = run_live(config, streams, tracer=tracer)
    return ChaosReport(
        scenario=scenario_name,
        mode=mode,
        seed=seed,
        plan=plan,
        applied=list(live.fault_events),
        windows=len(truth),
        classes=_classify(truth, live.outcomes),
        reconnects=live.reconnects,
        heartbeat_misses=live.heartbeat_misses,
        locals_declared_dead=live.locals_declared_dead,
        wall_seconds=time.monotonic() - started,
        telemetry=live.telemetry,
    )


def _run_mesh_chaos(
    scenario_name: str,
    *,
    mode: str,
    seed: int,
    n_locals: int,
    streams_per_local: int,
    rate: float,
    duration_s: float,
    transport: str,
    gamma: int,
    q: float,
    tracer: Tracer,
    telemetry: TelemetryConfig | None,
    shards: int,
    relay_fanin: int,
) -> ChaosReport:
    """Kill one root shard mid-run and grade the failover end to end.

    The victim comes from the scenario's seeded plan; the kill itself is
    pinned to a protocol point — the victim's first answered window —
    via the :meth:`~repro.mesh.servers.MeshRootServer.crash_after`
    tripwire, because an unpaced replay outruns any wall-clock schedule.
    """
    import asyncio

    from repro.mesh.cluster import (
        classify_outcomes,
        mesh_oracle,
        run_mesh_cluster,
    )
    from repro.mesh.config import MeshConfig

    if mode != "live":
        raise ConfigurationError(
            f"mesh scenario {scenario_name!r} runs on the live substrate "
            "only (the simulator has no shard plane)"
        )
    n_shards = shards if shards else 2
    if n_shards < 2:
        raise ConfigurationError(
            "kill-shard needs at least 2 shards — a lone root has no "
            "successor to fail onto"
        )
    fanin = relay_fanin
    if not fanin and scenario_name == "kill-shard-with-relay":
        fanin = 3
    plan = build_plan(
        scenario_name, seed=seed, horizon_s=duration_s, n_locals=n_shards
    )
    victim = plan.schedule()[0].node
    assert victim is not None

    query = QuantileQuery(q=q, gamma=gamma)
    streams = workload(
        list(range(1, n_locals + 1)),
        GeneratorConfig(
            event_rate=max(1.0, rate / n_locals),
            duration_s=duration_s,
            seed=seed,
        ),
    )
    config = MeshConfig(
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        n_shards=n_shards,
        relay_fanin=fanin,
        query=query,
        transport=transport,
        timeout_s=120.0,
        relay_flush_s=0.1,
        # Fast heartbeats drive the failover sweep; the *local* death
        # threshold stays loose — no local dies in these scenarios, and
        # a tight threshold lets one slow tick on a loaded host declare
        # a healthy local dead and degrade windows spuriously.
        tolerance=ToleranceConfig(
            heartbeat_interval_s=0.02, declare_dead_after_s=2.0
        ),
        telemetry=telemetry,
    )
    truth = mesh_oracle(streams, config)

    async def disturb(ctx) -> None:
        ctx.shards[victim].crash_after(1)

    started = time.monotonic()
    report = asyncio.run(
        run_mesh_cluster(config, streams, tracer=tracer, disturb=disturb)
    )
    return ChaosReport(
        scenario=scenario_name,
        mode=mode,
        seed=seed,
        plan=plan,
        applied=[describe_event(event) for event in plan.schedule()],
        windows=len(truth),
        class_counts=classify_outcomes(truth, report.outcomes),
        locals_declared_dead=report.locals_declared_dead,
        heartbeat_misses=report.heartbeat_misses,
        wall_seconds=time.monotonic() - started,
        shards=n_shards,
        relay_fanin=fanin,
        shard_failovers=report.shard_failovers,
        windows_adopted=report.windows_adopted,
        relay_frames_replayed=report.relay_frames_replayed,
        telemetry=report.telemetry,
    )


def _run_query_chaos(
    scenario_name: str,
    *,
    mode: str,
    seed: int,
    n_locals: int,
    streams_per_local: int,
    rate: float,
    duration_s: float,
    time_scale: float,
    transport: str,
    gamma: int,
    tracer: Tracer,
) -> ChaosReport:
    """Drop the query driver's connection mid-run; grade exactly-once.

    Grades per (query, window) pair: ``recovered`` results matched the
    per-query oracle bit-identically, ``lost`` pairs never arrived, and
    ``mismatch`` covers wrong values and duplicate deliveries (the
    exactly-once promise failing in either direction).
    """
    from repro.queries.runner import run_query_scenario

    if mode != "live":
        raise ConfigurationError(
            f"query scenario {scenario_name!r} runs on the live substrate "
            "only (the simulator has no query plane)"
        )
    plan = build_plan(
        scenario_name, seed=seed, horizon_s=duration_s, n_locals=n_locals
    )
    started = time.monotonic()
    qreport = run_query_scenario(
        driver_drop=True,
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        event_rate=rate,
        duration_s=duration_s,
        time_scale=max(time_scale, 0.05),
        transport=transport,
        gamma=gamma,
        seed=seed,
        tracer=None,
    )
    lost = sum(
        1 for note in qreport.mismatches if "no result for window" in note
    )
    bad = len(qreport.mismatches) - lost
    return ChaosReport(
        scenario=scenario_name,
        mode=mode,
        seed=seed,
        plan=plan,
        applied=[describe_event(event) for event in plan.schedule()],
        windows=qreport.results_graded + lost,
        class_counts={
            "recovered": qreport.results_graded - bad,
            "degraded": 0,
            "lost": lost,
            "mismatch": bad,
        },
        wall_seconds=time.monotonic() - started,
        driver_reconnects=qreport.driver_reconnects,
    )
