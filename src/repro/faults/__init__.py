"""Fault injection and crash/reconnect tolerance for Dema deployments.

The package has two halves that share one vocabulary:

* **Injection** — :mod:`repro.faults.plan` defines seeded, deterministic
  :class:`FaultPlan` schedules; :mod:`repro.faults.scenarios` names common
  patterns; :mod:`repro.faults.simulate` compiles a plan onto the
  discrete-event simulator (channel outages + scheduled detector calls);
  :mod:`repro.faults.chaos` applies the same plan to the live asyncio
  transport (stream severing, delays, reorder, partition gating).
* **Tolerance policy** — :class:`ToleranceConfig` bundles the heartbeat
  cadence, failure-detection threshold, reconnect backoff and the
  reliability (retransmit) parameters a cluster runs with while faults are
  being injected.  The mechanisms themselves live where the connections
  are: :mod:`repro.runtime.servers` (heartbeats, reconnect, resume) and
  :mod:`repro.core.root_node` (degraded answers from surviving locals).

:mod:`repro.faults.runner` (imported lazily — it pulls in the live
runtime) runs a named scenario end to end on either substrate and
classifies every window as recovered, degraded or lost.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    ToleranceConfig,
    describe_event,
)
from repro.faults.scenarios import SCENARIOS, ChaosScenario, build_plan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "ToleranceConfig",
    "describe_event",
    "SCENARIOS",
    "ChaosScenario",
    "build_plan",
    "ChaosStream",
    "ChaosController",
    "compile_plan",
    "ChaosReport",
    "run_chaos",
]

_LAZY = {
    # Imported on first touch: chaos/simulate/runner reach into the runtime
    # and simulator layers, which must not load just to build a plan.
    "ChaosStream": "repro.faults.chaos",
    "ChaosController": "repro.faults.chaos",
    "compile_plan": "repro.faults.simulate",
    "ChaosReport": "repro.faults.runner",
    "run_chaos": "repro.faults.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
