"""Deterministic fault plans shared by the simulator and the live runtime.

A :class:`FaultPlan` is a seeded, fully explicit schedule of fault events —
node crashes and restarts, link drops, network partitions — expressed in
*event time* (seconds since the run's epoch).  The same plan compiles onto
both execution substrates:

* the discrete-event simulator, via :func:`repro.faults.simulate.compile_plan`
  (crash windows and partitions become channel outage intervals, detection
  becomes scheduled ``mark_dead`` calls), and
* the live asyncio cluster, via the chaos driver inside
  :func:`repro.runtime.cluster.run_live_cluster` (crashes call
  ``LocalServer.crash()``, link drops sever the wrapped transport, event
  times scale to wall time by the run's ``time_scale``).

Because the plan is data, not code, the acceptance property "same seed ⇒
same fault schedule in both worlds" is checkable by comparing
:meth:`FaultPlan.described` outputs.

:class:`ToleranceConfig` is the matching survival policy: heartbeat cadence
and failure-detection threshold for the root, reconnect backoff for the
locals, and the :class:`~repro.core.reliability.ReliabilityConfig` the
operators run with while faults are being injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reliability import ReliabilityConfig
from repro.errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "ToleranceConfig",
    "describe_event",
]

#: Recognized fault kinds, in the tie-break order used by the schedule.
#: ``kill_shard`` and ``driver_drop`` are mesh/query-plane kinds: they
#: compile only onto the substrates that have root shards and durable
#: driver sessions (see :func:`repro.faults.runner.run_chaos`); the flat
#: simulator and live cluster ignore them.
FAULT_KINDS = (
    "crash",
    "restart",
    "drop_link",
    "partition_start",
    "partition_heal",
    "kill_shard",
    "driver_drop",
)

#: Kinds that target one specific node.  For ``kill_shard`` the node is
#: the 0-based root-shard index rather than a local id.
_NODE_SCOPED = frozenset({"crash", "restart", "drop_link", "kill_shard"})


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault, in event-time seconds since the run epoch.

    Attributes:
        at_s: When the fault fires.
        kind: One of :data:`FAULT_KINDS`.
        node: Target node (required for node-scoped kinds, must be
            omitted for partitions, which cut every local off the root).
            A local id for crash/restart/drop_link; the 0-based shard
            index for ``kill_shard``.
        duration_s: For ``drop_link`` only — how long the simulator models
            the link as dead before the live runtime's reconnect would
            have restored it.
    """

    at_s: float
    kind: str
    node: int | None = None
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if self.at_s < 0:
            raise ConfigurationError(
                f"fault time must be >= 0 s, got {self.at_s}"
            )
        if self.kind in _NODE_SCOPED and self.node is None:
            raise ConfigurationError(f"{self.kind} fault needs a target node")
        if self.kind not in _NODE_SCOPED and self.node is not None:
            raise ConfigurationError(
                f"{self.kind} fault takes no target node, got {self.node}"
            )
        if self.duration_s < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0 s, got {self.duration_s}"
            )


def describe_event(event: FaultEvent) -> str:
    """Canonical one-line description, identical on both substrates."""
    noun = "shard" if event.kind == "kill_shard" else "local"
    target = f" {noun} {event.node}" if event.node is not None else ""
    extra = f" for {event.duration_s:.3f}s" if event.duration_s else ""
    return f"{event.kind}{target} @{event.at_s:.3f}s{extra}"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded, deterministic schedule of fault injections."""

    seed: int
    horizon_s: float
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError(
                f"plan horizon must be > 0 s, got {self.horizon_s}"
            )
        # Every restart must revive an earlier crash of the same node, and
        # partitions must open before they heal — the compilers on both
        # substrates rely on well-formed pairings.
        crashed: set[int] = set()
        partitioned = False
        for event in self.schedule():
            if event.kind == "crash":
                if event.node in crashed:
                    raise ConfigurationError(
                        f"local {event.node} crashes twice without a restart"
                    )
                crashed.add(event.node)
            elif event.kind == "restart":
                if event.node not in crashed:
                    raise ConfigurationError(
                        f"restart of local {event.node} without a prior crash"
                    )
                crashed.discard(event.node)
            elif event.kind == "partition_start":
                if partitioned:
                    raise ConfigurationError(
                        "partition starts twice without healing"
                    )
                partitioned = True
            elif event.kind == "partition_heal":
                if not partitioned:
                    raise ConfigurationError(
                        "partition heals without a prior start"
                    )
                partitioned = False

    def schedule(self) -> tuple[FaultEvent, ...]:
        """Events in firing order (time, then kind precedence, then node)."""
        return tuple(
            sorted(
                self.events,
                key=lambda e: (
                    e.at_s,
                    FAULT_KINDS.index(e.kind),
                    -1 if e.node is None else e.node,
                ),
            )
        )

    def described(self) -> tuple[str, ...]:
        """The schedule as canonical strings — the cross-substrate parity
        artifact asserted by the acceptance tests."""
        return tuple(describe_event(event) for event in self.schedule())

    def crash_intervals(self) -> dict[int, list[tuple[float, float | None]]]:
        """Per-node ``(crash, restart)`` pairs; ``None`` end = never restarts."""
        intervals: dict[int, list[tuple[float, float | None]]] = {}
        open_at: dict[int, float] = {}
        for event in self.schedule():
            if event.kind == "crash":
                open_at[event.node] = event.at_s
            elif event.kind == "restart":
                start = open_at.pop(event.node)
                intervals.setdefault(event.node, []).append(
                    (start, event.at_s)
                )
        for node, start in open_at.items():
            intervals.setdefault(node, []).append((start, None))
        return intervals

    def partition_intervals(self) -> list[tuple[float, float | None]]:
        """``(start, heal)`` pairs; ``None`` end = never heals."""
        intervals: list[tuple[float, float | None]] = []
        started: float | None = None
        for event in self.schedule():
            if event.kind == "partition_start":
                started = event.at_s
            elif event.kind == "partition_heal":
                assert started is not None  # validated in __post_init__
                intervals.append((started, event.at_s))
                started = None
        if started is not None:
            intervals.append((started, None))
        return intervals


def _default_reliability() -> ReliabilityConfig:
    # Wall-clock scale for the live runtime: generous retries so windows
    # survive a reconnect instead of aborting while the link is down.
    return ReliabilityConfig(timeout_s=0.15, max_retries=80)


@dataclass(frozen=True, slots=True)
class ToleranceConfig:
    """Survival policy for a cluster running under fault injection.

    All times are wall-clock seconds on the live runtime.

    Attributes:
        heartbeat_interval_s: Cadence of the locals' liveness beacons and
            of the root's monitor tick.
        declare_dead_after_s: Silence threshold past which the root's
            failure detector declares a local dead and degrades its open
            windows.  Keep this comfortably above the longest expected
            reconnect gap, or crashes that would resume cleanly get
            degraded instead.
        reconnect_base_delay_s: First reconnect backoff delay.
        reconnect_max_delay_s: Backoff ceiling.
        reconnect_jitter: Uniform multiplicative jitter in
            ``[0, reconnect_jitter]`` added to each delay (decorrelates
            reconnect stampedes after a partition heals).
        reconnect_max_attempts: Dial attempts before a local gives up.
        reliability: Timeout/retransmit parameters the Dema operators run
            with (state retention at locals is what makes resume possible).
    """

    heartbeat_interval_s: float = 0.05
    declare_dead_after_s: float = 60.0
    reconnect_base_delay_s: float = 0.05
    reconnect_max_delay_s: float = 1.0
    reconnect_jitter: float = 0.25
    reconnect_max_attempts: int = 8
    reliability: ReliabilityConfig = field(
        default_factory=_default_reliability
    )

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be > 0 s, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.declare_dead_after_s <= self.heartbeat_interval_s:
            raise ConfigurationError(
                "declare_dead_after_s must exceed the heartbeat interval "
                f"({self.declare_dead_after_s} <= {self.heartbeat_interval_s})"
            )
        if self.reconnect_base_delay_s <= 0:
            raise ConfigurationError(
                f"reconnect base delay must be > 0 s, "
                f"got {self.reconnect_base_delay_s}"
            )
        if self.reconnect_max_delay_s < self.reconnect_base_delay_s:
            raise ConfigurationError(
                "reconnect max delay must be >= the base delay "
                f"({self.reconnect_max_delay_s} < "
                f"{self.reconnect_base_delay_s})"
            )
        if self.reconnect_jitter < 0:
            raise ConfigurationError(
                f"reconnect jitter must be >= 0, got {self.reconnect_jitter}"
            )
        if self.reconnect_max_attempts < 1:
            raise ConfigurationError(
                f"reconnect attempts must be >= 1, "
                f"got {self.reconnect_max_attempts}"
            )
