"""Chaos transport: fault injection for live message streams.

:class:`ChaosStream` wraps any :class:`repro.runtime.transport.MessageStream`
and gives the fault driver three levers the real world pulls all the time:

* **sever** — the link dies abruptly; pending receives wake with EOF (as a
  killed TCP peer would produce) and subsequent sends fail.
* **delay** — a fixed per-frame delivery delay on receive.
* **reorder** — seeded random hold-one-back swaps of adjacent frames
  (never the ``Hello`` preamble, which must stay first on the wire).

:class:`ChaosController` owns one live run's worth of wrapped streams and
translates :class:`~repro.faults.plan.FaultPlan` events into lever pulls:
severing a local's links for a crash or link drop, gating redials during a
partition.  Everything it applies is recorded as canonical event strings so
the run can be compared against the simulator compilation of the same plan.
"""

from __future__ import annotations

import asyncio
import contextlib
import random

from repro.errors import TransportError
from repro.faults.plan import FaultEvent, FaultPlan, describe_event
from repro.network.messages import Message
from repro.runtime.codec import Hello
from repro.runtime.transport import MessageStream, StreamStats

__all__ = ["ChaosStream", "ChaosController"]


class ChaosStream:
    """A :class:`MessageStream` wrapper that can sever, delay and reorder."""

    def __init__(
        self,
        inner: MessageStream,
        *,
        delay_s: float = 0.0,
        reorder_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self._reorder_rate = reorder_rate
        self._rng = rng if rng is not None else random.Random(0)
        self._cut = asyncio.Event()
        self._held: Message | None = None

    @property
    def stats(self) -> StreamStats:
        """The wrapped stream's traffic counters."""
        return self._inner.stats

    @property
    def last_context(self):
        """The wrapped stream's most recent received trace context."""
        return self._inner.last_context

    def send_backlog(self) -> int:
        """The wrapped stream's current send backlog."""
        return self._inner.send_backlog()

    @property
    def severed(self) -> bool:
        """Whether :meth:`sever` has been called."""
        return self._cut.is_set()

    def sever(self) -> None:
        """Kill the link abruptly.

        Sends start raising :class:`TransportError`, a receive blocked on
        the inner stream wakes immediately with EOF, and the inner stream
        is closed in the background so the *remote* side sees EOF too —
        exactly the observable behaviour of a peer process dying.
        """
        if self._cut.is_set():
            return
        self._cut.set()
        with contextlib.suppress(RuntimeError):  # loop already closed
            asyncio.ensure_future(self._inner.close())

    async def send(self, message: Message | Hello) -> None:
        if self.severed:
            raise TransportError("chaos: link severed")
        if (
            self._reorder_rate > 0.0
            and self._held is None
            and not isinstance(message, Hello)
            and self._rng.random() < self._reorder_rate
        ):
            # Hold this frame back; it goes out right after the next one.
            self._held = message
            return
        await self._inner.send(message)
        if self._held is not None:
            held, self._held = self._held, None
            await self._inner.send(held)

    async def recv(self) -> Message | Hello | None:
        if self.severed:
            return None
        recv_task = asyncio.ensure_future(self._inner.recv())
        cut_task = asyncio.ensure_future(self._cut.wait())
        done, _ = await asyncio.wait(
            {recv_task, cut_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if recv_task not in done:
            # Severed while blocked: surface EOF, reap the orphaned read.
            recv_task.cancel()
            await self._reap(recv_task)
            return None
        cut_task.cancel()
        await self._reap(cut_task)
        message = recv_task.result()
        if self._delay_s > 0.0 and message is not None:
            await asyncio.sleep(self._delay_s)
        return message

    @staticmethod
    async def _reap(task: asyncio.Task) -> None:
        """Await a task we just cancelled, without eating *our* cancel.

        If the caller was itself cancelled while suspended on a finished
        future, the pending ``CancelledError`` surfaces at this very
        await; blanket-suppressing it would swallow the external
        cancellation and leave the caller unkillable.
        """
        try:
            await task
        except (asyncio.CancelledError, TransportError):
            current = asyncio.current_task()
            if current is not None and current.cancelling():
                raise asyncio.CancelledError from None

    async def close(self) -> None:
        self._cut.set()
        await self._inner.close()


class ChaosController:
    """Applies one :class:`FaultPlan` to a live run's transport layer."""

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._streams: dict[int, list[ChaosStream]] = {}
        self._partitioned = False
        #: Canonical descriptions of events applied so far, in order —
        #: compared against the simulator compilation for plan parity.
        self.applied: list[str] = []

    @property
    def plan(self) -> FaultPlan:
        """The plan this controller executes."""
        return self._plan

    @property
    def partitioned(self) -> bool:
        """Whether a partition is currently in force."""
        return self._partitioned

    def wrap(
        self,
        local_id: int,
        stream: MessageStream,
        *,
        delay_s: float = 0.0,
        reorder_rate: float = 0.0,
    ) -> ChaosStream:
        """Wrap one local↔root stream so the plan can reach it later."""
        chaos = ChaosStream(
            stream,
            delay_s=delay_s,
            reorder_rate=reorder_rate,
            rng=random.Random(f"chaos:{self._plan.seed}:{local_id}"),
        )
        self._streams.setdefault(local_id, []).append(chaos)
        return chaos

    def dial_allowed(self, local_id: int) -> bool:
        """Partition gate for reconnect attempts."""
        return not self._partitioned

    def sever(self, local_id: int) -> None:
        """Cut every stream wrapped for ``local_id``."""
        for stream in self._streams.get(local_id, ()):
            stream.sever()

    def start_partition(self) -> None:
        """Cut every wrapped stream and refuse redials until healed."""
        self._partitioned = True
        for local_id in list(self._streams):
            self.sever(local_id)

    def heal_partition(self) -> None:
        """Allow redials again (locals reconnect via their own backoff)."""
        self._partitioned = False

    def record(self, event: FaultEvent) -> None:
        """Log one applied event in canonical form."""
        self.applied.append(describe_event(event))
