"""Verification utilities: check any deployment against the exact oracle.

Downstream users extending the library (new operators, new systems) need a
way to prove their variant still answers exactly.  These helpers compute
per-window ground truth by brute force — collect everything, sort, select —
and compare a run's outcomes against it.  The reproduction's own test suite
uses them; they are public API.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import HarnessError
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import Event
from repro.streaming.windows import Window, WindowAssigner
from repro.core.query import QuantileQuery

__all__ = [
    "ground_truth",
    "verify_outcomes",
    "VerificationReport",
]


def ground_truth(
    streams: Mapping[int, Sequence[Event]],
    query: QuantileQuery,
) -> dict[Window, float]:
    """Per-window exact quantiles, computed centrally by brute force."""
    assigner: WindowAssigner = query.assigner()
    per_window: dict[Window, list[float]] = {}
    for events in streams.values():
        for event in events:
            for window in assigner.assign(event.timestamp):
                per_window.setdefault(window, []).append(event.value)
    return {
        window: exact_quantile(values, query.q)
        for window, values in per_window.items()
    }


class VerificationReport:
    """Outcome of comparing a run against the oracle."""

    def __init__(self) -> None:
        self.checked = 0
        self.exact = 0
        self.mismatches: list[tuple[Window, float, float]] = []
        self.missing_windows: list[Window] = []

    @property
    def is_exact(self) -> bool:
        """Whether every produced window matched and none were missing."""
        return not self.mismatches and not self.missing_windows

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.is_exact:
            return f"exact on all {self.checked} windows"
        parts = [f"{self.exact}/{self.checked} windows exact"]
        if self.mismatches:
            parts.append(f"{len(self.mismatches)} mismatched")
        if self.missing_windows:
            parts.append(f"{len(self.missing_windows)} missing")
        return ", ".join(parts)


def verify_outcomes(
    outcomes: Iterable,
    streams: Mapping[int, Sequence[Event]],
    query: QuantileQuery,
    *,
    require_all_windows: bool = True,
) -> VerificationReport:
    """Compare a run's window outcomes against the brute-force oracle.

    Args:
        outcomes: Objects with ``window`` and ``value`` attributes — the
            outcomes of any engine in this library.
        streams: The exact streams the run consumed.
        query: The query the run executed.
        require_all_windows: Whether windows present in the streams but
            absent from the outcomes count as failures.

    Returns:
        The verification report; inspect :attr:`VerificationReport.is_exact`
        or raise on it in a test.

    Raises:
        HarnessError: If an outcome references a window not present in the
            streams (the run invented data).
    """
    truth = ground_truth(streams, query)
    report = VerificationReport()
    seen: set[Window] = set()
    for outcome in outcomes:
        if outcome.value is None:
            continue
        window = outcome.window
        if window not in truth:
            raise HarnessError(
                f"outcome for window {window} which no stream event covers"
            )
        seen.add(window)
        report.checked += 1
        if outcome.value == truth[window]:
            report.exact += 1
        else:
            report.mismatches.append((window, outcome.value, truth[window]))
    if require_all_windows:
        report.missing_windows = sorted(set(truth) - seen)
    return report
