"""Shard failover: failure detection and the takeover protocol.

The :class:`FailoverController` is the mesh coordinator's failover
plane.  It owns the authoritative epoch-versioned
:class:`~repro.mesh.routing.ShardMap` and turns *evidence* of a shard's
death into one serialized takeover:

1. **Evidence** arrives two ways: locals and relays report a severed
   shard uplink (``report_link_down``), and the controller's own sweep
   task polls each shard's ``crashed`` flag on the heartbeat cadence
   (the coordinator monitors the shards it deployed, reusing the
   tolerance config's heartbeat interval).
2. **Confirmation** is the coordinator's registry, not the reporter's
   opinion: a link EOF for a shard that is alive and well (a teardown
   race, a transient close) is ignored.  Only a shard whose ``crashed``
   flag is set — the in-process equivalent of the process being gone —
   is eligible for takeover, after one heartbeat interval of grace so
   in-flight frames drain.
3. **Takeover** fails the shard in the map (bumping the epoch),
   computes the dead shard's *unanswered* window share from its
   operator's outcome log, re-homes that share onto the ring successor
   (:meth:`~repro.mesh.servers.MeshRootServer.adopt_windows`), and has
   the successor broadcast the new map in-band
   (:class:`~repro.network.messages.ShardFailoverMessage`).  Locals and
   relays converge on the epoch, fence the dead shard, and replay their
   retained sent-but-unreleased state to the successor — which then
   runs the *unmodified* identification/calculation operators, so
   recovered windows stay bit-identical to the single-root oracle.

Late resurrection of the original shard is fenced by the epoch: every
host drops frames from shards the current map declares dead, and stale
(non-monotonic) failover announcements are ignored everywhere.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.mesh.routing import ShardMap
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.streaming.windows import Window

__all__ = ["FailoverController"]


class FailoverController:
    """Detects dead root shards and re-homes their windows.

    Args:
        shards: The deployed :class:`~repro.mesh.servers.MeshRootServer`
            list, indexed by shard index.  The controller reads their
            ``crashed`` flags and outcome logs and drives
            ``adopt_windows``/``announce_failover`` on successors.
        shard_windows: Shard index → the window share the *initial*
            routing function assigned it (epoch 0 ownership).
        heartbeat_interval_s: Cadence for the sweep task and the
            pre-takeover grace period.
        tracer: Observability hooks; takeovers are recorded as
            ``shard_failover_takeover`` spans and counted by the
            ``shard_failovers_total`` counter.
        failures: Optional latch; an exception inside an async takeover
            is recorded there instead of being swallowed.
        on_takeover: Optional synchronous callback fired after each
            completed takeover with ``(dead_index, successor_index,
            epoch, adopted)`` — the telemetry plane hooks flight-recorder
            dumps and fleet failover events here.  Exceptions from the
            callback are routed to ``failures`` (takeover itself has
            already committed).
    """

    def __init__(
        self,
        shards: "Sequence",
        shard_windows: "Mapping[int, Sequence[Window]]",
        *,
        heartbeat_interval_s: float = 0.05,
        tracer: Tracer = NOOP_TRACER,
        failures=None,
        on_takeover=None,
    ) -> None:
        if not shards:
            raise ConfigurationError("failover needs at least one shard")
        self._shards = list(shards)
        self._shard_windows = {
            index: tuple(windows)
            for index, windows in shard_windows.items()
        }
        self._interval = heartbeat_interval_s
        self._tracer = tracer
        self._failures = failures
        self._on_takeover = on_takeover
        self.map = ShardMap(len(self._shards))
        self._lock = asyncio.Lock()
        self._pending: set[int] = set()
        self._tasks: set[asyncio.Task] = set()
        self._sweep_task: asyncio.Task | None = None
        self._closing = False
        #: Takeovers completed (epoch bumps driven by this controller).
        self.failovers = 0
        #: Windows re-homed to successors across all takeovers.
        self.windows_reassigned = 0
        #: Link-down reports that did not lead to a takeover.
        self.reports_ignored = 0

    # -- evidence ------------------------------------------------------

    def start(self) -> None:
        """Start the coordinator's sweep over the shards' crash flags."""
        if self._sweep_task is None:
            self._sweep_task = asyncio.ensure_future(self._sweep())

    def report_link_down(self, shard_index: int) -> None:
        """A local or relay lost its uplink to ``shard_index``.

        Synchronous callback (hosts fire it from their reader tasks).
        Evidence only: the takeover is scheduled, then re-confirmed
        against the coordinator's registry after a grace interval.
        """
        if self._closing or not 0 <= shard_index < len(self._shards):
            return
        if not self.map.is_live(shard_index):
            return  # already failed over
        if not self._shards[shard_index].crashed:
            self.reports_ignored += 1
            return  # spurious EOF: the shard is alive in our registry
        self._schedule(shard_index)

    async def _sweep(self) -> None:
        """Backup detection: poll crash flags on the heartbeat cadence.

        Covers the no-traffic corner where a shard dies while no reader
        holds an open frame in flight (so no EOF report ever fires).
        """
        while not self._closing:
            await asyncio.sleep(self._interval)
            for index, shard in enumerate(self._shards):
                if shard.crashed and self.map.is_live(index):
                    self._schedule(index)

    def _schedule(self, index: int) -> None:
        if index in self._pending:
            return
        self._pending.add(index)
        task = asyncio.ensure_future(self._run_takeover(index))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- takeover ------------------------------------------------------

    async def _run_takeover(self, index: int) -> None:
        try:
            # Grace: let in-flight frames and EOFs drain so the dead
            # shard's outcome log is quiescent before we snapshot it
            # (its fabric is halted by crash(), so nothing mutates it
            # after this sleep).
            await asyncio.sleep(self._interval)
            async with self._lock:
                await self._take_over(index)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    async def _take_over(self, index: int) -> None:
        if self._closing or not self.map.is_live(index):
            return
        dead = self._shards[index]
        if not dead.crashed:
            return
        self.map = self.map.fail(index)
        successor_index = self.map.successor(index)
        successor = self._shards[successor_index]
        answered = {outcome.window for outcome in dead.node.outcomes}
        unanswered = [
            window
            for window in self._shard_windows.get(index, ())
            if window not in answered
        ]
        successor.adopt_windows(
            unanswered, epoch=self.map.epoch, finalized=sorted(answered)
        )
        # The dead shard will never account its remaining share; its
        # done latch is settled here so the cluster driver's completion
        # barrier waits on the successor instead.
        dead.done.set()
        await successor.announce_failover(self.map)
        self.failovers += 1
        self.windows_reassigned += len(unanswered)
        if self._tracer.enabled:
            now = successor.fabric.now
            self._tracer.record(
                "shard_failover_takeover", successor.node_id, now, now,
                epoch=self.map.epoch, dead_shard=index,
                successor=successor_index, adopted=len(unanswered),
                inherited=len(answered),
            )
            self._tracer.registry.counter(
                "shard_failovers_total",
                "Shard takeovers completed by the failover controller.",
            ).inc()
        if self._on_takeover is not None:
            try:
                self._on_takeover(
                    index, successor_index, self.map.epoch, len(unanswered)
                )
            except BaseException as exc:
                if self._failures is None:
                    raise
                self._failures.record(exc)

    # -- chaos & lifecycle ---------------------------------------------

    async def kill_shard(self, index: int) -> None:
        """Chaos entry point: crash ``index`` and wait for the takeover.

        Crashes the shard abruptly (severing every peer link), then
        blocks until the detection → confirmation → takeover pipeline
        has re-homed its windows — so a chaos scenario can assert on
        the post-failover run without sleeping for magic durations.
        """
        if not 0 <= index < len(self._shards):
            raise ConfigurationError(f"no shard {index} to kill")
        if not self.map.is_live(index):
            raise ConfigurationError(f"shard {index} is already dead")
        await self._shards[index].crash()
        self._schedule(index)
        while self.map.is_live(index) and not self._closing:
            await asyncio.sleep(self._interval / 4)

    async def close(self) -> None:
        """Stop detection; in-flight takeovers are cancelled."""
        self._closing = True
        tasks = list(self._tasks)
        if self._sweep_task is not None:
            tasks.append(self._sweep_task)
            self._sweep_task = None
        self._tasks.clear()
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
