"""Deterministic id spaces and window→shard routing for mesh runs.

A mesh deployment has three kinds of long-lived node ids:

* locals keep their small ids (``1..``, as in single-root runs);
* root shards live at ``SHARD_ID_BASE + index``;
* relays live at ``RELAY_ID_BASE + index``.

The bases are far above any realistic local count, so the three spaces
can never collide and a node id alone reveals the layer.

Shard routing is a pure function of the window start: windows are
numbered on the tumbling grid and dealt round-robin across shards.
Every node (local, relay, shard, driver, test oracle) computes the same
owner from the same arithmetic — no routing state to synchronize, which
is what keeps sharded runs bit-identical to the single-root baseline.

Failover extends the same idea one level up: a :class:`ShardMap` is an
epoch-versioned view of which shards are alive.  Ownership under
failures stays a pure function — ``owner = successor(shard_of(w))``
where the successor walk skips dead shards in ring order — so any two
nodes holding the same ``(epoch, dead)`` pair agree on every window's
owner without exchanging another byte.  The pair travels in-band in a
``ShardFailoverMessage``; epochs only grow, which is what fences a dead
shard's late resurrection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SHARD_ID_BASE",
    "RELAY_ID_BASE",
    "ShardMap",
    "shard_of",
    "shard_node_id",
    "relay_node_id",
]

#: Root-shard ids start here (shard r listens at ``SHARD_ID_BASE + r``).
SHARD_ID_BASE = 1 << 20

#: Relay ids start here (relay k listens at ``RELAY_ID_BASE + k``).
RELAY_ID_BASE = 1 << 21


def shard_of(window_start: int, window_length_ms: int, n_shards: int) -> int:
    """The shard index owning the window that starts at ``window_start``.

    Windows are dealt round-robin by grid index, so consecutive windows
    land on different shards and every shard carries an equal share of a
    long run (within one window).
    """
    if n_shards <= 1:
        return 0
    return (window_start // window_length_ms) % n_shards


def shard_node_id(index: int) -> int:
    """Wire node id of root shard ``index``."""
    return SHARD_ID_BASE + index


def relay_node_id(index: int) -> int:
    """Wire node id of relay ``index``."""
    return RELAY_ID_BASE + index


@dataclass(frozen=True, slots=True)
class ShardMap:
    """Epoch-versioned shard liveness: who owns a window under failures.

    The map is immutable; :meth:`fail` returns the next version.  The
    epoch counts failovers applied, so a given failover sequence yields
    exactly one ``(epoch, dead)`` pair per step and two nodes at the
    same epoch can never disagree on ownership (property-tested in
    ``tests/property/test_failover_routing.py``).

    Attributes:
        n_shards: Total shards the run started with (ring size).
        epoch: Failovers applied so far; ``0`` is the healthy map.
        dead: Indices of shards declared dead.  Ownership of their
            windows moves to the next live shard in ring order.
    """

    n_shards: int
    epoch: int = 0
    dead: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"need at least one shard, got {self.n_shards}")
        dead = frozenset(self.dead)
        object.__setattr__(self, "dead", dead)
        if any(index < 0 or index >= self.n_shards for index in dead):
            raise ValueError(
                f"dead shard indices must be in [0, {self.n_shards}), "
                f"got {sorted(dead)}"
            )
        if len(dead) >= self.n_shards:
            raise ValueError("every shard is dead: no live successor exists")
        if self.epoch < len(dead):
            raise ValueError(
                f"epoch {self.epoch} cannot have produced "
                f"{len(dead)} dead shards"
            )

    @property
    def live(self) -> tuple[int, ...]:
        """Live shard indices, ascending."""
        return tuple(
            index for index in range(self.n_shards) if index not in self.dead
        )

    def is_live(self, index: int) -> bool:
        """Whether shard ``index`` is still alive under this map."""
        return 0 <= index < self.n_shards and index not in self.dead

    def successor(self, index: int) -> int:
        """The live shard owning ``index``'s share: itself, or the next
        live shard walking the ring upward."""
        for step in range(self.n_shards):
            candidate = (index + step) % self.n_shards
            if candidate not in self.dead:
                return candidate
        raise ValueError("no live shard")  # unreachable: __post_init__

    def owner(self, window_start: int, window_length_ms: int) -> int:
        """The live shard owning the window at ``window_start``."""
        return self.successor(
            shard_of(window_start, window_length_ms, self.n_shards)
        )

    def fail(self, index: int) -> "ShardMap":
        """The next-epoch map with shard ``index`` declared dead.

        Idempotent: failing an already-dead shard returns ``self``
        unchanged (no epoch bump), so duplicate failure reports from
        independent observers converge instead of diverging.
        """
        if index < 0 or index >= self.n_shards:
            raise ValueError(
                f"shard index {index} out of range [0, {self.n_shards})"
            )
        if index in self.dead:
            return self
        return ShardMap(
            n_shards=self.n_shards,
            epoch=self.epoch + 1,
            dead=self.dead | {index},
        )
