"""Deterministic id spaces and window→shard routing for mesh runs.

A mesh deployment has three kinds of long-lived node ids:

* locals keep their small ids (``1..``, as in single-root runs);
* root shards live at ``SHARD_ID_BASE + index``;
* relays live at ``RELAY_ID_BASE + index``.

The bases are far above any realistic local count, so the three spaces
can never collide and a node id alone reveals the layer.

Shard routing is a pure function of the window start: windows are
numbered on the tumbling grid and dealt round-robin across shards.
Every node (local, relay, shard, driver, test oracle) computes the same
owner from the same arithmetic — no routing state to synchronize, which
is what keeps sharded runs bit-identical to the single-root baseline.
"""

from __future__ import annotations

__all__ = [
    "SHARD_ID_BASE",
    "RELAY_ID_BASE",
    "shard_of",
    "shard_node_id",
    "relay_node_id",
]

#: Root-shard ids start here (shard r listens at ``SHARD_ID_BASE + r``).
SHARD_ID_BASE = 1 << 20

#: Relay ids start here (relay k listens at ``RELAY_ID_BASE + k``).
RELAY_ID_BASE = 1 << 21


def shard_of(window_start: int, window_length_ms: int, n_shards: int) -> int:
    """The shard index owning the window that starts at ``window_start``.

    Windows are dealt round-robin by grid index, so consecutive windows
    land on different shards and every shard carries an equal share of a
    long run (within one window).
    """
    if n_shards <= 1:
        return 0
    return (window_start // window_length_ms) % n_shards


def shard_node_id(index: int) -> int:
    """Wire node id of root shard ``index``."""
    return SHARD_ID_BASE + index


def relay_node_id(index: int) -> int:
    """Wire node id of relay ``index``."""
    return RELAY_ID_BASE + index
