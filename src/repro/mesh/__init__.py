"""Scale-out mesh: elastic membership, sharded roots, relay aggregation.

The mesh generalizes the single-root live runtime along three axes,
without touching a line of the Dema operators:

* **Elastic membership** — locals join and leave mid-run at grid
  boundaries; windows re-plan around the change instead of hanging.
* **Sharded roots** — window ownership is partitioned across R root
  servers by a deterministic routing function; each shard runs the
  unmodified identification/calculation operators on its share, and the
  merged outcomes are bit-identical to a single root's.
* **Relay-tree aggregation** — an optional tier of fan-in-F relays
  combines children's synopsis and candidate frames, so root ingress
  bytes grow with the relay count instead of the local count.

See ``docs/mesh.md`` for the protocol details and invariants.
"""

from repro.mesh.config import MembershipEvent, MeshConfig
from repro.mesh.cluster import (
    MeshChaosContext,
    MeshRunReport,
    classify_outcomes,
    mesh_oracle,
    run_mesh,
    run_mesh_cluster,
)
from repro.mesh.failover import FailoverController
from repro.mesh.routing import (
    RELAY_ID_BASE,
    SHARD_ID_BASE,
    ShardMap,
    relay_node_id,
    shard_node_id,
    shard_of,
)

__all__ = [
    "FailoverController",
    "MembershipEvent",
    "MeshChaosContext",
    "MeshConfig",
    "MeshRunReport",
    "ShardMap",
    "classify_outcomes",
    "mesh_oracle",
    "run_mesh",
    "run_mesh_cluster",
    "RELAY_ID_BASE",
    "SHARD_ID_BASE",
    "relay_node_id",
    "shard_node_id",
    "shard_of",
]
