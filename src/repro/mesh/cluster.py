"""Mesh cluster driver: shards, relays and elastic membership as one run.

:func:`run_mesh_cluster` deploys R root shards behind the deterministic
window→shard routing function, optionally a relay tier of fan-in F, and
``n_locals`` locals fed by phased stream replays.  Membership events are
driven at grid boundaries by a coordinator coroutine: the replays pause
at each boundary, the coordinator applies the joins/leaves on every
shard, and only then do post-boundary events flow — so a join serves its
first full window correctly and a leave can never hang a window, by
construction rather than by timeout.

Without membership events and with a fixed γ, a mesh run's per-window
quantile values are **bit-identical** to the single-root
:class:`~repro.core.engine.DemaEngine` on the same workload: shards run
the unmodified operators on disjoint window subsets, and relays combine
frames without touching their contents.  :func:`mesh_oracle` computes
that truth (membership truncations included) and
:func:`classify_outcomes` grades a live mesh run against it with the
chaos suite's recovered/degraded/lost taxonomy.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.engine import DemaEngine
from repro.core.local_node import DemaLocalNode
from repro.core.root_node import DemaRootNode, WindowOutcome
from repro.errors import ConfigurationError, TransportError
from repro.mesh.config import MeshConfig
from repro.mesh.failover import FailoverController
from repro.mesh.relay import RelayServer
from repro.mesh.routing import relay_node_id, shard_node_id, shard_of
from repro.mesh.servers import (
    MeshLocalServer,
    MeshRootServer,
    PhasedStreamServer,
)
from repro.network.metrics import LatencyStats
from repro.network.topology import TopologyConfig, relay_groups
from repro.obs.fleet import FleetCollector, TelemetryUplink
from repro.obs.live.http import TelemetryServer
from repro.obs.live.recorder import FlightRecorder
from repro.obs.live.sampler import RuntimeSampler
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Tracer
from repro.runtime.servers import LIVE_OPS_PER_SECOND, LiveFabric
from repro.runtime.transport import (
    FailureLatch,
    MemoryNetwork,
    MessageStream,
    TcpNetwork,
)
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = [
    "MeshChaosContext",
    "MeshRunReport",
    "run_mesh_cluster",
    "run_mesh",
    "mesh_oracle",
    "classify_outcomes",
]

#: Stream-server ids start here: above every local, shard and relay id.
_STREAM_ID_BASE = 1 << 22

#: Coordinator poll interval while waiting on shard membership epochs.
_EPOCH_POLL_S = 0.002

#: Placeholder window on telemetry frames built by the cluster driver.
_TELEMETRY_WINDOW = Window(0, 1)


@dataclass
class MeshChaosContext:
    """Live handles a ``disturb`` coroutine gets to inject faults with.

    The hook runs alongside the replays; crash a local with
    :meth:`~repro.mesh.servers.MeshLocalServer.crash_mesh` or kill a
    whole relay with :meth:`~repro.mesh.relay.RelayServer.close` and the
    shards' failure detectors degrade the affected windows — the run
    still completes (the "degrade, never hang" guarantee under abrupt
    death rather than graceful leave).
    """

    locals_by_id: "dict[int, MeshLocalServer]"
    relays: "list[RelayServer]"
    shards: "list[MeshRootServer]"
    #: The failover plane; present when the run has shards and a
    #: tolerance config (detection needs the heartbeat cadence).
    failover: "FailoverController | None" = None

    async def kill_shard(self, index: int) -> None:
        """Crash root shard ``index`` and wait for its takeover.

        Requires a failover controller (``n_shards > 1`` plus a
        tolerance config): killing the only root, or killing without a
        failure detector, has no successor to recover onto.
        """
        if self.failover is None:
            raise ConfigurationError(
                "kill_shard needs a failover controller "
                "(n_shards > 1 and a tolerance config)"
            )
        await self.failover.kill_shard(index)


@dataclass
class MeshRunReport:
    """Everything a caller needs from one mesh run."""

    outcomes: list[WindowOutcome]
    windows: int
    events_sent: int
    wall_seconds: float
    #: Bytes/messages per layer, both directions: ``stream_local``,
    #: ``local_root`` (flat), ``local_relay`` + ``relay_root`` (relayed).
    bytes_by_layer: dict[str, int]
    messages_by_layer: dict[str, int]
    #: Bytes that actually entered a root shard (the toward-shard
    #: direction of the ``local_root`` and ``relay_root`` links) — the
    #: quantity the relay tier exists to shrink.
    root_ingress_bytes: int
    transport: str
    n_shards: int
    relay_fanin: int
    #: Watermark seal (last local) → shard outcome, per completed window.
    seal_to_result: LatencyStats
    #: Final membership epoch per shard index (all equal on a clean run).
    membership_epochs: dict[int, int] = field(default_factory=dict)
    #: Final member list as shard 0 sees it.
    members: tuple[int, ...] = ()
    degraded_windows: int = 0
    dropped_sends: int = 0
    heartbeat_misses: int = 0
    locals_declared_dead: int = 0
    relay_frames_combined: int = 0
    relay_sections_combined: int = 0
    #: Shard takeovers completed by the failover controller.
    shard_failovers: int = 0
    #: Windows re-homed onto successor shards.
    windows_adopted: int = 0
    #: Retained frames relays re-sent to successors on failover.
    relay_frames_replayed: int = 0
    #: Frames from epoch-fenced (dead) shards dropped by hosts.
    fenced_frames: int = 0
    #: Fleet telemetry report (empty dict when telemetry is off): the
    #: final ``/fleet`` document plus recorder/sampler bookkeeping.
    telemetry: dict = field(default_factory=dict)

    @property
    def values(self) -> "list[float | None]":
        """Per-window quantile values in window order."""
        return [
            outcome.value
            for outcome in sorted(self.outcomes, key=lambda o: o.window)
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes across all layers and directions."""
        return sum(self.bytes_by_layer.values())

    @property
    def events_per_second(self) -> float:
        """Replay throughput on the wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_sent / self.wall_seconds

    def outcome_by_window(self) -> "dict[Window, WindowOutcome]":
        return {outcome.window: outcome for outcome in self.outcomes}


def _grid(
    streams: Mapping[int, Sequence[Event]], window_length_ms: int
) -> "tuple[int, int]":
    """The tumbling grid ``[start, end)`` covering every event."""
    timestamps = [
        event.timestamp
        for events in streams.values()
        for event in events
    ]
    if not timestamps:
        raise ConfigurationError("mesh run needs at least one event")
    lo, hi = min(timestamps), max(timestamps)
    start = (lo // window_length_ms) * window_length_ms
    end = (hi // window_length_ms + 1) * window_length_ms
    return start, end


def _membership_ranges(
    config: MeshConfig, grid_start: int, grid_end: int
) -> "dict[int, tuple[int, int]]":
    """Per-local eligibility range ``[lo, hi)`` implied by the schedule."""
    joins = {
        event.local_id: event.at_ms
        for event in config.membership
        if event.kind == "join"
    }
    leaves = {
        event.local_id: event.at_ms
        for event in config.membership
        if event.kind == "leave"
    }
    ranges: dict[int, tuple[int, int]] = {}
    for local_id in range(1, config.n_locals + 1):
        ranges[local_id] = (grid_start, leaves.get(local_id, grid_end))
    for local_id, at_ms in joins.items():
        ranges[local_id] = (at_ms, leaves.get(local_id, grid_end))
    for local_id, at_ms in leaves.items():
        if local_id not in ranges:
            raise ConfigurationError(
                f"local {local_id} leaves but never joins"
            )
        lo, _ = ranges[local_id]
        if at_ms <= lo:
            raise ConfigurationError(
                f"local {local_id} leaves at {at_ms} before it is a "
                f"member (from {lo})"
            )
    return ranges


def mesh_oracle(
    streams: Mapping[int, Sequence[Event]],
    config: MeshConfig,
) -> "dict[Window, float | None]":
    """Ground truth: the single-root engine on the truncated workload.

    Each local's stream is truncated to its eligibility range, which is
    exactly the data the mesh serves — a graceful leave means "windows
    past the boundary see none of my events", and a join means "windows
    before the boundary see none of mine".  The engine's empty-synopsis
    handling makes an ineligible local indistinguishable from an absent
    one, so one engine run covers every membership schedule.
    """
    length = config.query.window_length_ms
    grid_start, grid_end = _grid(streams, length)
    ranges = _membership_ranges(config, grid_start, grid_end)
    n_nodes = max(ranges)
    truncated = {
        local_id: [
            event
            for event in streams.get(local_id, ())
            if ranges[local_id][0] <= event.timestamp < ranges[local_id][1]
        ]
        for local_id in range(1, n_nodes + 1)
    }
    engine = DemaEngine(
        config.query,
        TopologyConfig(n_local_nodes=n_nodes),
        batch_size=config.batch_size,
    )
    report = engine.run(truncated)
    return {
        outcome.window: outcome.value for outcome in report.outcomes
    }


def classify_outcomes(
    truth: "Mapping[Window, float | None]",
    outcomes: "Sequence[WindowOutcome]",
) -> "dict[str, int]":
    """Grade mesh outcomes with the chaos suite's taxonomy.

    ``recovered``: exact truth at completeness 1.0 (bit-identical);
    ``degraded``: answered from a strict subset of the eligible locals;
    ``lost``: no answer (or an empty answer where truth has a value);
    ``mismatch``: a full-completeness answer that differs from truth —
    always a bug, and exactly what the bit-identity tests pin to zero.
    """
    by_window = {outcome.window: outcome for outcome in outcomes}
    classes = {"recovered": 0, "degraded": 0, "lost": 0, "mismatch": 0}
    for window in sorted(truth):
        expected = truth[window]
        outcome = by_window.get(window)
        if outcome is None:
            classes["lost"] += 1
        elif outcome.completeness < 1.0:
            classes["degraded"] += 1
        elif outcome.value is None:
            if expected is None:
                classes["recovered"] += 1
            else:
                classes["lost"] += 1
        elif outcome.value == expected:
            classes["recovered"] += 1
        else:
            classes["mismatch"] += 1
    return classes


async def run_mesh_cluster(
    config: MeshConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
    disturb=None,
) -> MeshRunReport:
    """Run the full mesh topology over ``streams`` and collect the report.

    Args:
        config: Shards, relays, membership schedule, transport.
        streams: Per-local event streams in timestamp order, keyed by
            local id — including runtime joiners (their pre-join events
            are dropped, as are a leaver's post-leave events).
        tracer: Observability hooks; membership changes and relay
            combines are recorded as spans, current membership as the
            ``mesh_members`` gauge.
        disturb: Optional ``async (MeshChaosContext) -> None`` fault
            hook, started once the cluster is live and cancelled at
            teardown.  Use with a :attr:`MeshConfig.tolerance` so the
            failure detectors can degrade around what it breaks.
    """
    length = config.query.window_length_ms
    grid_start, grid_end = _grid(streams, length)
    ranges = _membership_ranges(config, grid_start, grid_end)
    unknown = set(streams) - set(ranges)
    if unknown:
        raise ConfigurationError(
            f"streams reference unknown local nodes {sorted(unknown)}"
        )
    for event in config.membership:
        if not grid_start < event.at_ms < grid_end:
            raise ConfigurationError(
                f"membership boundary {event.at_ms} outside the grid "
                f"({grid_start}, {grid_end})"
            )
        if (event.at_ms - grid_start) % length != 0:
            raise ConfigurationError(
                f"membership boundary {event.at_ms} is not on the "
                f"{length} ms tumbling grid"
            )

    windows = [
        Window(start, start + length)
        for start in range(grid_start, grid_end, length)
    ]
    shard_windows = {
        index: [
            window for window in windows
            if shard_of(window.start, length, config.n_shards) == index
        ]
        for index in range(config.n_shards)
    }

    initial_ids = list(range(1, config.n_locals + 1))
    joiner_ids = sorted(
        event.local_id
        for event in config.membership
        if event.kind == "join"
    )
    all_local_ids = sorted({*initial_ids, *joiner_ids})

    #: Relay assignment covers every local that will ever exist, so a
    #: joiner's relay is known (and wired) before the join happens.
    groups = relay_groups(all_local_ids, config.relay_fanin)
    relay_of = {
        local_id: group_index
        for group_index, group in enumerate(groups)
        for local_id in group
    }

    tolerance = config.tolerance
    reliability = tolerance.reliability if tolerance is not None else None

    # -- fleet telemetry plane (off by default; bit-identical when off) --
    telemetry = config.telemetry
    if telemetry is not None and not tracer.enabled:
        # The plane needs somewhere to put spans and metrics; a caller
        # who asked for telemetry but passed no tracer gets a private one.
        tracer = RecordingTracer()
    wire_tracing = telemetry is not None
    recorder: FlightRecorder | None = None
    if telemetry is not None and telemetry.flight_recorder_path is not None:
        recorder = FlightRecorder(
            telemetry.flight_recorder_path,
            capacity=telemetry.flight_recorder_capacity,
        )
        if isinstance(tracer, RecordingTracer):
            tracer.on_record = recorder.record
    collector = FleetCollector() if telemetry is not None else None
    sampler: RuntimeSampler | None = None
    if telemetry is not None and telemetry.sampler_interval_s > 0:
        sampler = RuntimeSampler(
            tracer.registry, interval_s=telemetry.sampler_interval_s
        )
    uplink_interval = (
        telemetry.sampler_interval_s
        if telemetry is not None and telemetry.sampler_interval_s > 0
        else 0.25
    )
    http_server: TelemetryServer | None = None

    failures = FailureLatch(
        on_trip=recorder.on_failure if recorder is not None else None
    )
    network = (
        TcpNetwork(failures=failures)
        if config.transport == "tcp"
        else MemoryNetwork(max_frames=config.queue_frames, failures=failures)
    )
    loop = asyncio.get_event_loop()
    epoch = loop.time()
    dialed: list[tuple[str, int, int, MessageStream]] = []

    def track(layer: str, src: int, dst: int, stream: MessageStream) -> None:
        dialed.append((layer, src, dst, stream))
        if sampler is not None:
            sampler.register_stream(stream, src=src, dst=dst)

    gates = {
        at_ms: asyncio.Event()
        for at_ms in {event.at_ms for event in config.membership}
    }

    # ------------------------------------------------------------------
    # root shards
    shards: list[MeshRootServer] = []
    downstream = (
        {
            local_id: relay_node_id(group_index)
            for local_id, group_index in relay_of.items()
        }
        if groups
        else None
    )
    for index in range(config.n_shards):
        shard = MeshRootServer(
            DemaRootNode(
                shard_node_id(index),
                local_ids=initial_ids,
                query=config.query,
                ops_per_second=LIVE_OPS_PER_SECOND,
                reliability=reliability,
                degrade_after_retries=tolerance is not None,
            ),
            LiveFabric(epoch),
            expected_windows=len(shard_windows[index]),
            downstream=downstream,
            tracer=tracer,
            tolerance=tolerance,
            failures=failures,
            wire_tracing=wire_tracing,
            on_telemetry=(
                collector.on_message if collector is not None else None
            ),
            uplink=(
                TelemetryUplink(shard_node_id(index))
                if telemetry is not None
                else None
            ),
        )
        await network.listen(shard_node_id(index), shard.serve)
        shard.start_monitor()
        shards.append(shard)

    #: The failover plane exists when there is a successor to fail onto
    #: and a heartbeat cadence to detect with.
    failover: FailoverController | None = None
    if config.n_shards > 1 and tolerance is not None:

        def on_takeover(
            dead: int, successor: int, map_epoch: int, adopted: int
        ) -> None:
            if collector is not None:
                collector.record_failover(
                    dead, successor, map_epoch, loop.time() - epoch
                )
            if recorder is not None:
                # Dump the in-flight span ring at the moment of takeover:
                # the post-mortem of the dead shard, captured while the
                # evidence is fresh (same contract as a latch trip).
                recorder.dump(
                    f"shard {dead} takeover by {successor} "
                    f"(epoch {map_epoch}, {adopted} windows adopted)"
                )

        failover = FailoverController(
            shards,
            shard_windows,
            heartbeat_interval_s=tolerance.heartbeat_interval_s,
            tracer=tracer,
            failures=failures,
            on_takeover=(
                on_takeover
                if collector is not None or recorder is not None
                else None
            ),
        )
        failover.start()

    # ------------------------------------------------------------------
    # relay tier
    relays: list[RelayServer] = []
    for group_index in range(len(groups)):
        relay = RelayServer(
            group_index,
            window_length_ms=length,
            n_shards=config.n_shards,
            flush_after_s=config.relay_flush_s,
            tracer=tracer,
            failures=failures,
            on_shard_down=(
                failover.report_link_down if failover is not None else None
            ),
            uplink=(
                TelemetryUplink(relay_node_id(group_index))
                if telemetry is not None
                else None
            ),
            uplink_interval_s=uplink_interval,
        )
        await network.listen(relay.node_id, relay.serve)
        uplinks: dict[int, MessageStream] = {}
        for index in range(config.n_shards):
            stream = await network.dial(shard_node_id(index))
            track("relay_root", relay.node_id, shard_node_id(index), stream)
            uplinks[index] = stream
        await relay.connect_shards(uplinks)
        relays.append(relay)

    # ------------------------------------------------------------------
    # locals and their phased stream replays
    locals_by_id: dict[int, MeshLocalServer] = {}
    stream_servers: list[PhasedStreamServer] = []
    replays: list[asyncio.Task] = []
    next_stream_id = [_STREAM_ID_BASE]

    async def start_local(
        local_id: int, *, join_from: "int | None" = None
    ) -> None:
        lo, hi = ranges[local_id]
        local = MeshLocalServer(
            DemaLocalNode(
                local_id,
                root_id=0,
                query=config.query,
                ops_per_second=LIVE_OPS_PER_SECOND,
                reliability=reliability,
                # Sharded roots release windows independently, so a
                # release must prune only its own window — the others
                # are the failover replay source (see DemaLocalNode).
                cumulative_releases=config.n_shards <= 1,
            ),
            LiveFabric(epoch),
            n_shards=config.n_shards,
            on_upstream_down=(
                failover.report_link_down if failover is not None else None
            ),
            expected_streams=config.streams_per_local,
            grid_start=lo,
            grid_end=hi,
            window_length_ms=length,
            tracer=tracer,
            tolerance=tolerance,
            failures=failures,
            wire_tracing=wire_tracing,
            sample_rate=(
                telemetry.sample_rate if telemetry is not None else 1.0
            ),
            uplink=(
                TelemetryUplink(local_id)
                if telemetry is not None
                else None
            ),
            uplink_interval_s=uplink_interval,
        )
        locals_by_id[local_id] = local
        await network.listen(local_id, local.serve)
        uplinks: dict[int, MessageStream] = {}
        if groups:
            relay_peer = relay_node_id(relay_of[local_id])
            stream = await network.dial(relay_peer)
            track("local_relay", local_id, relay_peer, stream)
            uplinks[relay_peer] = stream
        else:
            for index in range(config.n_shards):
                stream = await network.dial(shard_node_id(index))
                track(
                    "local_root", local_id, shard_node_id(index), stream
                )
                uplinks[shard_node_id(index)] = stream
        await local.connect_upstreams(uplinks, join_from=join_from)

        share = [
            event
            for event in streams.get(local_id, ())
            if lo <= event.timestamp < hi
        ]
        split: list[list[Event]] = [
            [] for _ in range(config.streams_per_local)
        ]
        for position, event in enumerate(share):
            split[position % config.streams_per_local].append(event)
        for events in split:
            server = PhasedStreamServer(
                next_stream_id[0],
                events=events,
                batch_size=config.batch_size,
                grid_start=lo,
                grid_end=hi,
                window_length_ms=length,
                gates=gates,
                time_scale=config.time_scale,
            )
            next_stream_id[0] += 1
            stream_servers.append(server)

            async def replay(srv: PhasedStreamServer, dst: int) -> None:
                pipe = await network.dial(dst)
                track("stream_local", srv.stream_id, dst, pipe)
                await srv.replay(pipe)

            replays.append(
                asyncio.ensure_future(replay(server, local_id))
            )

    for local_id in initial_ids:
        await start_local(local_id)

    # ------------------------------------------------------------------
    # membership coordinator: applies each boundary's joins/leaves on
    # every shard before opening that boundary's replay gate.
    async def coordinate_membership() -> None:
        applied = 0
        for at_ms in sorted(gates):
            here = [
                event for event in config.membership
                if event.at_ms == at_ms
            ]
            for event in here:
                if event.kind == "leave":
                    await locals_by_id[event.local_id].announce_leave(at_ms)
                else:
                    await start_local(event.local_id, join_from=at_ms)
                applied += 1
            while any(
                shard.node.membership_epoch < applied
                for shard in shards
                if not shard.crashed
            ):
                await asyncio.sleep(_EPOCH_POLL_S)
            gates[at_ms].set()

    async def run_disturb() -> None:
        try:
            await disturb(
                MeshChaosContext(
                    locals_by_id=locals_by_id,
                    relays=relays,
                    shards=shards,
                    failover=failover,
                )
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            failures.record(exc)

    observed_results: set[Window] = set()

    def pump_shard_uplinks() -> None:
        """Feed shard uplinks straight into the collector.

        Shards are collocated with the coordinator, so their telemetry
        never crosses a wire: the driver refreshes their stats and hands
        the built frames to the collector in-process.  Locals and relays
        uplink in-band on their own cadence.  Seal→result latency is
        observed here — the driver is where the locals' seal walls and
        the shards' result walls meet — so the merged fleet digest is
        built from exactly the samples the central report aggregates.
        """
        assert collector is not None
        for index, shard in enumerate(shards):
            if shard.uplink is None:
                continue
            for outcome in shard.node.outcomes:
                window = outcome.window
                if window in observed_results:
                    continue
                finished = shard.result_walls.get(window)
                if finished is None:
                    continue
                observed_results.add(window)
                sealed = max(
                    (
                        local.seal_walls.get(window, 0.0)
                        for local in locals_by_id.values()
                    ),
                    default=0.0,
                )
                shard.uplink.observe(
                    "seal_to_result_s", max(0.0, finished - sealed)
                )
            shard.uplink.set_stat(
                "windows_answered", float(len(shard.node.outcomes))
            )
            shard.uplink.set_stat(
                "windows_adopted", float(shard.windows_adopted)
            )
            shard.uplink.set_stat(
                "heartbeat_misses", float(shard.heartbeat_misses)
            )
            for frame in shard.uplink.build(_TELEMETRY_WINDOW):
                collector.on_message(frame)

    def fleet_summary() -> dict:
        """The ``/fleet`` document: merged digests plus mesh health."""
        assert collector is not None
        pump_shard_uplinks()
        answered = {
            outcome.window
            for shard in shards
            for outcome in shard.node.outcomes
        }
        summary = collector.report()
        summary["shards"] = [
            {
                "index": index,
                "node_id": shard_node_id(index),
                "live": not shard.crashed,
                "windows_answered": len(shard.node.outcomes),
                "windows_expected": (
                    len(shard_windows[index]) + shard.windows_adopted
                ),
                "windows_adopted": shard.windows_adopted,
                "heartbeat_misses": shard.heartbeat_misses,
            }
            for index, shard in enumerate(shards)
        ]
        summary["relays"] = [
            {
                "index": group_index,
                "node_id": relay_node_id(group_index),
                "frames_combined": relay.frames_combined,
                "sections_combined": relay.sections_combined,
                "singleton_forwards": relay.singleton_forwards,
                "frames_replayed": relay.frames_replayed,
                "fenced_frames": relay.fenced_frames,
            }
            for group_index, relay in enumerate(relays)
        ]
        summary["windows"] = {
            "expected": len(windows),
            "answered": len(answered),
            "completeness": (
                len(answered) / len(windows) if windows else 1.0
            ),
        }
        summary["epoch"] = (
            failover.map.epoch if failover is not None else 0
        )
        summary["staleness_s"] = collector.stat_max("oldest_pending_age_s")
        return summary

    coordinator: asyncio.Task | None = None
    main_task: asyncio.Task | None = None
    failure_task: asyncio.Task | None = None
    disturb_task: asyncio.Task | None = None
    try:
        # Arm chaos before any await: starting the telemetry HTTP plane
        # yields to the loop, and an unpaced replay can burst through
        # the whole run in those ticks — a disturb scheduled after it
        # would arm its tripwires against an already-finished cluster.
        if disturb is not None:
            disturb_task = asyncio.ensure_future(run_disturb())
        if sampler is not None:
            sampler.start()
        if telemetry is not None and telemetry.http_port is not None:

            def live_spans():
                if isinstance(tracer, RecordingTracer):
                    return tracer.spans
                return []

            http_server = TelemetryServer(
                tracer.registry,
                host=telemetry.http_host,
                port=telemetry.http_port,
                spans=live_spans,
                fleet=fleet_summary,
            )
            await http_server.start()
            if telemetry.announce is not None:
                telemetry.announce(http_server.port)

        coordinator = asyncio.ensure_future(coordinate_membership())

        async def main() -> None:
            assert coordinator is not None
            await coordinator
            results = await asyncio.gather(*replays, return_exceptions=True)
            for result in results:
                if isinstance(result, asyncio.CancelledError):
                    continue  # a chaos crash cancels its feeds
                if isinstance(result, BaseException):
                    raise result
            for shard in shards:
                await shard.done.wait()

        main_task = asyncio.ensure_future(main())
        failure_task = asyncio.ensure_future(failures.event.wait())
        done, _ = await asyncio.wait(
            {main_task, failure_task},
            timeout=config.timeout_s,
            return_when=asyncio.FIRST_COMPLETED,
        )
        if failure_task in done and failures.error is not None:
            raise TransportError(
                f"mesh cluster task failed: {failures.error!r}"
            ) from failures.error
        if main_task not in done:
            finished = sum(len(s.node.outcomes) for s in shards)
            raise TransportError(
                f"mesh run did not complete {len(windows)} windows within "
                f"{config.timeout_s}s ({finished} finished)"
            )
        main_task.result()
    finally:
        for task in (coordinator, main_task, failure_task, disturb_task):
            if task is not None and not task.done():
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        for task in replays:
            if not task.done():
                task.cancel()
        if failover is not None:
            await failover.close()
        for shard in shards:
            await shard.stop_monitor()
        for local in locals_by_id.values():
            await local.shutdown()
        for relay in relays:
            await relay.close()
        for _, _, _, stream in dialed:
            with contextlib.suppress(TransportError):
                await stream.close()
        await network.close()
        if http_server is not None:
            await http_server.stop()
        if sampler is not None:
            await sampler.stop()

    # ------------------------------------------------------------------
    # report
    wall_seconds = loop.time() - epoch
    #: Keyed by window: after a failover the dead shard's pre-crash
    #: answers and the successor's adopted share partition the windows,
    #: but a race on the very takeover boundary could answer one window
    #: on both sides (identically) — the report keeps one.
    outcome_index: dict[Window, WindowOutcome] = {}
    for shard in shards:
        for outcome in shard.node.outcomes:
            outcome_index.setdefault(outcome.window, outcome)
    outcomes = sorted(
        outcome_index.values(), key=lambda outcome: outcome.window
    )
    seal_to_result = LatencyStats()
    for shard in shards:
        for outcome in shard.node.outcomes:
            sealed = max(
                (
                    local.seal_walls.get(outcome.window, 0.0)
                    for local in locals_by_id.values()
                ),
                default=0.0,
            )
            finished = shard.result_walls.get(outcome.window)
            if finished is not None:
                seal_to_result.add(max(0.0, finished - sealed))

    bytes_by_layer: dict[str, int] = {}
    messages_by_layer: dict[str, int] = {}
    root_ingress = 0
    for layer, src, dst, stream in dialed:
        stats = stream.stats
        bytes_by_layer[layer] = (
            bytes_by_layer.get(layer, 0)
            + stats.bytes_sent
            + stats.bytes_received
        )
        messages_by_layer[layer] = (
            messages_by_layer.get(layer, 0)
            + stats.messages_sent
            + stats.messages_received
        )
        if layer in ("local_root", "relay_root"):
            root_ingress += stats.bytes_sent
        if tracer.enabled:
            tracer.record_link(
                src, dst,
                bytes=stats.bytes_sent, messages=stats.messages_sent,
            )
            tracer.record_link(
                dst, src,
                bytes=stats.bytes_received, messages=stats.messages_received,
            )

    telemetry_report: dict = {}
    if telemetry is not None and collector is not None:
        # Final pump: the in-band cadence may not have fired on a fast
        # run, so refresh and drain every uplink once more — cumulative
        # digests with latest-sequence-wins make this idempotent.
        for local in locals_by_id.values():
            if local.uplink is not None:
                local.refresh_uplink_stats()
                for frame in local.uplink.build(_TELEMETRY_WINDOW):
                    collector.on_message(frame)
        for relay in relays:
            if relay.uplink is not None:
                relay.refresh_uplink_stats()
                for frame in relay.uplink.build(_TELEMETRY_WINDOW):
                    collector.on_message(frame)
        traced_live = 0
        if isinstance(tracer, RecordingTracer):
            traced_live = sum(
                1 for span in tracer.spans if span.name.startswith("live_")
            )
        telemetry_report = {
            "http_port": (
                http_server.port if http_server is not None else None
            ),
            "sampler_samples": sampler.samples if sampler is not None else 0,
            "traced_live_spans": traced_live,
            "flight_recorder": (
                str(recorder.path) if recorder is not None else None
            ),
            "flight_recorder_dumped": (
                recorder.dumped if recorder is not None else False
            ),
            "fleet": fleet_summary(),
        }

    return MeshRunReport(
        outcomes=outcomes,
        windows=len(windows),
        events_sent=sum(server.events_sent for server in stream_servers),
        wall_seconds=wall_seconds,
        bytes_by_layer=bytes_by_layer,
        messages_by_layer=messages_by_layer,
        root_ingress_bytes=root_ingress,
        transport=config.transport,
        n_shards=config.n_shards,
        relay_fanin=config.relay_fanin,
        seal_to_result=seal_to_result,
        membership_epochs={
            index: shard.node.membership_epoch
            for index, shard in enumerate(shards)
        },
        members=shards[0].node.current_members,
        degraded_windows=sum(
            shard.node.degraded_windows for shard in shards
        ),
        dropped_sends=(
            sum(shard.dropped_sends for shard in shards)
            + sum(
                local.dropped_sends for local in locals_by_id.values()
            )
        ),
        heartbeat_misses=sum(
            shard.heartbeat_misses for shard in shards
        ),
        locals_declared_dead=sum(
            shard.locals_declared_dead for shard in shards
        ),
        relay_frames_combined=sum(
            relay.frames_combined for relay in relays
        ),
        relay_sections_combined=sum(
            relay.sections_combined for relay in relays
        ),
        shard_failovers=(
            failover.failovers if failover is not None else 0
        ),
        windows_adopted=sum(
            shard.windows_adopted for shard in shards
        ),
        relay_frames_replayed=sum(
            relay.frames_replayed for relay in relays
        ),
        fenced_frames=(
            sum(local.fenced_frames for local in locals_by_id.values())
            + sum(relay.fenced_frames for relay in relays)
        ),
        telemetry=telemetry_report,
    )


def run_mesh(
    config: MeshConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
    disturb=None,
) -> MeshRunReport:
    """Synchronous wrapper around :func:`run_mesh_cluster`."""
    return asyncio.run(
        run_mesh_cluster(config, streams, tracer=tracer, disturb=disturb)
    )
