"""Mesh deployment shape: shards, relays and the membership schedule."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.faults.plan import ToleranceConfig
from repro.obs.live.config import TelemetryConfig
from repro.runtime.transport import DEFAULT_QUEUE_FRAMES

__all__ = ["MembershipEvent", "MeshConfig"]


@dataclass(frozen=True, slots=True)
class MembershipEvent:
    """One planned elastic-membership change.

    Attributes:
        at_ms: Event-time boundary (must lie on the tumbling grid,
            strictly inside it).  A join makes ``local_id`` eligible for
            windows starting at ``at_ms``; a leave makes windows from
            ``at_ms`` on stop waiting for it.
        local_id: The local node joining or leaving.
        kind: ``"join"`` or ``"leave"``.
    """

    at_ms: int
    local_id: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ConfigurationError(
                f"membership kind must be 'join' or 'leave', got "
                f"{self.kind!r}"
            )
        if self.local_id < 1:
            raise ConfigurationError(
                f"membership events need a local id >= 1, got {self.local_id}"
            )


@dataclass(frozen=True, slots=True)
class MeshConfig:
    """Shape of one mesh run.

    Attributes:
        n_locals: Locals present from the start (ids ``1..n_locals``).
            Joiners get ids above that, named by the membership schedule.
        streams_per_local: Replay tasks feeding each local.
        n_shards: Root shards; window ownership is
            :func:`~repro.mesh.routing.shard_of`.
        relay_fanin: Children per relay.  ``0`` (the default) runs the
            flat topology — every local dials every shard directly.  With
            a positive fan-in, locals are partitioned into relay groups
            and only the relays dial the shards.
        query: The quantile query.  Mesh runs require a **fixed** γ:
            adaptive γ is per-root state, and independent shards would
            diverge from the single-root baseline.
        batch_size: Events per replayed batch.
        transport: ``"memory"`` or ``"tcp"``.
        queue_frames: Bound of each in-memory pipe direction.
        timeout_s: Overall run deadline; ``None`` waits forever.
        time_scale: Wall seconds per event-time second for the replays.
            ``0`` (the default) replays unpaced, as fast as backpressure
            allows; a positive scale paces the run so telemetry scrapes
            and watchers see a *serving* mesh rather than a burst.
        membership: Planned joins and leaves (may be empty).
        relay_flush_s: Relay combine-buffer deadline: a window's combined
            frame is forwarded when every eligible child has reported or
            when this many wall seconds have passed since the first
            section arrived, whichever is first — a crashed child can
            delay a relay frame, never stall it.
        tolerance: Optional survival policy.  ``None`` (the default) runs
            the deterministic fail-fast path, which is also the
            bit-identity configuration; set it to compose with fault
            injection (heartbeats flow through relays transparently).
        telemetry: Optional fleet-telemetry plane.  ``None`` (the
            default) is the bit-identity configuration: no tracer, no
            uplink tasks, zero telemetry bytes on the wire.  Set it to
            start per-node telemetry uplinks, the coordinator's
            :class:`~repro.obs.fleet.FleetCollector` and (if
            ``http_port`` is set) the ``/fleet`` HTTP surface.
    """

    n_locals: int = 4
    streams_per_local: int = 1
    n_shards: int = 1
    relay_fanin: int = 0
    query: QuantileQuery = field(default_factory=QuantileQuery)
    batch_size: int = 512
    transport: str = "memory"
    queue_frames: int = DEFAULT_QUEUE_FRAMES
    timeout_s: float | None = 60.0
    time_scale: float = 0.0
    membership: tuple[MembershipEvent, ...] = ()
    relay_flush_s: float = 1.0
    tolerance: ToleranceConfig | None = None
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.n_locals < 1:
            raise ConfigurationError("need at least one local node")
        if self.streams_per_local < 1:
            raise ConfigurationError("need at least one stream per local")
        if self.n_shards < 1:
            raise ConfigurationError(
                f"need at least one root shard, got {self.n_shards}"
            )
        if self.time_scale < 0:
            raise ConfigurationError(
                f"time scale must be >= 0, got {self.time_scale}"
            )
        if self.relay_fanin < 0:
            raise ConfigurationError(
                f"relay fan-in must be >= 0, got {self.relay_fanin}"
            )
        if self.transport not in ("memory", "tcp"):
            raise ConfigurationError(
                f"transport must be 'memory' or 'tcp', got {self.transport!r}"
            )
        if self.query.adaptive:
            raise ConfigurationError(
                "mesh runs need a fixed gamma: adaptive gamma is per-root "
                "state and independent shards would diverge"
            )
        if self.query.is_sliding:
            raise ConfigurationError("the live runtime seals tumbling grids only")
        if self.relay_flush_s <= 0:
            raise ConfigurationError(
                f"relay_flush_s must be > 0, got {self.relay_flush_s}"
            )
        seen: set[tuple[int, str]] = set()
        for event in self.membership:
            key = (event.local_id, event.kind)
            if key in seen:
                raise ConfigurationError(
                    f"duplicate membership event for local "
                    f"{event.local_id} ({event.kind})"
                )
            seen.add(key)
            if event.kind == "join" and event.local_id <= self.n_locals:
                raise ConfigurationError(
                    f"local {event.local_id} is an initial member and "
                    f"cannot join at runtime"
                )
