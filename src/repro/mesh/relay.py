"""Relay tier: merge children's frames so root ingress scales with relays.

A relay sits between a group of locals and every root shard.  Downstream
it looks exactly like the root (children dial it and speak the unmodified
local protocol); upstream it looks like a single very productive local.
Its one job is *combining*: the per-window synopsis batches of its
children become one :class:`~repro.network.messages.RelaySynopsisMessage`
whose compact 36-byte entries drop everything the section structure
reconstructs, and candidate runs become one
:class:`~repro.network.messages.RelayRunsMessage`.  The root explodes the
sections back into the identical per-child frames, so the operators on
both ends run unmodified and the quantile values stay bit-identical —
the relay saves header and per-synopsis overhead, not information.

Combining waits for every window-eligible child, but never indefinitely:
a flush deadline (:attr:`~repro.mesh.config.MeshConfig.relay_flush_s`)
forwards whatever has arrived, and anything after that travels as a
singleton frame.  A crashed child can therefore delay a relay frame by
one deadline, never stall it — degradation is the root's call, made by
its failure detector on the heartbeats the relay forwards verbatim.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses

from repro.errors import TransportError
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    Message,
    RelayRunsMessage,
    RelaySynopsisMessage,
    RouteUpdateMessage,
    ShardFailoverMessage,
    SynopsisMessage,
    SynopsisRequestMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
    WindowReleaseMessage,
)
from repro.mesh.routing import ShardMap, relay_node_id
from repro.obs.live.context import TraceContext, trace_id_for_window
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.codec import Hello
from repro.runtime.transport import FailureLatch, MessageStream
from repro.streaming.columns import EventColumns
from repro.streaming.windows import Window

__all__ = [
    "combine_synopses",
    "combine_runs",
    "explode_synopses",
    "explode_runs",
    "RelayServer",
]

#: Placeholder window on control/telemetry frames (the wire header needs
#: a valid window; these frames are not about any window).
_CONTROL_WINDOW = Window(0, 1)


def combine_synopses(
    parts: "dict[int, SynopsisMessage]", sender: int, window: Window,
    contexts: "dict[int, TraceContext | None] | None" = None,
) -> RelaySynopsisMessage:
    """Merge per-child synopsis messages into one relay frame.

    Sections are ordered by child id so the same inputs always produce
    the same bytes.  ``contexts`` (child → the trace context that child's
    frame carried) stamps one section context per section in the same
    order; they travel in the frame's header extension block, so the
    payload bytes — and old peers' decoding — are unchanged.
    """
    children = sorted(parts)
    sections = tuple(
        (child, parts[child].local_window_size, tuple(parts[child].synopses))
        for child in children
    )
    section_contexts = (
        tuple(contexts.get(child) for child in children) if contexts else ()
    )
    return RelaySynopsisMessage(
        sender=sender, window=window, sections=sections,
        section_contexts=section_contexts,
    )


def combine_runs(
    parts: "dict[tuple[int, int], CandidateEventsMessage]",
    sender: int,
    window: Window,
    contexts: "dict[tuple[int, int], TraceContext | None] | None" = None,
) -> RelayRunsMessage:
    """Merge per-child candidate runs into one relay frame."""
    keys = sorted(parts)
    # Columnar runs pass through unconverted (they are immutable batch
    # views); object runs snapshot to tuples exactly as before.
    def section_events(events):
        return (
            events if isinstance(events, EventColumns) else tuple(events)
        )

    sections = tuple(
        (child, index, section_events(parts[child, index].events))
        for child, index in keys
    )
    section_contexts = (
        tuple(contexts.get(key) for key in keys) if contexts else ()
    )
    return RelayRunsMessage(
        sender=sender, window=window, sections=sections,
        section_contexts=section_contexts,
    )


def explode_synopses(
    message: RelaySynopsisMessage,
) -> "list[SynopsisMessage]":
    """Reconstruct the per-child synopsis frames a relay combined.

    The result is exactly what each child would have sent directly, so
    the identification operator cannot tell a relay was involved.
    """
    return [
        SynopsisMessage(
            sender=node_id,
            window=message.window,
            synopses=tuple(synopses),
            local_window_size=size,
        )
        for node_id, size, synopses in message.sections
    ]


def explode_runs(message: RelayRunsMessage) -> "list[CandidateEventsMessage]":
    """Reconstruct the per-child candidate-run frames a relay combined."""
    return [
        CandidateEventsMessage(
            sender=node_id,
            window=message.window,
            slice_index=slice_index,
            events=tuple(events),
        )
        for node_id, slice_index, events in message.sections
    ]


class RelayServer:
    """One relay: children dial down, the relay dials every shard up.

    Not a :class:`~repro.runtime.servers.NodeHost` — a relay hosts no
    operator.  It is pure forwarding machinery with two combine buffers
    (synopses up, candidate runs up) and a broadcast fan-out (releases
    and gamma updates down).

    Routing conventions on the shard links:

    * upward frames carry ``group_id`` 0 and the relay's own sender id on
      the outer frame (inner sections keep the children's ids);
    * downward frames from a shard carry the destination child in
      ``group_id`` (reset to 0 before forwarding, so children see exactly
      the frames a direct root would send); ``group_id`` 0 means
      broadcast to every connected child.

    Membership messages pass through unmodified — but the relay applies
    them to its own eligibility table *first*, so by the time any shard
    has admitted a joiner the relay already waits for (or has stopped
    waiting for) the right children.
    """

    def __init__(self, index: int, *, window_length_ms: int, n_shards: int,
                 flush_after_s: float = 1.0,
                 tracer: Tracer = NOOP_TRACER,
                 failures: FailureLatch | None = None,
                 on_shard_down=None,
                 uplink=None,
                 uplink_interval_s: float = 0.25) -> None:
        self.index = index
        self.node_id = relay_node_id(index)
        self._length = window_length_ms
        self._n_shards = n_shards
        #: Epoch-versioned shard liveness; upward frames route by owner.
        self._shard_map = ShardMap(max(1, n_shards))
        #: Coordinator callback ``(shard_index) -> None`` fired when an
        #: uplink to a shard dies (failure-detection evidence).
        self._on_shard_down = on_shard_down
        self._flush_after_s = flush_after_s
        self.tracer = tracer
        self._failures = failures
        self._loop = asyncio.get_event_loop()
        #: Connected children and their streams.
        self._children: dict[int, MessageStream] = {}
        #: Elastic eligibility, mirroring the root's membership table.
        self._joined_from: dict[int, int] = {}
        self._left_at: dict[int, int] = {}
        #: Shard index → dialed upstream stream.
        self._shards: dict[int, MessageStream] = {}
        self._readers: list[asyncio.Task] = []
        #: Optional :class:`~repro.obs.fleet.TelemetryUplink` for the
        #: relay's own metrics (flush delay digest, combine counters);
        #: ``None`` ships zero telemetry bytes.
        self.uplink = uplink
        self._uplink_interval = uplink_interval_s
        self._telemetry_task: asyncio.Task | None = None
        #: Synopsis combine buffer: window → child → frame.
        self._syn_buffer: dict[Window, dict[int, SynopsisMessage]] = {}
        self._syn_timers: dict[Window, asyncio.TimerHandle] = {}
        #: Trace context each buffered child frame arrived under, kept
        #: aligned with the combine buffers so the flushed frame can
        #: carry one section context per section.
        self._syn_contexts: dict[Window, dict[int, TraceContext | None]] = {}
        self._run_contexts: dict[
            Window, dict[tuple[int, int], TraceContext | None]
        ] = {}
        #: Wall time the first section of each buffered window arrived —
        #: the flush-delay clock.
        self._syn_first: dict[Window, float] = {}
        self._run_first: dict[Window, float] = {}
        #: Candidate-run combine buffer: window → (child, index) → frame,
        #: plus the (child, index) pairs owed per window, learned from the
        #: requests forwarded down.
        self._run_buffer: dict[
            Window, dict[tuple[int, int], CandidateEventsMessage]
        ] = {}
        self._run_expected: dict[Window, set[tuple[int, int]]] = {}
        self._run_timers: dict[Window, asyncio.TimerHandle] = {}
        self._closing = False
        #: Sent-but-unreleased combined frames per window: the failover
        #: replay source.  A window's release (observed on its way down)
        #: is the pruning horizon, exactly as at the locals.
        self._retained: dict[Window, list[Message]] = {}
        self.frames_combined = 0
        self.sections_combined = 0
        self.singleton_forwards = 0
        self.failovers_seen = 0
        self.frames_replayed = 0
        self.fenced_frames = 0

    # ------------------------------------------------------------------
    # wiring

    async def connect_shards(
        self, shards: "dict[int, MessageStream]"
    ) -> None:
        """Adopt the dialed shard streams and announce ourselves on each."""
        self._shards = dict(shards)
        for stream in self._shards.values():
            await stream.send(Hello(node_id=self.node_id, role="relay"))
        for shard_index, stream in self._shards.items():
            task = asyncio.ensure_future(self._read_shard(shard_index, stream))
            self._readers.append(task)
        if self.uplink is not None:
            self._telemetry_task = asyncio.ensure_future(
                self._telemetry_uplink()
            )

    async def _telemetry_uplink(self) -> None:
        """Ship the relay's own metrics upstream on the uplink cadence."""
        uplink = self.uplink
        assert uplink is not None
        while not self._closing:
            before = self._loop.time()
            await asyncio.sleep(self._uplink_interval)
            lag = self._loop.time() - before - self._uplink_interval
            uplink.observe("event_loop_lag_s", max(0.0, lag))
            self.refresh_uplink_stats()
            for frame in uplink.build(_CONTROL_WINDOW):
                await self._send_shard(_CONTROL_WINDOW, frame)

    def refresh_uplink_stats(self) -> None:
        """Refresh the flat stats the next uplink snapshot will carry."""
        uplink = self.uplink
        if uplink is None:
            return
        uplink.set_stat("frames_combined", float(self.frames_combined))
        uplink.set_stat("sections_combined", float(self.sections_combined))
        uplink.set_stat(
            "singleton_forwards", float(self.singleton_forwards)
        )
        uplink.set_stat("frames_replayed", float(self.frames_replayed))
        uplink.set_stat("failovers_seen", float(self.failovers_seen))
        uplink.set_stat("children", float(len(self._children)))

    async def close(self) -> None:
        """Stop forwarding and drop every link (teardown or chaos kill)."""
        self._closing = True
        for timer in (*self._syn_timers.values(), *self._run_timers.values()):
            timer.cancel()
        self._syn_timers.clear()
        self._run_timers.clear()
        if self._telemetry_task is not None:
            self._readers.append(self._telemetry_task)
            self._telemetry_task = None
        for task in self._readers:
            task.cancel()
        for task in self._readers:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._readers.clear()
        for stream in (*self._children.values(), *self._shards.values()):
            with contextlib.suppress(TransportError):
                await stream.close()

    # ------------------------------------------------------------------
    # downstream: one connection handler per dialing child

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing child local."""
        first = await stream.recv()
        if not isinstance(first, Hello) or first.role != "local":
            raise TransportError(
                f"relay {self.node_id} expected a local hello, got "
                f"{type(first).__name__}"
            )
        child = first.node_id
        self._children[child] = stream
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    break  # child died mid-frame; the root's detector rules
                if message is None:
                    break
                await self._on_child_message(
                    child, message, stream.last_context
                )
        finally:
            if self._children.get(child) is stream:
                del self._children[child]

    async def _on_child_message(
        self, child: int, message: Message,
        context: "TraceContext | None" = None,
    ) -> None:
        if isinstance(message, SynopsisMessage):
            await self._buffer_synopsis(child, message, context)
        elif isinstance(message, CandidateEventsMessage):
            await self._buffer_run(child, message, context)
        elif isinstance(
            message, (TelemetrySnapshotMessage, TelemetryDigestMessage)
        ):
            # Fleet uplinks pass through with the child's sender id
            # intact, like heartbeats — one shard suffices, every shard
            # feeds the same collector.
            await self._send_shard(message.window, message)
        elif isinstance(message, JoinMessage):
            # Apply locally *before* any shard sees it: eligibility at the
            # relay must never lag the roots'.
            self._joined_from[child] = message.first_window_start
            self._left_at.pop(child, None)
            await self._send_all_shards(message)
        elif isinstance(message, LeaveMessage):
            self._left_at[child] = message.effective_from
            await self._send_all_shards(message)
            await self._flush_unblocked_windows()
        elif isinstance(message, HeartbeatMessage):
            # Forward verbatim (sender intact): the shards' failure
            # detectors track children straight through the relay.
            await self._send_all_shards(message)
        else:
            raise TransportError(
                f"relay {self.node_id} cannot forward "
                f"{type(message).__name__} from child {child}"
            )

    # ------------------------------------------------------------------
    # upstream: one reader task per dialed shard

    async def _read_shard(
        self, shard_index: int, stream: MessageStream
    ) -> None:
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    self._report_shard_down(shard_index)
                    return
                if message is None:
                    self._report_shard_down(shard_index)
                    return
                if not self._shard_map.is_live(shard_index):
                    # Epoch fence: a dead shard resurrecting cannot speak
                    # for windows that already moved to its successor.
                    self.fenced_frames += 1
                    continue
                await self._on_shard_message(message)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    def _report_shard_down(self, shard_index: int) -> None:
        """Hand link-death evidence for a shard uplink to the coordinator."""
        if self._closing or self._on_shard_down is None:
            return
        self._on_shard_down(shard_index)

    async def _on_shard_failover(self, message: ShardFailoverMessage) -> None:
        """Converge on a newer shard map and replay retained frames.

        Every retained combined frame whose window just changed owner is
        re-sent (now routed to the successor), and the announcement is
        forwarded to every child so locals behind this relay converge on
        the same epoch.  Stale epochs are dropped — the resurrection
        fence.
        """
        if message.epoch <= self._shard_map.epoch:
            return
        old_map = self._shard_map
        self._shard_map = ShardMap(
            n_shards=old_map.n_shards,
            epoch=message.epoch,
            dead=frozenset(message.dead),
        )
        self.failovers_seen += 1
        for child in list(self._children):
            await self._send_child(child, message)
        for window in sorted(self._retained):
            old_owner = old_map.owner(window.start, self._length)
            new_owner = self._shard_map.owner(window.start, self._length)
            if old_owner == new_owner:
                continue
            for frame in self._retained[window]:
                self.frames_replayed += 1
                await self._send_shard(window, frame)
        if self.tracer.enabled:
            now = self._loop.time()
            self.tracer.record(
                "relay_failover", self.node_id, now, now,
                epoch=message.epoch, replayed=self.frames_replayed,
            )

    async def _on_shard_message(self, message: Message) -> None:
        if isinstance(message, ShardFailoverMessage):
            await self._on_shard_failover(message)
            return
        if isinstance(message, WindowReleaseMessage):
            # The release is the retained-buffer pruning horizon: the
            # window is answered, so nothing of it needs replaying to a
            # successor ever again.
            self._retained.pop(message.window, None)
        if isinstance(message, CandidateRequestMessage):
            child = message.group_id
            if message.slice_indices:
                expected = self._run_expected.setdefault(message.window, set())
                for index in message.slice_indices:
                    expected.add((child, index))
            await self._send_child(child, message)
        elif isinstance(message, (
            WindowReleaseMessage, GammaUpdateMessage, RouteUpdateMessage,
            SynopsisRequestMessage, HeartbeatMessage,
        )):
            if message.group_id == 0:
                for child in list(self._children):
                    await self._send_child(child, message)
            else:
                await self._send_child(message.group_id, message)
        else:
            raise TransportError(
                f"relay {self.node_id} cannot route "
                f"{type(message).__name__} from a shard"
            )

    # ------------------------------------------------------------------
    # combine buffers

    def _eligible_children(self, window: Window) -> "set[int]":
        """Connected children that are members for ``window``."""
        return {
            child
            for child in self._children
            if self._joined_from.get(child, window.start) <= window.start
            and window.start < self._left_at.get(child, window.end)
        }

    async def _buffer_synopsis(
        self, child: int, message: SynopsisMessage,
        context: "TraceContext | None" = None,
    ) -> None:
        window = message.window
        buffer = self._syn_buffer.setdefault(window, {})
        if not buffer:
            self._syn_first[window] = self._loop.time()
        if window not in self._syn_timers:
            # Covers the late case too: a section arriving after the
            # combined flush (reliability resend, or a child slower than
            # the deadline) opens a fresh buffer and travels once its own
            # deadline fires.  The root deduplicates, so that is safe.
            self._syn_timers[window] = self._loop.call_later(
                self._flush_after_s, self._fire, window, self._flush_synopses
            )
        buffer[child] = message
        self._syn_contexts.setdefault(window, {})[child] = context
        if self._eligible_children(window) <= set(buffer):
            await self._flush_synopses(window)

    async def _buffer_run(
        self, child: int, message: CandidateEventsMessage,
        context: "TraceContext | None" = None,
    ) -> None:
        window = message.window
        key = (child, message.slice_index)
        buffer = self._run_buffer.setdefault(window, {})
        if not buffer:
            self._run_first[window] = self._loop.time()
        buffer[key] = message
        self._run_contexts.setdefault(window, {})[key] = context
        if window not in self._run_timers:
            self._run_timers[window] = self._loop.call_later(
                self._flush_after_s, self._fire, window, self._flush_runs
            )
        expected = self._run_expected.get(window, set())
        if expected and expected <= set(buffer):
            await self._flush_runs(window)

    def _fire(self, window: Window, flush) -> None:
        """Deadline hook: flush whatever the window has accumulated."""
        if self._closing:
            return
        task = asyncio.ensure_future(self._guarded(flush(window)))
        del task  # fire-and-forget; failures land in the latch

    async def _guarded(self, awaitable) -> None:
        try:
            await awaitable
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    def _observe_flush_delay(self, first_at: "float | None") -> None:
        if self.uplink is not None and first_at is not None:
            self.uplink.observe(
                "relay_flush_delay_s",
                max(0.0, self._loop.time() - first_at),
            )

    async def _flush_synopses(self, window: Window) -> None:
        parts = self._syn_buffer.pop(window, None)
        contexts = self._syn_contexts.pop(window, None)
        timer = self._syn_timers.pop(window, None)
        if timer is not None:
            timer.cancel()
        if not parts:
            return
        self._observe_flush_delay(self._syn_first.pop(window, None))
        combined = combine_synopses(parts, self.node_id, window, contexts)
        if len(parts) > 1:
            self.frames_combined += 1
            self.sections_combined += len(parts)
        else:
            self.singleton_forwards += 1
        if self.tracer.enabled:
            now = self._loop.time()
            self.tracer.record(
                "relay_combine", self.node_id, now, now,
                window=window, sections=len(parts),
                bytes=combined.wire_bytes,
                trace_id=trace_id_for_window(window.start),
            )
        self._retained.setdefault(window, []).append(combined)
        await self._send_shard(window, combined)

    async def _flush_runs(self, window: Window) -> None:
        parts = self._run_buffer.pop(window, None)
        contexts = self._run_contexts.pop(window, None)
        timer = self._run_timers.pop(window, None)
        if timer is not None:
            timer.cancel()
        expected = self._run_expected.pop(window, None)
        if not parts:
            return
        if expected:
            # Keep waiting for runs the deadline flush did not cover; a
            # later arrival re-arms its own deadline.
            remaining = expected - set(parts)
            if remaining:
                self._run_expected[window] = remaining
        self._observe_flush_delay(self._run_first.pop(window, None))
        combined = combine_runs(parts, self.node_id, window, contexts)
        if len(parts) > 1:
            self.frames_combined += 1
            self.sections_combined += len(parts)
        else:
            self.singleton_forwards += 1
        if self.tracer.enabled:
            now = self._loop.time()
            self.tracer.record(
                "relay_combine", self.node_id, now, now,
                window=window, sections=len(parts),
                bytes=combined.wire_bytes,
                trace_id=trace_id_for_window(window.start),
            )
        self._retained.setdefault(window, []).append(combined)
        await self._send_shard(window, combined)

    async def _flush_unblocked_windows(self) -> None:
        """Re-check every buffered window after a membership change."""
        for window in list(self._syn_buffer):
            buffer = self._syn_buffer.get(window)
            if buffer and self._eligible_children(window) <= set(buffer):
                await self._flush_synopses(window)

    # ------------------------------------------------------------------
    # sends

    async def _send_shard(self, window: Window, message: Message) -> None:
        shard = self._shard_map.owner(window.start, self._length)
        stream = self._shards.get(shard)
        if stream is None:
            return  # torn down; nothing upstream to tell
        with contextlib.suppress(TransportError):
            await stream.send(message)

    async def _send_all_shards(self, message: Message) -> None:
        for stream in self._shards.values():
            with contextlib.suppress(TransportError):
                await stream.send(message)

    async def _send_child(self, child: int, message: Message) -> None:
        stream = self._children.get(child)
        if stream is None:
            return  # departed or crashed; the root's detector rules
        if message.group_id != 0:
            # Children must see the frames a direct root would send.
            message = _with_group(message, 0)
        with contextlib.suppress(TransportError):
            await stream.send(message)


def _with_group(message: Message, group_id: int) -> Message:
    """Copy ``message`` with a different ``group_id``."""
    return dataclasses.replace(message, group_id=group_id)
