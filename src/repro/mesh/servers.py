"""Mesh hosts: sharded roots, multi-uplink locals, gated stream replay.

All three are thin shells around the unmodified live hosts:

``MeshRootServer``
    A :class:`~repro.runtime.servers.RootServer` whose operator owns only
    the windows its shard is responsible for.  It accepts both ``local``
    and ``relay`` peers, applies membership messages to the operator's
    table, and explodes relay frames back into the per-child originals —
    so the identification and calculation operators run *unmodified* and
    produce exactly the single-root bytes-for-bytes outcomes.

``MeshLocalServer``
    A :class:`~repro.runtime.servers.LocalServer` that holds one uplink
    per shard (flat mode) or a single relay uplink, and routes each
    outgoing frame by its window's owner shard.  The operator still
    addresses everything to root id 0; routing is a host concern.

``PhasedStreamServer``
    A stream replay that pauses at membership boundaries: it ships every
    pre-boundary batch, seals them with a watermark *at* the boundary,
    and then waits for the cluster driver to apply the joins/leaves and
    open the gate.  Because no post-boundary event can be in flight
    before the gate opens, no window at or past the boundary can complete
    before every shard has applied the membership change — which is the
    whole correctness argument for elastic membership, enforced by
    construction instead of by locks.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import dataclasses
from typing import Mapping, Sequence

from repro.errors import TransportError
from repro.network.messages import (
    EventBatchMessage,
    GammaUpdateMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    Message,
    RelayRunsMessage,
    RelaySynopsisMessage,
    RouteUpdateMessage,
    ShardFailoverMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
    WatermarkMessage,
    WindowReleaseMessage,
)
from repro.mesh.relay import explode_runs, explode_synopses
from repro.mesh.routing import (
    RELAY_ID_BASE,
    SHARD_ID_BASE,
    ShardMap,
    shard_node_id,
)
from repro.obs.live.context import (
    TraceContext,
    context_scope,
    should_sample,
    trace_id_for_window,
)
from repro.runtime.codec import Hello
from repro.runtime.servers import LocalServer, RootServer, batches_for
from repro.runtime.transport import MessageStream
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = ["MeshRootServer", "MeshLocalServer", "PhasedStreamServer"]

#: Placeholder window on membership/heartbeat frames (the wire header
#: needs a valid window; these frames are not about any window).
_CONTROL_WINDOW = Window(0, 1)


class MeshRootServer(RootServer):
    """One root shard: the plain root server plus mesh-frame handling."""

    def __init__(self, node, fabric, *, expected_windows: int,
                 downstream: "Mapping[int, int] | None" = None,
                 uplink=None, **kwargs) -> None:
        super().__init__(node, fabric, expected_windows=expected_windows,
                         **kwargs)
        #: Optional :class:`~repro.obs.fleet.TelemetryUplink`: the shard's
        #: own contribution to the fleet plane (ingress frame sizes as a
        #: digest plus outcome counters).  Shards are collocated with the
        #: collector, so the cluster driver pumps this directly — no wire
        #: hop.
        self.uplink = uplink
        #: Static relay routing: child local id → the peer (relay id)
        #: whose stream carries frames for it.  Empty in flat mode.
        self._downstream: dict[int, int] = dict(downstream or {})
        #: Shards whose window share is empty are born done.
        if expected_windows == 0:
            self.done.set()
        #: Frames addressed to peers this shard has no stream to are
        #: dropped, not fatal: a departed local's release, a gamma
        #: broadcast to a child behind a relay that died, etc.
        self._drop_unroutable = True
        #: Failover state: set by :meth:`crash` (chaos) and by the
        #: coordinator's takeover protocol (:meth:`adopt_windows`).
        self.crashed = False
        self.failover_epoch = 0
        self.windows_adopted = 0
        self._crash_after: int | None = None

    # -- failover --------------------------------------------------------

    def crash_after(self, n_outcomes: int) -> None:
        """Arm a deterministic mid-run crash (chaos tripwire).

        The serve loop freezes this shard *synchronously* — flag set and
        fabric halted with no intervening yield — the moment its
        operator has answered ``n_outcomes`` windows, then severs the
        peer links asynchronously.  Unpaced replays burst through whole
        runs between event-loop ticks, so a wall-clock kill cannot
        reliably land mid-run; the tripwire pins the kill to a protocol
        point instead, making ``kill-shard`` scenarios reproducible.
        """
        self._crash_after = n_outcomes

    def _maybe_trip_crash(self) -> bool:
        if (
            self._crash_after is None
            or self.crashed
            or len(self.node.outcomes) < self._crash_after
        ):
            return False
        self.crashed = True
        self.fabric.halt()
        asyncio.ensure_future(self.crash())
        return True

    async def crash(self) -> None:
        """Abrupt shard death: stop monitoring and sever every peer link.

        Peers observe the EOF, report the link down, and the coordinator
        runs the takeover.  The operator's already-answered outcomes stay
        readable in-process for the final report — exactly what a
        post-mortem of the real process would recover from its log.
        """
        self.crashed = True
        self.fabric.halt()
        await self.stop_monitor()
        for stream in list(self._peers.values()):
            with contextlib.suppress(TransportError):
                await stream.close()
        self._peers.clear()

    def adopt_windows(self, windows: "Sequence[Window]", *, epoch: int,
                      finalized: "Sequence[Window]" = ()) -> None:
        """Take over a dead predecessor's unanswered windows.

        ``windows`` is the share this shard must now answer on top of its
        own; ``finalized`` is everything the predecessor already answered
        (inherited so replayed synopses get releases, never duplicate
        answers).  Completion arithmetic is re-armed: a shard that was
        born done (or finished early) wakes back up for the adopted
        share.
        """
        self.failover_epoch = max(self.failover_epoch, epoch)
        self.node.inherit_finalized(finalized)
        self._expected_windows += len(windows)
        self.windows_adopted += len(windows)
        outcomes = len(self.node.outcomes) + self.node.aborted_windows
        if outcomes < self._expected_windows:
            self.done.clear()
        if self.tracer.enabled:
            now = self.fabric.now
            self.tracer.record(
                "shard_takeover", self.node_id, now, now,
                epoch=epoch, adopted=len(windows),
            )
            self.tracer.registry.counter(
                "shard_windows_adopted_total",
                "Windows re-homed to a successor shard by failover.",
            ).inc(len(windows))

    async def announce_failover(self, shard_map: ShardMap) -> None:
        """Broadcast the new epoch's shard map to every connected peer.

        In-band announcement: locals (flat mode) and relays (who forward
        to their children) converge on the same ``(epoch, dead)`` pair
        and reroute + replay from retained buffers.
        """
        update = ShardFailoverMessage(
            sender=self.node_id,
            window=_CONTROL_WINDOW,
            epoch=shard_map.epoch,
            dead=tuple(sorted(shard_map.dead)),
        )
        for stream in list(self._peers.values()):
            with contextlib.suppress(TransportError):
                await stream.send(update)

    # -- membership & relay frames -------------------------------------

    async def dispatch(
        self, message: Message, context: TraceContext | None = None
    ) -> None:
        if isinstance(message, JoinMessage):
            if self.node.add_local(message.sender, message.first_window_start):
                self._note_membership()
                await self._broadcast_route_update()
            await self.flush()
            return
        if isinstance(message, LeaveMessage):
            if self.node.remove_local(
                message.sender, message.effective_from, self.fabric.now
            ):
                self._note_membership()
                await self._broadcast_route_update()
            # The leave may have completed degraded-eligible windows.
            await self.flush()
            self._account_outcomes()
            return
        if isinstance(message, RelaySynopsisMessage):
            # Each exploded part dispatches under its own section context
            # (captured by the relay at combine time), so the child's
            # spans — not the relay hop's — parent the shard-side work
            # and the window's timeline survives the combine/explode.
            contexts = message.section_contexts
            for index, part in enumerate(explode_synopses(message)):
                part_context = (
                    contexts[index] if index < len(contexts) else None
                )
                await super().dispatch(part, part_context or context)
            return
        if isinstance(message, RelayRunsMessage):
            contexts = message.section_contexts
            for index, part in enumerate(explode_runs(message)):
                part_context = (
                    contexts[index] if index < len(contexts) else None
                )
                await super().dispatch(part, part_context or context)
            return
        await super().dispatch(message, context)

    def _note_membership(self) -> None:
        if self.tracer.enabled:
            now = self.fabric.now
            members = self.node.current_members
            self.tracer.record(
                "mesh_membership", self.node_id, now, now,
                epoch=self.node.membership_epoch, members=len(members),
            )
            self.tracer.registry.gauge(
                "mesh_members",
                "Locals currently admitted to the mesh.",
            ).set(float(len(members)))

    async def _broadcast_route_update(self) -> None:
        update = RouteUpdateMessage(
            sender=self.node_id,
            window=_CONTROL_WINDOW,
            epoch=self.node.membership_epoch,
            members=self.node.current_members,
        )
        for stream in list(self._peers.values()):
            with contextlib.suppress(TransportError):
                await stream.send(update)

    # -- relay-aware outbound routing ----------------------------------

    async def flush(self) -> None:
        """Ship queued frames, routing relay children via their relay.

        A frame for a child behind a relay travels on the relay's stream
        with the child in ``group_id``; identical broadcast-shaped frames
        (releases, gamma updates) are coalesced into one ``group_id`` 0
        frame per relay, which the relay fans out — the downlink copy of
        the uplink's combining.
        """
        if not self._downstream:
            await super().flush()
            return
        broadcast_sent: set[tuple[int, type, Window, int]] = set()
        for dst, message in self.fabric.drain():
            peer_id = self._downstream.get(dst, dst)
            if peer_id != dst and isinstance(
                message, (WindowReleaseMessage, GammaUpdateMessage)
            ):
                gamma = getattr(message, "gamma", 0)
                key = (peer_id, type(message), message.window, gamma)
                if key in broadcast_sent:
                    continue
                broadcast_sent.add(key)
                outgoing = message  # group_id 0: relay broadcasts it
            elif peer_id != dst:
                outgoing = dataclasses.replace(message, group_id=dst)
            else:
                outgoing = message
            stream = self._peers.get(peer_id)
            if stream is None:
                self.dropped_sends += 1
                continue
            try:
                await stream.send(outgoing)
            except TransportError:
                self.dropped_sends += 1

    # -- connection handling -------------------------------------------

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing local or relay."""
        hello = await self.expect_hello(stream, ("local", "relay"))
        self.register_peer(hello.node_id, stream)
        if self._tolerance is not None and hello.role == "local":
            self._on_local_hello(hello)
            await self.flush()
            self._account_outcomes()
        elif self._tolerance is not None:
            # A relay's children never dial us, so their hellos cannot
            # enroll them; enroll every known member now and let their
            # forwarded heartbeats keep the deadlines fed.
            for local_id in self.node.current_members:
                self._observe(local_id)
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    if self._tolerance is None:
                        raise
                    break
                if message is None:
                    break
                if self.crashed:
                    # Crash is a synchronous freeze: the flag is set
                    # before the crash yields, so nothing dispatched
                    # after it can mutate the operator's outcome log.
                    break
                if isinstance(message, Hello):
                    raise TransportError("unexpected second hello")
                if self._tolerance is not None:
                    # Liveness evidence is per *original sender*: frames a
                    # relay forwards keep the child's id, so children
                    # behind relays are monitored transparently; the relay
                    # id itself (no heartbeats of its own) is never
                    # enrolled.
                    if message.sender in self.node.local_ids:
                        self._observe(message.sender)
                    if isinstance(message, HeartbeatMessage):
                        continue
                if isinstance(
                    message, (TelemetrySnapshotMessage, TelemetryDigestMessage)
                ):
                    # Fleet uplinks ride the data links like heartbeats;
                    # they feed the coordinator's collector, never the
                    # operator.
                    if self._on_telemetry is not None:
                        self._on_telemetry(message)
                    continue
                if self.uplink is not None:
                    self.uplink.observe(
                        "shard_ingress_bytes", float(message.wire_bytes)
                    )
                    self.uplink.inc_stat("ingress_frames")
                await self.dispatch(message, stream.last_context)
                self._account_outcomes()
                if self._maybe_trip_crash():
                    break
        finally:
            if self._peers.get(hello.node_id) is stream:
                del self._peers[hello.node_id]


class MeshLocalServer(LocalServer):
    """One local with an uplink per shard (or one relay uplink)."""

    def __init__(self, node, fabric, *, n_shards: int,
                 on_upstream_down=None, uplink=None,
                 uplink_interval_s: float = 0.25, **kwargs) -> None:
        super().__init__(node, fabric, dial_root=None, **kwargs)
        self._n_shards = n_shards
        #: Peer id → dialed stream; a single entry in relay mode.
        self._upstreams: dict[int, MessageStream] = {}
        #: Set iff the only upstream is a relay: constant-route fast path.
        self._relay_peer: int | None = None
        self._reader_tasks: list[asyncio.Task] = []
        self._mesh_heartbeat_task: asyncio.Task | None = None
        #: Optional :class:`~repro.obs.fleet.TelemetryUplink`.  ``None``
        #: (the default) starts no uplink task and ships zero telemetry
        #: bytes — the bit-identity configuration.
        self.uplink = uplink
        self._uplink_interval = uplink_interval_s
        self._telemetry_task: asyncio.Task | None = None
        #: Windows whose release has been observed (for seal→result
        #: latency and staleness accounting; releases may repeat after a
        #: failover replay, so observation is once per window).
        self._released_windows: set[Window] = set()
        #: Latest membership epoch seen from each upstream peer.
        self.route_epochs: dict[int, int] = {}
        #: Epoch-versioned shard liveness; frames route by its owner.
        self._shard_map = ShardMap(max(1, n_shards))
        #: Coordinator callback ``(shard_index) -> None`` fired when an
        #: uplink to a shard dies (failure-detection evidence).
        self._on_upstream_down = on_upstream_down
        self.failovers_seen = 0
        self.fenced_frames = 0

    async def connect_upstreams(
        self,
        upstreams: "Mapping[int, MessageStream]",
        *,
        join_from: int | None = None,
    ) -> None:
        """Adopt the dialed uplinks, announce, and start reading them.

        ``join_from`` marks a runtime joiner: a
        :class:`~repro.network.messages.JoinMessage` goes out FIFO-first
        on every uplink, so no shard can see the joiner's data before its
        membership.
        """
        self._upstreams = dict(upstreams)
        if len(self._upstreams) == 1:
            only = next(iter(self._upstreams))
            if only >= RELAY_ID_BASE:
                self._relay_peer = only
        for peer_id, stream in self._upstreams.items():
            self.register_peer(peer_id, stream)
            await stream.send(Hello(node_id=self.node_id, role="local"))
            if join_from is not None:
                await stream.send(
                    JoinMessage(
                        sender=self.node_id,
                        window=_CONTROL_WINDOW,
                        first_window_start=join_from,
                    )
                )
        for peer_id, stream in self._upstreams.items():
            task = asyncio.ensure_future(
                self._read_upstream(peer_id, stream)
            )
            self._reader_tasks.append(task)
        if self._tolerance is not None:
            self._mesh_heartbeat_task = asyncio.ensure_future(
                self._mesh_heartbeats()
            )
        if self.uplink is not None:
            self._telemetry_task = asyncio.ensure_future(
                self._telemetry_uplink()
            )

    async def announce_leave(self, effective_from: int) -> None:
        """Tell every upstream this local serves no window past the mark."""
        for stream in self._upstreams.values():
            with contextlib.suppress(TransportError):
                await stream.send(
                    LeaveMessage(
                        sender=self.node_id,
                        window=_CONTROL_WINDOW,
                        effective_from=effective_from,
                    )
                )

    async def _read_upstream(
        self, peer_id: int, stream: MessageStream
    ) -> None:
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    if self._tolerance is None:
                        raise
                    self._report_upstream_down(peer_id)
                    return
                if message is None:
                    self._report_upstream_down(peer_id)
                    return
                if self._is_fenced(peer_id):
                    # A dead shard resurrecting cannot speak for windows
                    # that already moved: everything it says is stale.
                    self.fenced_frames += 1
                    continue
                if isinstance(message, ShardFailoverMessage):
                    await self._on_shard_failover(message)
                    continue
                if isinstance(message, RouteUpdateMessage):
                    self.route_epochs[peer_id] = max(
                        self.route_epochs.get(peer_id, 0), message.epoch
                    )
                    continue
                if isinstance(message, HeartbeatMessage):
                    continue
                if self.uplink is not None and isinstance(
                    message, WindowReleaseMessage
                ):
                    self._observe_release(message.window)
                await self.dispatch(message, stream.last_context)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    def _is_fenced(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is a shard the current epoch declares dead."""
        if not SHARD_ID_BASE <= peer_id < RELAY_ID_BASE:
            return False
        return not self._shard_map.is_live(peer_id - SHARD_ID_BASE)

    def _report_upstream_down(self, peer_id: int) -> None:
        """Hand link-death evidence for a shard uplink to the coordinator."""
        if self._closing or self._crashed:
            return
        if self._on_upstream_down is None:
            return
        if SHARD_ID_BASE <= peer_id < RELAY_ID_BASE:
            self._on_upstream_down(peer_id - SHARD_ID_BASE)

    async def _on_shard_failover(self, message: ShardFailoverMessage) -> None:
        """Converge on a newer shard map and replay retained windows.

        The successor now owns the dead shard's windows; every sealed
        window still retained (sent but unreleased — the release is the
        pruning horizon) is re-announced so the new owner can run the
        unmodified identification/calculation protocol on it.  Windows
        the dead shard already answered get back a release instead.
        Stale (non-monotonic) epochs are ignored: that is the fence
        against a dead shard's late resurrection.
        """
        if message.epoch <= self._shard_map.epoch:
            return
        self._shard_map = ShardMap(
            n_shards=self._shard_map.n_shards,
            epoch=message.epoch,
            dead=frozenset(message.dead),
        )
        self.failovers_seen += 1
        if self.tracer.enabled:
            now = self.fabric.now
            self.tracer.record(
                "shard_failover", self.node_id, now, now,
                epoch=message.epoch, dead=len(message.dead),
            )
            self.tracer.registry.counter(
                "shard_failovers_seen_total",
                "Failover announcements applied by mesh hosts.",
            ).inc()
        if self.wire_tracing:
            await self._replay_traced(message.epoch)
        else:
            self.node.replay_pending(self.fabric.now)
            await self.flush()

    def _observe_release(self, window: Window) -> None:
        """Sample this window's seal→release latency (once per window).

        This is the local's own decentralized view of answer latency —
        seal to release arrival, one release hop more than seal→result —
        and it only exists when a reliability config makes roots emit
        releases.  The authoritative seal→result digest lives on the
        shard uplinks, fed by the cluster driver where both walls meet.
        """
        if window in self._released_windows:
            return
        self._released_windows.add(window)
        sealed = self.seal_walls.get(window)
        if sealed is not None:
            self.uplink.observe(
                "seal_to_release_s", max(0.0, self.fabric.now - sealed)
            )

    async def _telemetry_uplink(self) -> None:
        """Summarize-and-send loop: this node's metrics, in-band.

        Every interval the node refreshes its flat stats (window
        progress, staleness, drop counters), samples its own event-loop
        lag, and ships the cumulative digests + snapshot on the first
        live upstream — telemetry piggybacks on connections that already
        exist, exactly like heartbeats, so partitions and failover
        exercise it for free.
        """
        uplink = self.uplink
        assert uplink is not None
        loop = asyncio.get_event_loop()
        while not self._closing:
            before = loop.time()
            await asyncio.sleep(self._uplink_interval)
            if self._crashed:
                continue
            lag = loop.time() - before - self._uplink_interval
            uplink.observe("event_loop_lag_s", max(0.0, lag))
            self.refresh_uplink_stats()
            await self.send_telemetry(uplink.build(_CONTROL_WINDOW))

    def refresh_uplink_stats(self) -> None:
        """Refresh the flat stats the next uplink snapshot will carry."""
        uplink = self.uplink
        if uplink is None:
            return
        pending = [
            wall
            for window, wall in self.seal_walls.items()
            if window not in self._released_windows
        ]
        now = self.fabric.now
        uplink.set_stat("windows_sealed", float(len(self.seal_walls)))
        uplink.set_stat(
            "windows_released", float(len(self._released_windows))
        )
        uplink.set_stat("windows_pending", float(len(pending)))
        uplink.set_stat(
            "oldest_pending_age_s",
            max(0.0, now - min(pending)) if pending else 0.0,
        )
        uplink.set_stat("dropped_sends", float(self.dropped_sends))
        uplink.set_stat("failovers_seen", float(self.failovers_seen))

    async def send_telemetry(self, frames: "Sequence[Message]") -> None:
        """Ship one uplink's frames on the first live upstream.

        One upstream suffices — every shard feeds the same collector, and
        cumulative sequence-stamped digests make the choice of carrier
        irrelevant.  A dead or fenced upstream just means the next one
        carries this round.
        """
        if not frames:
            return
        for peer_id in sorted(self._upstreams):
            if self._is_fenced(peer_id):
                continue
            stream = self._upstreams[peer_id]
            try:
                for frame in frames:
                    await stream.send(frame)
                return
            except TransportError:
                continue

    async def _mesh_heartbeats(self) -> None:
        """Liveness beacons on every uplink (relays forward verbatim)."""
        assert self._tolerance is not None
        interval = self._tolerance.heartbeat_interval_s
        while not self._closing:
            await asyncio.sleep(interval)
            if self._crashed:
                continue
            self._heartbeat_seq += 1
            beat = HeartbeatMessage(
                sender=self.node_id,
                window=_CONTROL_WINDOW,
                sequence=self._heartbeat_seq,
            )
            for stream in self._upstreams.values():
                with contextlib.suppress(TransportError):
                    await stream.send(beat)

    async def _replay_traced(self, epoch: int) -> None:
        """Replay retained windows, one failover span per window.

        Each replayed window's frames travel under a fresh
        ``live_failover_replay`` span carrying the window's trace id and
        the new shard-map epoch, so the successor shard's dispatch spans
        parent onto it and the stitched timeline spans both the dead
        shard's work and its adopter's.
        """
        self.node.replay_pending(self.fabric.now)
        by_window: "dict[Window, list[tuple[int, Message]]]" = {}
        for dst, message in self.fabric.drain():
            by_window.setdefault(message.window, []).append((dst, message))
        for window in sorted(by_window, key=lambda w: w.start):
            trace_id = trace_id_for_window(window.start)
            if should_sample(trace_id, self._sample_rate):
                now = self.fabric.now
                span_id = self.tracer.begin(
                    "live_failover_replay", self.node_id, now,
                    window=window, trace_id=trace_id, epoch=epoch,
                )
                with context_scope(TraceContext(trace_id, span_id)):
                    await self._send_routed(by_window[window])
                self.tracer.end(span_id, self.fabric.now)
            else:
                await self._send_routed(by_window[window])

    async def flush(self) -> None:
        """Route each queued frame to its window's owner shard.

        The operator addresses the root as id 0; the host resolves that
        to the relay uplink, or to ``shard_of`` the frame's window.
        """
        await self._send_routed(self.fabric.drain())

    async def _send_routed(
        self, pairs: "Sequence[tuple[int, Message]]"
    ) -> None:
        for dst, message in pairs:
            peer_id = dst
            if dst == 0:
                if self._relay_peer is not None:
                    peer_id = self._relay_peer
                else:
                    peer_id = shard_node_id(self._shard_map.owner(
                        message.window.start, self._window_length_ms,
                    ))
            stream = self._upstreams.get(peer_id) or self._peers.get(peer_id)
            if stream is None:
                if self._drop_unroutable:
                    self.dropped_sends += 1
                    continue
                raise TransportError(
                    f"local {self.node_id} has no uplink to peer {peer_id}"
                )
            try:
                await stream.send(message)
            except TransportError:
                if not self._drop_unroutable:
                    raise
                self.dropped_sends += 1

    async def crash_mesh(self) -> None:
        """Abrupt death: stop heartbeats and drop every uplink."""
        self._crashed = True
        self.crashes += 1
        await self._stop_mesh_tasks()
        for stream in self._upstreams.values():
            with contextlib.suppress(TransportError):
                await stream.close()

    async def _stop_mesh_tasks(self) -> None:
        tasks = list(self._reader_tasks)
        if self._mesh_heartbeat_task is not None:
            tasks.append(self._mesh_heartbeat_task)
            self._mesh_heartbeat_task = None
        if self._telemetry_task is not None:
            tasks.append(self._telemetry_task)
            self._telemetry_task = None
        self._reader_tasks = []
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task

    async def shutdown(self) -> None:
        self._closing = True
        await self._stop_mesh_tasks()
        await super().shutdown()


class PhasedStreamServer:
    """Stream replay that pauses at membership boundaries.

    The boundary protocol: every batch with a timestamp below boundary
    ``b`` is shipped, then a watermark at exactly ``b`` (sealing every
    window that ends at or before ``b``), then the replay blocks on
    ``gates[b]``.  The cluster driver opens the gate only after every
    shard has applied the boundary's joins and leaves — so data and
    membership can never race.
    """

    def __init__(self, stream_id: int, *, events: Sequence[Event],
                 batch_size: int, grid_start: int, grid_end: int,
                 window_length_ms: int,
                 gates: "Mapping[int, asyncio.Event] | None" = None,
                 time_scale: float = 0.0) -> None:
        self.stream_id = stream_id
        self._events = tuple(events)
        self._batch_size = max(1, batch_size)
        self._grid_start = grid_start
        self._grid_end = grid_end
        self._length = window_length_ms
        self._gates = dict(gates or {})
        self._time_scale = time_scale
        self._epoch: "float | None" = None
        self.events_sent = 0

    async def replay(self, stream: MessageStream) -> None:
        await stream.send(Hello(node_id=self.stream_id, role="stream"))
        self._epoch = asyncio.get_event_loop().time()
        span = Window(
            self._grid_start, max(self._grid_end, self._grid_start + 1)
        )
        timestamps = [event.timestamp for event in self._events]
        boundaries = sorted(
            b for b in self._gates if self._grid_start < b < self._grid_end
        )
        cursor = 0
        for boundary in (*boundaries, self._grid_end):
            stop = bisect.bisect_left(timestamps, boundary, cursor)
            await self._ship(
                stream, self._events[cursor:stop], span, boundary
            )
            cursor = stop
            if boundary != self._grid_end:
                await self._gates[boundary].wait()
        await stream.close()

    async def _ship(
        self,
        stream: MessageStream,
        events: "tuple[Event, ...]",
        span: Window,
        seal_to: int,
    ) -> None:
        """One phase: every batch, then the sealing watermark."""
        length = self._length
        loop = asyncio.get_event_loop()
        watermarked_window: int | None = None
        for batch in batches_for(events, length, self._batch_size):
            last_ts = batch[-1].timestamp
            if self._time_scale > 0 and self._epoch is not None:
                # Same pacing contract as the flat cluster's StreamServer:
                # a batch ending at event-time t leaves no earlier than
                # epoch + (t - grid_start) * time_scale / 1000.
                target = self._epoch + (
                    (last_ts - self._grid_start) / 1000.0
                ) * self._time_scale
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            await stream.send(
                EventBatchMessage(
                    sender=self.stream_id,
                    window=Window(batch[0].timestamp, last_ts + 1),
                    events=batch,
                )
            )
            window_index = last_ts // length
            if window_index != watermarked_window:
                watermarked_window = window_index
                await stream.send(
                    WatermarkMessage(
                        sender=self.stream_id, window=span,
                        watermark_time=last_ts,
                    )
                )
            self.events_sent += len(batch)
        await stream.send(
            WatermarkMessage(
                sender=self.stream_id, window=span, watermark_time=seal_to
            )
        )
