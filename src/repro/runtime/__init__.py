"""Live asyncio cluster runtime for the Dema reproduction.

The fourth execution substrate next to the discrete-event simulator, the
in-process engine and the baselines: the same ``repro.core`` protocol
operators, but deployed as asyncio tasks that exchange **real serialized
bytes** — over localhost TCP or over deterministic in-memory duplex
streams.  The package is organised bottom-up:

``wire``
    Struct formats and byte-size constants.  The single source of truth
    for wire sizes; the simulator's ``payload_bytes`` estimates are
    derived from the same constants and property-tested to match the
    encoder exactly.
``codec``
    Length-prefixed binary encoding of every protocol message
    (version byte, type tag, lossless round-trip).
``transport``
    ``MessageStream``/``MessageNetwork`` abstractions with an asyncio
    TCP implementation and a bounded in-memory implementation for
    deterministic tests.
``servers``
    ``StreamServer`` / ``LocalServer`` / ``RootServer`` node hosts that
    run the unmodified :mod:`repro.core` operators over any transport.
``cluster``
    The full three-layer topology as one coroutine: launch, paced
    workload replay, result collection, graceful shutdown.

The low layers of the package (``repro.streaming``, ``repro.network``)
import :mod:`repro.runtime.wire` for the shared byte-size constants, and
the high layers of the runtime import them back; attribute access is
therefore lazy (PEP 562) so that importing the package costs nothing and
creates no cycle.
"""

from __future__ import annotations

from repro.runtime.wire import (
    EVENT_WIRE_BYTES,
    MESSAGE_HEADER_BYTES,
    SYNOPSIS_WIRE_BYTES,
    WIRE_VERSION,
)

__all__ = [
    "LiveClusterConfig",
    "LiveRunReport",
    "run_live",
    "run_live_cluster",
    "Hello",
    "encode_frame",
    "encode_payload",
    "decode_frame",
    "decode_body",
    "decode_payload",
    "encode_hello",
    "MessageStream",
    "MemoryNetwork",
    "TcpNetwork",
    "memory_pipe",
    "WIRE_VERSION",
    "MESSAGE_HEADER_BYTES",
    "EVENT_WIRE_BYTES",
    "SYNOPSIS_WIRE_BYTES",
]

#: Lazily resolved exports: attribute name -> defining submodule.
_LAZY = {
    "LiveClusterConfig": "repro.runtime.cluster",
    "LiveRunReport": "repro.runtime.cluster",
    "run_live": "repro.runtime.cluster",
    "run_live_cluster": "repro.runtime.cluster",
    "Hello": "repro.runtime.codec",
    "encode_frame": "repro.runtime.codec",
    "encode_payload": "repro.runtime.codec",
    "decode_frame": "repro.runtime.codec",
    "decode_body": "repro.runtime.codec",
    "decode_payload": "repro.runtime.codec",
    "encode_hello": "repro.runtime.codec",
    "MessageStream": "repro.runtime.transport",
    "MemoryNetwork": "repro.runtime.transport",
    "TcpNetwork": "repro.runtime.transport",
    "memory_pipe": "repro.runtime.transport",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__() -> list[str]:
    return sorted(__all__)
