"""Wire-format constants: struct layouts and byte sizes.

This module is the **single source of truth for wire sizes**.  The binary
codec (:mod:`repro.runtime.codec`) packs with these struct objects, and the
simulator's per-message ``payload_bytes`` estimates
(:mod:`repro.network.messages`) are arithmetic over the same constants — a
property test asserts that every estimate equals the encoder's output byte
for byte, so simulated byte counts and live byte counts stay comparable.

It deliberately imports nothing from the rest of the package (only
:mod:`struct`), so the lowest layers (``repro.streaming.events``,
``repro.network.messages``) can depend on it without cycles.

Frame layout (little-endian throughout)::

    0        4        5        6        8        12       16       24       32
    +--------+--------+--------+--------+--------+--------+--------+--------+
    | length | version| type   | flags  | sender | group  | window | window |
    | u32    | u8     | u8     | u16    | u32    | u32    | start  | end    |
    |        |        |        |        |        |        | i64    | i64    |
    +--------+--------+--------+--------+--------+--------+--------+--------+
    | payload (length - 28 bytes) ...                                       |
    +-----------------------------------------------------------------------+

``length`` counts everything after the length field itself (header rest +
payload).  ``flags`` is a bitfield; the only assigned bit is
:data:`FLAG_EXTENSIONS` (``0x0001``), which announces a *header extension
block* between the fixed header and the payload::

    +--------+--------------------------------------+
    | n u8   | n × ( type u8 | length u8 | bytes )  |
    +--------+--------------------------------------+

Extensions are optional, length-delimited and skippable: a decoder that
does not understand an extension type steps over it by its declared
length, so frames from a newer peer still decode.  Frames without the
flag bit are byte-for-byte identical to wire version 1 as first shipped —
``payload_bytes`` accounting and the simulator's byte model are
untouched.  Two extension types are assigned: :data:`EXT_TRACE_CONTEXT`,
carrying a distributed-tracing context (trace id u64, parent span id u64,
flags u8 — bit 0 = sampled), and :data:`EXT_SECTION_CONTEXT`, one entry
*per section* of a relay-combined frame carrying that child section's
trace context in section order (same 17-byte body; flags bit 1 marks an
absent context so ordering survives untraced children).  The 32-byte
fixed total is :data:`MESSAGE_HEADER_BYTES`, charged per message by the
simulator.
"""

from __future__ import annotations

import struct

__all__ = [
    "WIRE_VERSION",
    "FLAG_EXTENSIONS",
    "KNOWN_FLAGS",
    "EXT_TRACE_CONTEXT",
    "EXT_SECTION_CONTEXT",
    "EXT_COUNT",
    "EXT_HEADER",
    "TRACE_CONTEXT_EXT",
    "TRACE_CONTEXT_EXT_BYTES",
    "TRACE_SAMPLED_BIT",
    "SECTION_CONTEXT_ABSENT_BIT",
    "MAX_FRAME_BYTES",
    "LENGTH_PREFIX",
    "HEADER",
    "MESSAGE_HEADER_BYTES",
    "EVENT",
    "EVENT_WIRE_BYTES",
    "KEY",
    "KEY_WIRE_BYTES",
    "SYNOPSIS",
    "SYNOPSIS_WIRE_BYTES",
    "COUNT",
    "COUNT_BYTES",
    "U32",
    "U32_BYTES",
    "U64",
    "U64_BYTES",
    "F64",
    "F64_BYTES",
    "CENTROID",
    "CENTROID_WIRE_BYTES",
    "QDIGEST_NODE",
    "QDIGEST_NODE_WIRE_BYTES",
    "I64",
    "I64_BYTES",
    "QUERY_REGISTER_FIXED",
    "QUERY_REGISTER_FIXED_BYTES",
    "QUERY_ACK_FIXED",
    "QUERY_ACK_FIXED_BYTES",
    "QUERY_RESULT",
    "QUERY_RESULT_BYTES",
    "RELAY_SYNOPSIS",
    "RELAY_SYNOPSIS_WIRE_BYTES",
    "RELAY_SYNOPSIS_SECTION_FIXED",
    "RELAY_SYNOPSIS_SECTION_FIXED_BYTES",
    "RELAY_RUN_SECTION_FIXED",
    "RELAY_RUN_SECTION_FIXED_BYTES",
]

#: Protocol version stamped into every frame header.  A decoder refuses
#: frames from a different version instead of mis-parsing them.
WIRE_VERSION = 1

#: Flags bit announcing a header extension block after the fixed header.
FLAG_EXTENSIONS = 0x0001

#: Every flag bit this decoder understands; any other set bit is refused
#: (a frame relying on semantics we cannot honor must not be mis-parsed).
KNOWN_FLAGS = FLAG_EXTENSIONS

#: Extension type tag for the distributed-tracing context.  Extension
#: tags, like message tags, are append-only and never reused.
EXT_TRACE_CONTEXT = 1

#: Extension type tag for one *section's* trace context on a
#: relay-combined frame (``RelaySynopsisMessage`` / ``RelayRunsMessage``).
#: One entry per section, in section order, same 17-byte body as
#: :data:`EXT_TRACE_CONTEXT`; a peer that predates this tag skips the
#: entries by their declared length and decodes the frame unchanged.
EXT_SECTION_CONTEXT = 2

#: u8 count of extensions in the block.
EXT_COUNT = struct.Struct("<B")

#: Per-extension preamble: type u8, byte length u8.
EXT_HEADER = struct.Struct("<BB")

#: Trace context body: trace id u64, parent span id u64, flags u8.
TRACE_CONTEXT_EXT = struct.Struct("<QQB")
TRACE_CONTEXT_EXT_BYTES = TRACE_CONTEXT_EXT.size

#: Bit 0 of the trace-context flags byte: head-based sampling verdict.
TRACE_SAMPLED_BIT = 0x01

#: Bit 1 of a section-context flags byte: this section carried no trace
#: context (the child frame was untraced).  Keeps the entry list aligned
#: with the section list without inventing a context.
SECTION_CONTEXT_ABSENT_BIT = 0x02

#: Upper bound on one frame's ``length`` field.  Protects a receiver from
#: allocating gigabytes on a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: u32 frame length (everything after this field).
LENGTH_PREFIX = struct.Struct("<I")

#: version u8, type tag u8, flags u16, sender u32, group_id u32,
#: window start i64, window end i64.
HEADER = struct.Struct("<BBHIIqq")

#: Fixed per-message framing overhead: length prefix plus header.
MESSAGE_HEADER_BYTES = LENGTH_PREFIX.size + HEADER.size

#: One event: value f64, timestamp u32 (event-time milliseconds),
#: node_id u32, seq u32.  The paper's layout (8-byte value, 4-byte
#: timestamp, 4-byte id) plus the 4-byte per-node sequence number that
#: gives the reproduction its strict total order.
EVENT = struct.Struct("<dIII")
EVENT_WIRE_BYTES = EVENT.size

#: One event *key* (no timestamp): value f64, node_id u32, seq u32.
KEY = struct.Struct("<dII")
KEY_WIRE_BYTES = KEY.size

#: One slice synopsis: first key, last key, then count / slice_index /
#: n_slices / node_id as u32 each.
SYNOPSIS = struct.Struct("<dIIdIIIIII")
SYNOPSIS_WIRE_BYTES = SYNOPSIS.size

#: u32 element count prefixing every variable-length sequence.
COUNT = struct.Struct("<I")
COUNT_BYTES = COUNT.size

U32 = struct.Struct("<I")
U32_BYTES = U32.size

U64 = struct.Struct("<Q")
U64_BYTES = U64.size

F64 = struct.Struct("<d")
F64_BYTES = F64.size

I64 = struct.Struct("<q")
I64_BYTES = I64.size

#: One t-digest centroid: mean f64, weight f64.
CENTROID = struct.Struct("<dd")
CENTROID_WIRE_BYTES = CENTROID.size

#: One q-digest tree node: level u32, index u64, count u32.
QDIGEST_NODE = struct.Struct("<IQI")
QDIGEST_NODE_WIRE_BYTES = QDIGEST_NODE.size

#: Query registration, fixed part: query_id u32, q f64, window kind u32,
#: window length u64 (ms), window step u64 (ms), gamma u32, freshness u64
#: (ms).  The variable part — the UTF-8 key selector behind a u32 count —
#: follows it.
QUERY_REGISTER_FIXED = struct.Struct("<IdIQQIQ")
QUERY_REGISTER_FIXED_BYTES = QUERY_REGISTER_FIXED.size

#: Query ack, fixed part: query_id u32, accepted u32 (0/1).  The UTF-8
#: reason string behind a u32 count follows it.
QUERY_ACK_FIXED = struct.Struct("<II")
QUERY_ACK_FIXED_BYTES = QUERY_ACK_FIXED.size

#: One served query result: query_id u32, value f64, global window size
#: u64, rank u64.
QUERY_RESULT = struct.Struct("<IdQQ")
QUERY_RESULT_BYTES = QUERY_RESULT.size

#: One slice synopsis inside a relay-combined section: first key, last key,
#: count u32.  12 bytes smaller than :data:`SYNOPSIS` because the owning
#: node id lives in the section header and the slice index / slice total
#: are implicit in the section (position and length) — the relay combines
#: only *complete, ordered* synopsis batches, so both reconstruct exactly.
RELAY_SYNOPSIS = struct.Struct("<dIIdIII")
RELAY_SYNOPSIS_WIRE_BYTES = RELAY_SYNOPSIS.size

#: Relay synopsis section header: node_id u32, local window size u64,
#: synopsis count u32.  The compact synopses follow.
RELAY_SYNOPSIS_SECTION_FIXED = struct.Struct("<IQI")
RELAY_SYNOPSIS_SECTION_FIXED_BYTES = RELAY_SYNOPSIS_SECTION_FIXED.size

#: Relay candidate-run section header: node_id u32, slice_index u32,
#: event count u32.  The run's events follow.
RELAY_RUN_SECTION_FIXED = struct.Struct("<III")
RELAY_RUN_SECTION_FIXED_BYTES = RELAY_RUN_SECTION_FIXED.size


# The documented layout above is load-bearing for the simulator's byte
# accounting; fail at import time if a struct edit ever drifts from it.
assert MESSAGE_HEADER_BYTES == 32
assert EVENT_WIRE_BYTES == 20
assert KEY_WIRE_BYTES == 16
assert SYNOPSIS_WIRE_BYTES == 2 * KEY_WIRE_BYTES + 4 * U32_BYTES == 48
assert QDIGEST_NODE_WIRE_BYTES == 16
assert TRACE_CONTEXT_EXT_BYTES == 17
assert QUERY_REGISTER_FIXED_BYTES == 44
assert QUERY_ACK_FIXED_BYTES == 8
assert QUERY_RESULT_BYTES == 28
assert RELAY_SYNOPSIS_WIRE_BYTES == 2 * KEY_WIRE_BYTES + U32_BYTES == 36
assert RELAY_SYNOPSIS_SECTION_FIXED_BYTES == 16
assert RELAY_RUN_SECTION_FIXED_BYTES == 12
