"""Node servers: the Dema operators as live asyncio tasks.

Three hosts mirror the simulated three-layer topology:

``StreamServer``
    Replays one sensor's share of the workload into its local node —
    batches that never span a window boundary, each batch followed by a
    :class:`~repro.network.messages.WatermarkMessage` carrying the last
    event timestamp, and a final watermark that seals every window.

``LocalServer``
    Wraps an **unmodified** :class:`~repro.core.local_node.DemaLocalNode`.
    Event batches go straight into the operator; watermarks are a host
    concern: the server seals each tumbling window of the agreed grid once
    the *minimum* watermark over its attached streams has passed the
    window end, which guarantees no event is ever late.

``RootServer``
    Wraps an unmodified :class:`~repro.core.root_node.DemaRootNode` and
    signals completion once every expected grid window has an outcome.

The operators still talk to their ``self.simulator`` — here a
:class:`LiveFabric`, the asyncio implementation of the
:class:`~repro.network.simulator.Fabric` protocol.  ``route`` collects
outgoing messages in an outbox that the host flushes to real transport
streams after each dispatch (so a slow peer backpressures the host
through the transport's bounded queue / TCP drain), and ``schedule``
becomes an event-loop timer.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

from repro.errors import TransportError
from repro.network.messages import (
    EventBatchMessage,
    Message,
    WatermarkMessage,
)
from repro.network.simulator import SimulatedNode
from repro.obs.events import MessageTrace
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.codec import Hello
from repro.runtime.transport import MessageStream
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = [
    "LIVE_OPS_PER_SECOND",
    "LiveFabric",
    "NodeHost",
    "RootServer",
    "LocalServer",
    "StreamServer",
]

#: CPU budget given to live operators.  The discrete-event CPU model is
#: meaningless on a wall clock — real work takes real time — so live nodes
#: get an effectively infinite budget and ``work()`` returns ~now.
LIVE_OPS_PER_SECOND = 1e15

#: Milliseconds of event time per second of fabric time.
_MS_PER_SECOND = 1000.0


class LiveFabric:
    """Asyncio implementation of the node-facing ``Fabric`` protocol.

    One fabric per host.  ``route`` is synchronous (operators call it from
    ``on_message``), so it only queues; the owning host awaits
    :meth:`drain` and ships the queued messages over real streams.
    """

    def __init__(self, epoch: float | None = None) -> None:
        self._loop = asyncio.get_event_loop()
        self._epoch = self._loop.time() if epoch is None else epoch
        self._outbox: list[tuple[int, Message]] = []

    @property
    def now(self) -> float:
        """Seconds of wall clock since the cluster epoch."""
        return self._loop.time() - self._epoch

    @property
    def epoch(self) -> float:
        """Event-loop time corresponding to fabric time zero."""
        return self._epoch

    def route(self, message: Message, src: int, dst: int, now: float) -> None:
        """Queue ``message`` for the host to flush to ``dst``'s stream."""
        self._outbox.append((dst, message))

    def schedule(
        self, time: float, action: Callable[[float], None]
    ) -> None:
        """Run ``action`` at fabric time ``time`` via an event-loop timer."""
        delay = max(0.0, time - self.now)
        self._loop.call_later(delay, lambda: action(self.now))

    def drain(self) -> list[tuple[int, Message]]:
        """Take every queued ``(dst, message)`` pair."""
        queued, self._outbox = self._outbox, []
        return queued


class NodeHost:
    """Shared machinery: one operator, one fabric, streams to peers."""

    def __init__(self, node: SimulatedNode, fabric: LiveFabric,
                 tracer: Tracer = NOOP_TRACER) -> None:
        self.node = node
        self.fabric = fabric
        self.tracer = tracer
        self._peers: dict[int, MessageStream] = {}
        node.attach(fabric)
        # Deliberately NOT node.set_tracer(tracer): operator spans measure
        # intervals on the simulated event-time clock (e.g. synopsis_wait
        # starts at the window's event-time end), which has no fixed
        # relation to the live wall clock.  Live runs trace message
        # deliveries and link totals instead; wall-clock latency comes from
        # the hosts' seal/result timestamps.

    @property
    def node_id(self) -> int:
        return self.node.node_id

    def register_peer(self, node_id: int, stream: MessageStream) -> None:
        self._peers[node_id] = stream

    async def dispatch(self, message: Message) -> None:
        """Run the operator's handler, then flush whatever it sent."""
        now = self.fabric.now
        if self.tracer.enabled:
            # Live delivery is observed at dispatch; the trace records the
            # arrival instant on both ends of the interval.
            self.tracer.record_message(
                MessageTrace(
                    sent_at=now,
                    delivered_at=now,
                    src=message.sender,
                    dst=self.node_id,
                    message=message,
                )
            )
        self.node.on_message(message, now)
        await self.flush()

    async def flush(self) -> None:
        """Ship every message the operator queued on the fabric."""
        for dst, message in self.fabric.drain():
            stream = self._peers.get(dst)
            if stream is None:
                raise TransportError(
                    f"node {self.node_id} has no stream to peer {dst}"
                )
            await stream.send(message)

    async def expect_hello(
        self, stream: MessageStream, role: str
    ) -> Hello:
        """Read and validate the connection preamble."""
        first = await stream.recv()
        if not isinstance(first, Hello):
            raise TransportError(
                f"node {self.node_id} expected a hello, got "
                f"{type(first).__name__}"
            )
        if first.role != role:
            raise TransportError(
                f"node {self.node_id} expected a {role!r} peer, got "
                f"{first.role!r} from node {first.node_id}"
            )
        return first


class RootServer(NodeHost):
    """Hosts the Dema root; completes once every grid window answered."""

    def __init__(self, node, fabric: LiveFabric, *, expected_windows: int,
                 tracer: Tracer = NOOP_TRACER) -> None:
        super().__init__(node, fabric, tracer)
        self._expected_windows = expected_windows
        self.done = asyncio.Event()
        #: Wall-clock (fabric) completion time per finished window.
        self.result_walls: dict[Window, float] = {}

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing local node."""
        hello = await self.expect_hello(stream, "local")
        self.register_peer(hello.node_id, stream)
        while (message := await stream.recv()) is not None:
            if isinstance(message, Hello):
                raise TransportError("unexpected second hello")
            before = len(self.node.outcomes)
            await self.dispatch(message)
            outcomes = self.node.outcomes
            for outcome in outcomes[before:]:
                self.result_walls[outcome.window] = self.fabric.now
            if len(outcomes) >= self._expected_windows:
                self.done.set()
        # Peer is gone; nothing to tear down — streams close at the dialer.


class LocalServer(NodeHost):
    """Hosts one Dema local node plus its watermark-driven window sealing.

    The simulator's driver announces window ends with perfect knowledge;
    live, the host reconstructs the same announcements from stream
    watermarks: every window ``[s, s + L)`` of the agreed grid is sealed
    once ``min(watermarks) >= s + L``.  Because each stream's events are
    FIFO-ordered before its watermark and timestamps are non-decreasing,
    no event for a sealed window can still be in flight.
    """

    def __init__(self, node, fabric: LiveFabric, *, expected_streams: int,
                 grid_start: int, grid_end: int, window_length_ms: int,
                 tracer: Tracer = NOOP_TRACER) -> None:
        super().__init__(node, fabric, tracer)
        if expected_streams < 1:
            raise TransportError("a local server needs at least one stream")
        self._expected_streams = expected_streams
        self._window_length_ms = window_length_ms
        self._grid_end = grid_end
        self._next_start = grid_start
        self._watermarks: dict[int, int] = {}
        #: Wall-clock (fabric) seal time per sealed window.
        self.seal_walls: dict[Window, float] = {}
        self._root_task: asyncio.Task | None = None

    async def connect_root(self, root_stream: MessageStream) -> None:
        """Register and announce ourselves on the dialed root stream."""
        self.register_peer(0, root_stream)
        await root_stream.send(Hello(node_id=self.node_id, role="local"))
        self._root_task = asyncio.ensure_future(
            self._read_root(root_stream)
        )

    async def _read_root(self, stream: MessageStream) -> None:
        """Candidate requests, gamma updates and releases from the root."""
        while (message := await stream.recv()) is not None:
            await self.dispatch(message)

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing stream server."""
        hello = await self.expect_hello(stream, "stream")
        self.register_peer(hello.node_id, stream)
        while (message := await stream.recv()) is not None:
            if isinstance(message, WatermarkMessage):
                # Host concern: the operator itself rejects watermarks.
                self._watermarks[hello.node_id] = max(
                    self._watermarks.get(hello.node_id, 0),
                    message.watermark_time,
                )
                await self._seal_ready_windows()
            elif isinstance(message, EventBatchMessage):
                await self.dispatch(message)
            else:
                raise TransportError(
                    f"stream {hello.node_id} sent "
                    f"{type(message).__name__} to local {self.node_id}"
                )

    async def _seal_ready_windows(self) -> None:
        if len(self._watermarks) < self._expected_streams:
            return  # a stream has not spoken yet; its events may be early
        watermark = min(self._watermarks.values())
        length = self._window_length_ms
        while (
            self._next_start + length <= watermark
            and self._next_start < self._grid_end
        ):
            window = Window(self._next_start, self._next_start + length)
            now = self.fabric.now
            self.node.on_window_complete(window, now)
            self.seal_walls[window] = now
            self._next_start += length
            await self.flush()

    async def shutdown(self) -> None:
        """Stop listening to the root (called by the cluster on teardown)."""
        if self._root_task is not None:
            self._root_task.cancel()
            try:
                await self._root_task
            except asyncio.CancelledError:
                pass


class StreamServer:
    """Replays one sensor's workload share into its local node.

    Batches respect window boundaries (as the simulator's driver does) and
    are paced on the wall clock: with ``time_scale`` seconds of wall time
    per second of event time, the batch whose last timestamp is ``t`` is
    sent no earlier than ``epoch + (t - grid_start) * time_scale / 1000``.
    A ``time_scale`` of zero replays as fast as backpressure allows.
    """

    def __init__(self, stream_id: int, *, events: Sequence[Event],
                 batch_size: int, grid_start: int, grid_end: int,
                 window_length_ms: int, time_scale: float = 0.0) -> None:
        self.stream_id = stream_id
        self._events = tuple(events)
        self._batch_size = max(1, batch_size)
        self._grid_start = grid_start
        self._grid_end = grid_end
        self._window_length_ms = window_length_ms
        self._time_scale = time_scale
        self.events_sent = 0

    def _batches(self) -> "list[tuple[Event, ...]]":
        batches: list[tuple[Event, ...]] = []
        batch: list[Event] = []
        length = self._window_length_ms
        for event in self._events:
            crosses = batch and (
                batch[0].timestamp // length != event.timestamp // length
            )
            if crosses or len(batch) >= self._batch_size:
                batches.append(tuple(batch))
                batch = []
            batch.append(event)
        if batch:
            batches.append(tuple(batch))
        return batches

    async def replay(self, stream: MessageStream) -> None:
        """Ship every batch plus watermarks, then the final watermark."""
        await stream.send(Hello(node_id=self.stream_id, role="stream"))
        loop = asyncio.get_event_loop()
        epoch = loop.time()
        span = Window(self._grid_start, max(self._grid_end, self._grid_start + 1))
        for batch in self._batches():
            last_ts = batch[-1].timestamp
            if self._time_scale > 0:
                target = epoch + (
                    (last_ts - self._grid_start) / _MS_PER_SECOND
                ) * self._time_scale
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            await stream.send(
                EventBatchMessage(
                    sender=self.stream_id,
                    window=Window(batch[0].timestamp, last_ts + 1),
                    events=batch,
                )
            )
            self.events_sent += len(batch)
            await stream.send(
                WatermarkMessage(
                    sender=self.stream_id, window=span,
                    watermark_time=last_ts,
                )
            )
        await stream.send(
            WatermarkMessage(
                sender=self.stream_id, window=span,
                watermark_time=self._grid_end,
            )
        )
        await stream.close()
