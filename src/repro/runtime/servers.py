"""Node servers: the Dema operators as live asyncio tasks.

Three hosts mirror the simulated three-layer topology:

``StreamServer``
    Replays one sensor's share of the workload into its local node —
    batches that never span a window boundary, a
    :class:`~repro.network.messages.WatermarkMessage` carrying the last
    event timestamp with the first batch of each window (later watermarks
    inside the same window cannot seal anything new, so they are not
    sent), and a final watermark that seals every window.

``LocalServer``
    Wraps an **unmodified** :class:`~repro.core.local_node.DemaLocalNode`.
    Event batches go straight into the operator; watermarks are a host
    concern: the server seals each tumbling window of the agreed grid once
    the *minimum* watermark over its attached streams has passed the
    window end, which guarantees no event is ever late.

``RootServer``
    Wraps an unmodified :class:`~repro.core.root_node.DemaRootNode` and
    signals completion once every expected grid window has an outcome.

The operators still talk to their ``self.simulator`` — here a
:class:`LiveFabric`, the asyncio implementation of the
:class:`~repro.network.simulator.Fabric` protocol.  ``route`` collects
outgoing messages in an outbox that the host flushes to real transport
streams after each dispatch (so a slow peer backpressures the host
through the transport's bounded queue / TCP drain), and ``schedule``
becomes an event-loop timer.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import heapq
import itertools
import operator
import random
from typing import Awaitable, Callable, Sequence

from repro.errors import TransportError
from repro.faults.plan import ToleranceConfig
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    EventBatchMessage,
    HeartbeatMessage,
    Message,
    QueryResultMessage,
    ResultMessage,
    SynopsisMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
    WatermarkMessage,
    WindowReleaseMessage,
)
from repro.network.simulator import SimulatedNode
from repro.obs.events import MessageTrace
from repro.obs.live.context import (
    TraceContext,
    context_scope,
    should_sample,
    trace_id_for_window,
)
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.codec import Hello
from repro.runtime.transport import FailureLatch, MessageStream
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event
from repro.streaming.windows import Window

# Hot-path module: event batches stay columnar from workload to window,
# and no per-event ``Event`` objects are constructed here (enforced by
# tests/test_hotpath_lint.py).

__all__ = [
    "LIVE_OPS_PER_SECOND",
    "LiveFabric",
    "NodeHost",
    "RootServer",
    "LocalServer",
    "StreamServer",
    "batches_for",
]

#: CPU budget given to live operators.  The discrete-event CPU model is
#: meaningless on a wall clock — real work takes real time — so live nodes
#: get an effectively infinite budget and ``work()`` returns ~now.
LIVE_OPS_PER_SECOND = 1e15

#: Milliseconds of event time per second of fabric time.
_MS_PER_SECOND = 1000.0

#: Placeholder window on heartbeat frames (heartbeats are not about any
#: window, but the wire header needs a valid one).
_HEARTBEAT_WINDOW = Window(0, 1)

#: Receiver-side live span names by incoming message type: the phase of
#: the window lifecycle that handling this message performs.  Types not
#: listed here get the generic ``live_dispatch``.
_LIVE_SPAN_NAMES: dict[type, str] = {
    EventBatchMessage: "live_ingest",
    SynopsisMessage: "live_identification",
    CandidateRequestMessage: "live_candidate_fetch",
    CandidateEventsMessage: "live_calculation",
    WindowReleaseMessage: "live_release",
    ResultMessage: "live_release",
}


class LiveFabric:
    """Asyncio implementation of the node-facing ``Fabric`` protocol.

    One fabric per host.  ``route`` is synchronous (operators call it from
    ``on_message``), so it only queues; the owning host awaits
    :meth:`drain` and ships the queued messages over real streams.
    """

    def __init__(self, epoch: float | None = None) -> None:
        self._loop = asyncio.get_event_loop()
        self._epoch = self._loop.time() if epoch is None else epoch
        self._outbox: list[tuple[int, Message]] = []
        self._halted = False
        #: Set by the owning host: called after each timer action so
        #: messages the action queued (reliability retransmits, releases)
        #: get flushed — a timer has no dispatch to piggyback on.
        self.on_timer: Callable[[], None] | None = None

    @property
    def now(self) -> float:
        """Seconds of wall clock since the cluster epoch."""
        return self._loop.time() - self._epoch

    @property
    def epoch(self) -> float:
        """Event-loop time corresponding to fabric time zero."""
        return self._epoch

    def route(self, message: Message, src: int, dst: int, now: float) -> None:
        """Queue ``message`` for the host to flush to ``dst``'s stream."""
        self._outbox.append((dst, message))

    def schedule(
        self, time: float, action: Callable[[float], None]
    ) -> None:
        """Run ``action`` at fabric time ``time`` via an event-loop timer."""
        delay = max(0.0, time - self.now)

        def fire() -> None:
            if self._halted:
                return
            action(self.now)
            if self.on_timer is not None:
                self.on_timer()

        self._loop.call_later(delay, fire)

    def halt(self) -> None:
        """Stop firing scheduled actions: the owning host crashed.

        A killed shard's armed reliability timers must not keep mutating
        its operator — the takeover protocol snapshots the dead node's
        answered windows, and a post-mortem timer answering one more
        window would race that snapshot.
        """
        self._halted = True

    def drain(self) -> list[tuple[int, Message]]:
        """Take every queued ``(dst, message)`` pair."""
        queued, self._outbox = self._outbox, []
        return queued


class NodeHost:
    """Shared machinery: one operator, one fabric, streams to peers."""

    def __init__(self, node: SimulatedNode, fabric: LiveFabric,
                 tracer: Tracer = NOOP_TRACER, *,
                 drop_unroutable: bool = False,
                 failures: FailureLatch | None = None,
                 wire_tracing: bool = False) -> None:
        self.node = node
        self.fabric = fabric
        self.tracer = tracer
        #: Wall-clock causal tracing: dispatch opens a child span under
        #: the incoming frame's trace context and stamps its own context
        #: onto everything the handler sends.
        self.wire_tracing = wire_tracing and tracer.enabled
        self._peers: dict[int, MessageStream] = {}
        #: Tolerant mode: a send to a missing/dead peer is counted here
        #: instead of raising — reliability retransmits repair the gap.
        self._drop_unroutable = drop_unroutable
        self._failures = failures
        self.dropped_sends = 0
        node.attach(fabric)
        fabric.on_timer = self._on_fabric_timer
        # Deliberately NOT node.set_tracer(tracer): operator spans measure
        # intervals on the simulated event-time clock (e.g. synopsis_wait
        # starts at the window's event-time end), which has no fixed
        # relation to the live wall clock.  Live runs trace message
        # deliveries and link totals instead; wall-clock latency comes from
        # the hosts' seal/result timestamps.

    @property
    def node_id(self) -> int:
        return self.node.node_id

    def register_peer(self, node_id: int, stream: MessageStream) -> None:
        self._peers[node_id] = stream

    async def dispatch(
        self, message: Message, context: TraceContext | None = None
    ) -> None:
        """Run the operator's handler, then flush whatever it sent.

        ``context`` is the trace context the delivering frame carried
        (``stream.last_context``).  When wire tracing is on and the trace
        is sampled, the handler runs inside a wall-clock span parented on
        the sender's span, and the span's own context is ambient for the
        flush — so the frames this dispatch causes carry the chain on.
        """
        now = self.fabric.now
        if self.tracer.enabled:
            # Live delivery is observed at dispatch; the trace records the
            # arrival instant on both ends of the interval.
            self.tracer.record_message(
                MessageTrace(
                    sent_at=now,
                    delivered_at=now,
                    src=message.sender,
                    dst=self.node_id,
                    message=message,
                )
            )
        if self.wire_tracing and context is not None and context.sampled:
            name = _LIVE_SPAN_NAMES.get(type(message), "live_dispatch")
            span_id = self.tracer.begin(
                name, self.node_id, now,
                window=message.window,
                parent=context.span_id,
                trace_id=context.trace_id,
                wire_bytes=message.wire_bytes,
            )
            with context_scope(context.child(span_id)):
                self.node.on_message(message, now)
                await self.flush()
            self.tracer.end(span_id, self.fabric.now)
        else:
            self.node.on_message(message, now)
            await self.flush()

    async def flush(self) -> None:
        """Ship every message the operator queued on the fabric.

        Consecutive messages to the same destination coalesce into one
        ``send_many`` — one writev + one drain on TCP instead of a write
        and drain per frame (candidate serves and synopsis fan-out queue
        many frames per destination in a row).
        """
        queued = self.fabric.drain()
        i, n = 0, len(queued)
        while i < n:
            dst = queued[i][0]
            j = i + 1
            while j < n and queued[j][0] == dst:
                j += 1
            group = [message for _, message in queued[i:j]]
            i = j
            stream = self._peers.get(dst)
            if stream is None:
                if self._drop_unroutable:
                    self.dropped_sends += len(group)
                    continue
                raise TransportError(
                    f"node {self.node_id} has no stream to peer {dst}"
                )
            send_many = getattr(stream, "send_many", None)
            if len(group) > 1 and send_many is not None:
                try:
                    await send_many(group)
                except TransportError:
                    if not self._drop_unroutable:
                        raise
                    self.dropped_sends += len(group)
                continue
            for message in group:
                try:
                    await stream.send(message)
                except TransportError:
                    if not self._drop_unroutable:
                        raise
                    self.dropped_sends += 1

    def _on_fabric_timer(self) -> None:
        """Timer actions queue messages; spawn a task to flush them."""
        with contextlib.suppress(RuntimeError):  # event loop closing
            asyncio.ensure_future(self._flush_after_timer())

    async def _flush_after_timer(self) -> None:
        try:
            await self.flush()
            self._after_timer_flush()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    def _after_timer_flush(self) -> None:
        """Subclass hook run after every timer-driven flush."""

    async def expect_hello(
        self, stream: MessageStream, role: "str | tuple[str, ...]"
    ) -> Hello:
        """Read and validate the connection preamble.

        ``role`` may be a single role or a tuple of acceptable roles (the
        root accepts both ``local`` and ``driver`` peers when a query
        plane is attached).
        """
        roles = (role,) if isinstance(role, str) else tuple(role)
        first = await stream.recv()
        if not isinstance(first, Hello):
            raise TransportError(
                f"node {self.node_id} expected a hello, got "
                f"{type(first).__name__}"
            )
        if first.role not in roles:
            expected = " or ".join(repr(r) for r in roles)
            raise TransportError(
                f"node {self.node_id} expected a {expected} peer, got "
                f"{first.role!r} from node {first.node_id}"
            )
        return first

    def _note_plane_message(self, message: Message) -> None:
        """Account a query-plane frame handled outside ``dispatch``."""
        if self.tracer.enabled:
            now = self.fabric.now
            self.tracer.record_message(
                MessageTrace(
                    sent_at=now,
                    delivered_at=now,
                    src=message.sender,
                    dst=self.node_id,
                    message=message,
                )
            )


class RootServer(NodeHost):
    """Hosts the Dema root; completes once every grid window answered.

    With a :class:`~repro.faults.plan.ToleranceConfig` the server also
    plays failure detector: it tracks the last time each local was heard
    from (heartbeats or protocol traffic), counts missed beats, and past
    the silence threshold declares the local dead — the root operator then
    re-plans its open windows over the survivors and answers them with a
    completeness fraction below 1.  A returning local's fresh ``Hello``
    reverses the verdict and, when the hello carries a resume cursor, gets
    a catch-up release so the local can prune its retained state.
    """

    def __init__(self, node, fabric: LiveFabric, *, expected_windows: int,
                 tracer: Tracer = NOOP_TRACER,
                 tolerance: ToleranceConfig | None = None,
                 failures: FailureLatch | None = None,
                 wire_tracing: bool = False,
                 echo_heartbeats: bool = False,
                 query_plane=None,
                 on_telemetry=None) -> None:
        super().__init__(node, fabric, tracer,
                         drop_unroutable=tolerance is not None,
                         failures=failures, wire_tracing=wire_tracing)
        self._expected_windows = expected_windows
        self._tolerance = tolerance
        #: Optional fleet-telemetry sink: uplinked
        #: ``TelemetrySnapshotMessage``/``TelemetryDigestMessage`` frames
        #: are handed here (usually ``FleetCollector.on_message``) and
        #: never reach the operator.  ``None`` drops them.
        self._on_telemetry = on_telemetry
        #: Optional :class:`~repro.queries.root.RootQueryPlane`: handles
        #: driver connections and every ``group_id != 0`` frame.
        self._query_plane = query_plane
        #: Durable-plane result writers: client id → the event that
        #: wakes its connection's log-drain task when new results land.
        self._driver_wakeups: dict[int, asyncio.Event] = {}
        #: Telemetry: bounce each heartbeat back so the local can measure
        #: round-trip time.  Off by default — the echo is extra traffic.
        self._echo_heartbeats = echo_heartbeats
        self.done = asyncio.Event()
        #: Wall-clock (fabric) completion time per finished window.
        self.result_walls: dict[Window, float] = {}
        #: Fabric time each local was last heard from (tolerant mode).
        self.last_seen: dict[int, float] = {}
        self.heartbeat_misses = 0
        self.locals_declared_dead = 0
        self.reconnect_hellos = 0
        self._known_locals: set[int] = set()
        self._accounted = 0
        self._monitor_task: asyncio.Task | None = None
        #: Deadline-ordered failure detection: ``(due, local_id, seen)``
        #: entries, one live entry per monitored local.  ``seen`` is the
        #: ``last_seen`` snapshot the deadline was armed against, so a
        #: popped entry whose local has been heard from since simply
        #: re-arms — O(log n) per heartbeat event instead of a linear
        #: scan over all locals every tick.
        self._deadlines: list[tuple[float, int, float]] = []
        self._monitored: set[int] = set()
        self._monitor_wake = asyncio.Event()

    def _observe(self, local_id: int) -> None:
        """Record liveness evidence and enroll the local in monitoring."""
        now = self.fabric.now
        self.last_seen[local_id] = now
        if self._tolerance is None or local_id in self._monitored:
            return
        self._monitored.add(local_id)
        interval = self._tolerance.heartbeat_interval_s
        heapq.heappush(self._deadlines, (now + 1.5 * interval, local_id, now))
        self._monitor_wake.set()

    def _account_outcomes(self) -> None:
        """Stamp new outcomes and re-check the completion condition."""
        outcomes = self.node.outcomes
        for outcome in outcomes[self._accounted:]:
            self.result_walls[outcome.window] = self.fabric.now
        self._accounted = len(outcomes)
        if len(outcomes) + self.node.aborted_windows >= self._expected_windows:
            self.done.set()

    def _after_timer_flush(self) -> None:
        # Reliability timers can finish a window (degrade path) without any
        # message arriving afterwards; account here or the run never ends.
        self._account_outcomes()

    def _on_local_hello(self, hello: Hello) -> None:
        now = self.fabric.now
        self._observe(hello.node_id)
        returning = hello.node_id in self._known_locals
        self._known_locals.add(hello.node_id)
        self.node.mark_alive(hello.node_id)
        if not returning:
            return
        self.reconnect_hellos += 1
        if self.tracer.enabled:
            self.tracer.record(
                "fault_reconnect", self.node_id, now, now,
                local=hello.node_id,
            )
            self.tracer.registry.counter(
                "reconnects_total",
                "Locals that re-established their root session.",
            ).inc()
        if hello.resume_from >= 0:
            self.node.resume_release(hello.node_id, hello.resume_from, now)

    async def _ship_plane(
        self, outgoing: "list[tuple[int, Message]]"
    ) -> None:
        """Send query-plane replies; a vanished peer is not fatal.

        On a durable plane, results for driver clients never go out
        here: the plane has already appended them to the client's
        retained log, and the connection's writer task drains that log
        in order (see :meth:`_drive_results`) — one totally-ordered
        result stream per client is what makes the resume cursor exact.
        """
        plane = self._query_plane
        for dst, reply in outgoing:
            if (
                plane is not None
                and plane.durable
                and isinstance(reply, QueryResultMessage)
            ):
                wake = self._driver_wakeups.get(dst)
                if wake is not None:
                    wake.set()
                continue
            stream = self._peers.get(dst)
            if stream is None:
                self.dropped_sends += 1
                continue
            try:
                await stream.send(reply)
            except TransportError:
                self.dropped_sends += 1

    async def _drive_results(
        self, client_id: int, stream: MessageStream, cursor: int,
        wake: asyncio.Event,
    ) -> None:
        """Single writer for one durable driver connection.

        Drains the client's retained result log from ``cursor`` — the
        resume replay and live tail are one stream, so the client's
        received count is always a log prefix.  A transport error ends
        the writer; the recv loop observes the same death and tears the
        connection down.
        """
        plane = self._query_plane
        assert plane is not None
        try:
            while True:
                batch = plane.log_from(client_id, cursor)
                if not batch:
                    wake.clear()
                    await wake.wait()
                    continue
                for message in batch:
                    await stream.send(message)
                    cursor += 1
        except TransportError:
            pass

    async def _serve_driver(
        self, hello: Hello, stream: MessageStream
    ) -> None:
        """Connection handler for one query-plane driver client."""
        plane = self._query_plane
        assert plane is not None
        client_id = hello.node_id
        self.register_peer(client_id, stream)
        cursor = plane.on_client_resume(client_id, hello.resume_from)
        writer: asyncio.Task | None = None
        wake: asyncio.Event | None = None
        if plane.durable:
            wake = asyncio.Event()
            wake.set()  # drain any retained backlog immediately
            self._driver_wakeups[client_id] = wake
            writer = asyncio.ensure_future(
                self._drive_results(client_id, stream, cursor, wake)
            )
            if self.tracer.enabled and hello.resume_from >= 0:
                self.tracer.registry.counter(
                    "driver_reconnects_total",
                    "Driver clients that resumed with a result cursor.",
                ).inc()
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    break  # driver link died: treated as a disconnect
                if message is None:
                    break
                if isinstance(message, Hello):
                    raise TransportError("unexpected second hello")
                self._note_plane_message(message)
                await self._ship_plane(
                    plane.on_client_message(client_id, message)
                )
        finally:
            if writer is not None:
                writer.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await writer
            if wake is not None and self._driver_wakeups.get(client_id) is wake:
                del self._driver_wakeups[client_id]
            if self._peers.get(client_id) is stream:
                del self._peers[client_id]
            await self._ship_plane(plane.on_client_gone(client_id))

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing local node or driver."""
        roles = (
            ("local", "driver") if self._query_plane is not None
            else "local"
        )
        hello = await self.expect_hello(stream, roles)
        if hello.role == "driver":
            await self._serve_driver(hello, stream)
            return
        self.register_peer(hello.node_id, stream)
        if self._tolerance is not None:
            self._on_local_hello(hello)
            await self.flush()
            self._account_outcomes()
        try:
            while True:
                try:
                    message = await stream.recv()
                except TransportError:
                    if self._tolerance is None:
                        raise
                    break  # link severed mid-frame; the local will redial
                if message is None:
                    break
                if isinstance(message, Hello):
                    raise TransportError("unexpected second hello")
                if self._tolerance is not None:
                    self._observe(message.sender)
                    if isinstance(message, HeartbeatMessage):
                        if self._echo_heartbeats:
                            with contextlib.suppress(TransportError):
                                await stream.send(message)
                        continue
                if isinstance(
                    message, (TelemetrySnapshotMessage, TelemetryDigestMessage)
                ):
                    # In-band fleet telemetry rides the local link the way
                    # heartbeats do; it is collector traffic, never operator
                    # input.
                    if self._on_telemetry is not None:
                        self._on_telemetry(message)
                    continue
                if message.group_id != 0 and self._query_plane is not None:
                    # Query-plane traffic multiplexed on the local link:
                    # handled by the plane, never by the base operator.
                    self._note_plane_message(message)
                    await self._ship_plane(
                        self._query_plane.on_local_message(message)
                    )
                    continue
                await self.dispatch(message, stream.last_context)
                self._account_outcomes()
        finally:
            # Only unregister if a reconnect has not already replaced us.
            if self._peers.get(hello.node_id) is stream:
                del self._peers[hello.node_id]

    def start_monitor(self) -> None:
        """Start the heartbeat monitor task (tolerant mode only)."""
        if self._tolerance is None or self._monitor_task is not None:
            return
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def stop_monitor(self) -> None:
        if self._monitor_task is None:
            return
        self._monitor_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._monitor_task
        self._monitor_task = None

    async def _monitor(self) -> None:
        """Declare locals dead after prolonged silence.

        Deadline-heap failure detector: the task sleeps until the earliest
        armed deadline (or a new enrollment wakes it) and handles only the
        entries that are actually due.  A popped entry whose local has
        been heard from since arming re-arms silently; a genuinely silent
        local accrues one miss per heartbeat interval and is declared dead
        once its silence passes ``declare_dead_after_s`` — the same
        observable cadence as the old per-tick scan, at O(log n) per
        event instead of O(n) per tick.
        """
        tolerance = self._tolerance
        assert tolerance is not None
        interval = tolerance.heartbeat_interval_s
        heap = self._deadlines
        try:
            while True:
                now = self.fabric.now
                while heap and heap[0][0] <= now:
                    _, local_id, seen_then = heapq.heappop(heap)
                    seen = self.last_seen.get(local_id, seen_then)
                    if (
                        local_id in self.node.dead_nodes
                        or local_id not in self.node.current_members
                    ):
                        # Dead or gracefully departed: drop the tombstoned
                        # entry instead of re-arming it forever (a leaver
                        # never heartbeats again, so its entry would
                        # otherwise accrue misses each interval and end in
                        # a bogus death declaration).  A fresh hello
                        # re-enrolls either way.
                        self._monitored.discard(local_id)
                        continue
                    if seen != seen_then:
                        # Heard from since this deadline was armed.
                        heapq.heappush(
                            heap, (seen + 1.5 * interval, local_id, seen)
                        )
                        continue
                    silence = now - seen
                    if silence <= 1.5 * interval:
                        heapq.heappush(
                            heap, (seen + 1.5 * interval, local_id, seen)
                        )
                        continue
                    self.heartbeat_misses += 1
                    if self.tracer.enabled:
                        self.tracer.registry.counter(
                            "heartbeat_misses_total",
                            "Monitor ticks that found a local silent.",
                        ).inc()
                    if silence <= tolerance.declare_dead_after_s:
                        heapq.heappush(
                            heap, (now + interval, local_id, seen)
                        )
                        continue
                    self._monitored.discard(local_id)
                    if self.node.mark_dead(local_id, now):
                        self.locals_declared_dead += 1
                        if self.tracer.enabled:
                            self.tracer.record(
                                "fault_dead_local", self.node_id, now, now,
                                local=local_id, silence=silence,
                            )
                            self.tracer.registry.counter(
                                "locals_declared_dead_total",
                                "Locals the failure detector gave up on.",
                            ).inc()
                        await self.flush()
                        self._account_outcomes()
                timeout = interval
                if heap:
                    timeout = max(0.001, heap[0][0] - self.fabric.now)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._monitor_wake.wait(), timeout
                    )
                self._monitor_wake.clear()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)


class LocalServer(NodeHost):
    """Hosts one Dema local node plus its watermark-driven window sealing.

    The simulator's driver announces window ends with perfect knowledge;
    live, the host reconstructs the same announcements from stream
    watermarks: every window ``[s, s + L)`` of the agreed grid is sealed
    once ``min(watermarks) >= s + L``.  Because each stream's events are
    FIFO-ordered before its watermark and timestamps are non-decreasing,
    no event for a sealed window can still be in flight.
    """

    def __init__(self, node, fabric: LiveFabric, *, expected_streams: int,
                 grid_start: int, grid_end: int, window_length_ms: int,
                 tracer: Tracer = NOOP_TRACER,
                 tolerance: ToleranceConfig | None = None,
                 dial_root: Callable[
                     [], Awaitable[MessageStream]
                 ] | None = None,
                 failures: FailureLatch | None = None,
                 wire_tracing: bool = False,
                 sample_rate: float = 1.0,
                 query_plane=None) -> None:
        super().__init__(node, fabric, tracer,
                         drop_unroutable=tolerance is not None,
                         failures=failures, wire_tracing=wire_tracing)
        if expected_streams < 1:
            raise TransportError("a local server needs at least one stream")
        #: Optional :class:`~repro.queries.local.LocalQueryPlane`: fed
        #: every ingested batch and watermark, plus ``group_id != 0``
        #: frames from the root.
        self._query_plane = query_plane
        self._expected_streams = expected_streams
        self._window_length_ms = window_length_ms
        self._grid_end = grid_end
        self._next_start = grid_start
        self._watermarks: dict[int, int] = {}
        #: Wall-clock (fabric) seal time per sealed window.
        self.seal_walls: dict[Window, float] = {}
        self._root_task: asyncio.Task | None = None
        self._tolerance = tolerance
        self._dial_root = dial_root
        self._root_stream: MessageStream | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._heartbeat_seq = 0
        #: Head-based sampling rate for the trace roots this host opens
        #: (the per-window synopsis seal).
        self._sample_rate = sample_rate
        #: Fabric send time by heartbeat sequence, for RTT on echoes.
        self._heartbeat_sent: dict[int, float] = {}
        self._closing = False
        self._crashed = False
        self._resumed = asyncio.Event()
        self._rng = random.Random(f"reconnect:{node.node_id}")
        self.reconnects = 0
        self.crashes = 0

    async def connect_root(self, root_stream: MessageStream) -> None:
        """Register and announce ourselves on the dialed root stream."""
        await self._attach_root(root_stream)
        self._start_root_task()

    def _start_root_task(self) -> None:
        self._root_task = asyncio.ensure_future(self._guarded_read_root())

    async def _attach_root(self, stream: MessageStream) -> None:
        """Adopt ``stream`` as the root session and announce ourselves.

        The hello carries the resume cursor (last released window end) so
        a reconnecting local gets a catch-up release; replaying the pending
        (unacknowledged) windows right after restores anything the outage
        swallowed — the root deduplicates, so this is safe on a fresh
        connection too.
        """
        self._root_stream = stream
        self.register_peer(0, stream)
        resume = self.node.last_release_end if self._tolerance else -1
        await stream.send(
            Hello(node_id=self.node_id, role="local", resume_from=resume)
        )
        if self._tolerance is not None:
            self.node.replay_pending(self.fabric.now)
            await self.flush()
            self._start_heartbeats()

    async def _guarded_read_root(self) -> None:
        try:
            await self._read_root()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._failures is None:
                raise
            self._failures.record(exc)

    async def _read_root(self) -> None:
        """Candidate requests, gamma updates and releases from the root.

        In tolerant mode an EOF (or mid-frame death) of the root session is
        not fatal: the local redials with exponential backoff and resumes.
        """
        while True:
            stream = self._root_stream
            if stream is None:
                return
            try:
                message = await stream.recv()
            except TransportError:
                if self._tolerance is None:
                    raise
                message = None  # link died mid-frame: treat as EOF
            if message is not None:
                if isinstance(message, HeartbeatMessage):
                    # Telemetry echo from the root: close the RTT loop.
                    self._record_heartbeat_rtt(message.sequence)
                    continue
                if message.group_id != 0 and self._query_plane is not None:
                    # Query-plane traffic multiplexed on the root link.
                    self._note_plane_message(message)
                    await self._ship_plane(
                        self._query_plane.on_root_message(message)
                    )
                    continue
                await self.dispatch(message, stream.last_context)
                continue
            if self._closing or self._crashed or self._tolerance is None:
                return
            if not await self._reconnect():
                raise TransportError(
                    f"local {self.node_id} exhausted "
                    f"{self._tolerance.reconnect_max_attempts} "
                    "reconnect attempts to the root"
                )

    async def _reconnect(self) -> bool:
        """Redial the root with exponential backoff + jitter."""
        tolerance = self._tolerance
        if tolerance is None or self._dial_root is None:
            return False
        for attempt in range(tolerance.reconnect_max_attempts):
            delay = min(
                tolerance.reconnect_max_delay_s,
                tolerance.reconnect_base_delay_s * (2 ** attempt),
            )
            delay *= 1.0 + tolerance.reconnect_jitter * self._rng.random()
            await asyncio.sleep(delay)
            if self._closing or self._crashed:
                return True  # crash()/shutdown() owns the session now
            try:
                stream = await self._dial_root()
            except TransportError:
                continue  # root unreachable (e.g. partition); back off more
            await self._attach_root(stream)
            self.reconnects += 1
            if self.tracer.enabled:
                now = self.fabric.now
                self.tracer.record(
                    "fault_reconnect", self.node_id, now, now,
                    attempt=attempt + 1,
                )
            return True
        return False

    def _start_heartbeats(self) -> None:
        if self._tolerance is None:
            return
        if self._heartbeat_task is None or self._heartbeat_task.done():
            self._heartbeat_task = asyncio.ensure_future(self._heartbeats())

    async def _heartbeats(self) -> None:
        """Periodic liveness beacons on the current root session."""
        assert self._tolerance is not None
        interval = self._tolerance.heartbeat_interval_s
        while not self._closing:
            await asyncio.sleep(interval)
            stream = self._root_stream
            if stream is None or self._crashed:
                continue
            self._heartbeat_seq += 1
            self._heartbeat_sent[self._heartbeat_seq] = self.fabric.now
            if len(self._heartbeat_sent) > 64:  # unechoed beats: cap it
                self._heartbeat_sent.pop(min(self._heartbeat_sent))
            with contextlib.suppress(TransportError):
                await stream.send(
                    HeartbeatMessage(
                        sender=self.node_id,
                        window=_HEARTBEAT_WINDOW,
                        sequence=self._heartbeat_seq,
                    )
                )

    def _record_heartbeat_rtt(self, sequence: int) -> None:
        sent = self._heartbeat_sent.pop(sequence, None)
        if sent is None or not self.tracer.enabled:
            return
        self.tracer.registry.histogram(
            "live_heartbeat_rtt_seconds",
            "Heartbeat round-trip time local -> root -> local.",
            node=str(self.node_id),
        ).observe(max(0.0, self.fabric.now - sent))

    async def _stop_heartbeats(self) -> None:
        if self._heartbeat_task is None:
            return
        self._heartbeat_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._heartbeat_task
        self._heartbeat_task = None

    async def crash(self) -> None:
        """Simulate abrupt process death: stop all activity, drop links.

        Operator state survives (the model is a stalled/frozen process,
        the worst case for the protocol's timers); :meth:`restart` brings
        the node back through the normal reconnect + resume path.
        """
        self._crashed = True
        self.crashes += 1
        self._resumed = asyncio.Event()
        await self._stop_heartbeats()
        if self._root_task is not None:
            self._root_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._root_task
            self._root_task = None
        if self._root_stream is not None:
            with contextlib.suppress(TransportError):
                await self._root_stream.close()

    async def restart(self) -> None:
        """Come back up: redial the root and resume the session."""
        self._crashed = False
        if not await self._reconnect():
            raise TransportError(
                f"local {self.node_id} could not re-reach the root "
                "after restarting"
            )
        self._start_root_task()
        self._resumed.set()

    async def serve(self, stream: MessageStream) -> None:
        """Connection handler for one dialing stream server."""
        hello = await self.expect_hello(stream, "stream")
        self.register_peer(hello.node_id, stream)
        while (message := await stream.recv()) is not None:
            if self._crashed:
                # A crashed process consumes nothing; the bounded pipe
                # backpressures the sender until restart() resumes us.
                await self._resumed.wait()
            if isinstance(message, WatermarkMessage):
                # Host concern: the operator itself rejects watermarks.
                self._watermarks[hello.node_id] = max(
                    self._watermarks.get(hello.node_id, 0),
                    message.watermark_time,
                )
                context = stream.last_context
                if (
                    self.wire_tracing
                    and context is not None
                    and context.sampled
                ):
                    # Attribute the hop even though sealing opens its own
                    # root span (min-watermark has no single parent).
                    now = self.fabric.now
                    self.tracer.record(
                        "live_watermark", self.node_id, now, now,
                        parent=context.span_id,
                        trace_id=context.trace_id,
                        watermark=message.watermark_time,
                    )
                await self._seal_ready_windows()
                await self._advance_query_plane()
            elif isinstance(message, EventBatchMessage):
                if self._query_plane is not None:
                    self._query_plane.ingest(message.events)
                await self.dispatch(message, stream.last_context)
            else:
                raise TransportError(
                    f"stream {hello.node_id} sent "
                    f"{type(message).__name__} to local {self.node_id}"
                )

    async def _seal_ready_windows(self) -> None:
        if len(self._watermarks) < self._expected_streams:
            return  # a stream has not spoken yet; its events may be early
        watermark = min(self._watermarks.values())
        length = self._window_length_ms
        while (
            self._next_start + length <= watermark
            and self._next_start < self._grid_end
        ):
            window = Window(self._next_start, self._next_start + length)
            now = self.fabric.now
            if self.wire_tracing:
                # The seal is a trace *root*: caused by the minimum
                # watermark over every stream, so it parents on no single
                # hop.  Its context rides the synopsis frame to the root,
                # which parents identification onto this span.
                trace_id = trace_id_for_window(window.start)
                if should_sample(trace_id, self._sample_rate):
                    span_id = self.tracer.begin(
                        "live_synopsis", self.node_id, now,
                        window=window, trace_id=trace_id,
                    )
                    scope = context_scope(
                        TraceContext(trace_id, span_id)
                    )
                    with scope:
                        self.node.on_window_complete(window, now)
                        self.seal_walls[window] = now
                        self._next_start += length
                        await self.flush()
                    self.tracer.end(span_id, self.fabric.now)
                    continue
            self.node.on_window_complete(window, now)
            self.seal_walls[window] = now
            self._next_start += length
            await self.flush()

    async def _advance_query_plane(self) -> None:
        """Seal query-group windows behind the min stream watermark."""
        plane = self._query_plane
        if plane is None or len(self._watermarks) < self._expected_streams:
            return
        watermark = min(self._watermarks.values())
        await self._ship_plane(plane.on_watermark(watermark))

    async def _ship_plane(self, messages: "list[Message]") -> None:
        """Send query-plane messages to the root session."""
        stream = self._peers.get(0)
        for reply in messages:
            if stream is None:
                self.dropped_sends += 1
                continue
            try:
                await stream.send(reply)
            except TransportError:
                self.dropped_sends += 1

    async def shutdown(self) -> None:
        """Stop listening to the root (called by the cluster on teardown)."""
        self._closing = True
        await self._stop_heartbeats()
        if self._root_task is not None:
            self._root_task.cancel()
            try:
                await self._root_task
            except asyncio.CancelledError:
                pass
            self._root_task = None


def batches_for(
    events: Sequence[Event], window_length_ms: int, batch_size: int
) -> "list[Sequence[Event]]":
    """Split ``events`` into size-capped batches that never span a window.

    Shared by :class:`StreamServer` and the mesh's phased stream replay:
    both need the simulator driver's batching discipline — a batch holds
    events of exactly one tumbling window of the agreed grid, capped at
    ``batch_size`` events.

    Columnar inputs batch on the timestamp array and come back as
    zero-copy :class:`EventColumns` slices — the object path below is
    untouched and produces the same boundaries.
    """
    if isinstance(events, EventColumns):
        if not len(events):
            return []
        if events.timestamps_sorted():
            length = window_length_ms
            size = max(1, batch_size)
            timestamps = events.timestamps.tolist()
            column_batches: list[EventColumns] = []
            lo, n = 0, len(events)
            while lo < n:
                window_end = (timestamps[lo] // length + 1) * length
                hi = bisect.bisect_left(timestamps, window_end, lo)
                for i in range(lo, hi, size):
                    column_batches.append(events[i:min(i + size, hi)])
                lo = hi
            return column_batches
        # Out-of-order columns are a cold path: fall through to the
        # per-event grouping below over materialized events.
        events = tuple(events)
    else:
        events = tuple(events)
    if not events:
        return []
    length = window_length_ms
    size = max(1, batch_size)
    batches: list[tuple[Event, ...]] = []
    timestamps = [event.timestamp for event in events]
    if not any(
        map(operator.gt, timestamps, itertools.islice(timestamps, 1, None))
    ):
        # Timestamp-ordered replay (the normal case): locate each
        # window boundary with one bisect instead of two floor
        # divisions per event, then slice the run into size-capped
        # chunks.  Produces exactly the batches the per-event loop
        # below would.
        lo, n = 0, len(events)
        while lo < n:
            window_end = (timestamps[lo] // length + 1) * length
            hi = bisect.bisect_left(timestamps, window_end, lo)
            for i in range(lo, hi, size):
                batches.append(tuple(events[i:min(i + size, hi)]))
            lo = hi
        return batches
    # Out-of-order replay: group per event, breaking a batch whenever
    # the window changes or the size cap is hit.
    batch: list[Event] = []
    for event in events:
        crosses = batch and (
            batch[0].timestamp // length != event.timestamp // length
        )
        if crosses or len(batch) >= size:
            batches.append(tuple(batch))
            batch = []
        batch.append(event)
    if batch:
        batches.append(tuple(batch))
    return batches


class StreamServer:
    """Replays one sensor's workload share into its local node.

    Batches respect window boundaries (as the simulator's driver does) and
    are paced on the wall clock: with ``time_scale`` seconds of wall time
    per second of event time, the batch whose last timestamp is ``t`` is
    sent no earlier than ``epoch + (t - grid_start) * time_scale / 1000``.
    A ``time_scale`` of zero replays as fast as backpressure allows.
    """

    def __init__(self, stream_id: int, *, events: Sequence[Event],
                 batch_size: int, grid_start: int, grid_end: int,
                 window_length_ms: int, time_scale: float = 0.0,
                 tracer: Tracer = NOOP_TRACER,
                 wire_tracing: bool = False,
                 sample_rate: float = 1.0,
                 epoch: float | None = None) -> None:
        self.stream_id = stream_id
        # Columnar workloads stay columnar; anything else snapshots to a
        # tuple exactly as before.
        self._events = (
            events if isinstance(events, EventColumns) else tuple(events)
        )
        self._batch_size = max(1, batch_size)
        self._grid_start = grid_start
        self._grid_end = grid_end
        self._window_length_ms = window_length_ms
        self._time_scale = time_scale
        self.tracer = tracer
        #: With wire tracing on, every batch send opens a
        #: ``live_stream_batch`` span — the root of the ingest chain for
        #: its window — and stamps the span's context onto the frames.
        self.wire_tracing = wire_tracing and tracer.enabled
        self._sample_rate = sample_rate
        #: Cluster epoch so span times share the hosts' fabric clock.
        self._epoch = epoch
        self.events_sent = 0

    def _batches(self) -> "list[Sequence[Event]]":
        return batches_for(
            self._events, self._window_length_ms, self._batch_size
        )

    async def replay(self, stream: MessageStream) -> None:
        """Ship every batch plus sealing watermarks, then the final one.

        A watermark is emitted only with the *first* batch of each window,
        not with every batch: the local server seals on
        ``min(watermarks) >= window end``, and a watermark whose time lies
        inside window ``w`` can only ever satisfy that predicate for
        windows ending at or before ``w.start`` — which the first
        watermark of ``w`` already sealed.  Intra-window watermarks are
        pure overhead (they used to double the stream → local frame
        count), and dropping them leaves every seal on exactly the same
        received frame as before.
        """
        await stream.send(Hello(node_id=self.stream_id, role="stream"))
        loop = asyncio.get_event_loop()
        epoch = loop.time()
        clock_zero = self._epoch if self._epoch is not None else epoch
        span = Window(self._grid_start, max(self._grid_end, self._grid_start + 1))
        length = self._window_length_ms
        watermarked_window: int | None = None
        send_many = getattr(stream, "send_many", None)
        for batch in self._batches():
            if isinstance(batch, EventColumns):
                first_ts = batch.timestamp_at(0)
                last_ts = batch.timestamp_at(-1)
            else:
                first_ts = batch[0].timestamp
                last_ts = batch[-1].timestamp
            if self._time_scale > 0:
                target = epoch + (
                    (last_ts - self._grid_start) / _MS_PER_SECOND
                ) * self._time_scale
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            batch_message = EventBatchMessage(
                sender=self.stream_id,
                window=Window(first_ts, last_ts + 1),
                events=batch,
            )
            # Batches never span a window boundary, so the batch's window
            # index is well-defined by any of its timestamps.
            window_index = last_ts // length
            watermark_message = None
            if window_index != watermarked_window:
                watermarked_window = window_index
                watermark_message = WatermarkMessage(
                    sender=self.stream_id, window=span,
                    watermark_time=last_ts,
                )
            span_id = 0
            if self.wire_tracing:
                # One window per batch ⇒ one trace per batch.
                window_start = window_index * length
                trace_id = trace_id_for_window(window_start)
                if should_sample(trace_id, self._sample_rate):
                    span_id = self.tracer.begin(
                        "live_stream_batch", self.stream_id,
                        loop.time() - clock_zero,
                        window=Window(window_start, window_start + length),
                        trace_id=trace_id,
                        events=len(batch),
                    )
                    with context_scope(TraceContext(trace_id, span_id)):
                        # Batch + sealing watermark coalesce into one
                        # writev/drain when the transport supports it.
                        if watermark_message is not None and send_many:
                            await send_many(
                                (batch_message, watermark_message)
                            )
                        else:
                            await stream.send(batch_message)
                            if watermark_message is not None:
                                await stream.send(watermark_message)
                    self.tracer.end(span_id, loop.time() - clock_zero)
            if not span_id:
                if watermark_message is not None and send_many:
                    await send_many((batch_message, watermark_message))
                else:
                    await stream.send(batch_message)
                    if watermark_message is not None:
                        await stream.send(watermark_message)
            self.events_sent += len(batch)
        await stream.send(
            WatermarkMessage(
                sender=self.stream_id, window=span,
                watermark_time=self._grid_end,
            )
        )
        await stream.close()
