"""Binary codec: every protocol message to and from wire frames.

One frame per message: a u32 length prefix followed by the fixed header
(version, type tag, flags, sender, group id, window bounds — layout in
:mod:`repro.runtime.wire`) and a type-specific payload.  Encoding is
lossless: ``decode_frame(encode_frame(m)) == m`` for every message type,
including NaN values (bit patterns survive the f64 round trip, although
``==`` on NaN-carrying dataclasses needs a bit-level comparison).

The payload encoders here and the ``payload_bytes`` properties in
:mod:`repro.network.messages` are two views of the same layout; the test
suite asserts ``len(encode_payload(m)) == m.payload_bytes`` exactly, which
is what lets the discrete-event simulator charge real wire bytes.

Framing is deliberately dumb — no compression, no varints — so that sizes
are arithmetic over the struct constants and a reader can frame a stream
with two ``readexactly`` calls.

Frames may carry an optional, versioned **header extension block**
(announced by the :data:`~repro.runtime.wire.FLAG_EXTENSIONS` flag bit)
between the fixed header and the payload.  Extensions are type-tagged and
length-delimited, so a decoder skips any extension type it does not know;
the only assigned type carries the distributed-tracing context
(:class:`~repro.obs.live.context.TraceContext`).  Frames without the flag
are bit-identical to the original wire format, which is what keeps the
simulator's byte accounting and old captures valid.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.synopsis import SliceSynopsis
from repro.errors import CodecError
from repro.obs.live.context import TraceContext
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    DigestMessage,
    EventBatchMessage,
    GammaUpdateMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    Message,
    PartialAggregateMessage,
    QDigestMessage,
    QueryAckMessage,
    QueryDeregisterMessage,
    QueryRegisterMessage,
    QueryResultMessage,
    RelayRunsMessage,
    RelaySynopsisMessage,
    ResultAckMessage,
    ResultMessage,
    RouteUpdateMessage,
    ShardFailoverMessage,
    SortedRunMessage,
    SynopsisMessage,
    SynopsisRequestMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
    WatermarkMessage,
    WindowReleaseMessage,
)
from repro.runtime import wire
from repro.streaming.columns import EventColumns
from repro.streaming.windows import Window

# Hot-path module: event arrays decode into zero-copy ``EventColumns``
# views and encode from them — no per-event ``Event`` construction here
# (enforced by tests/test_hotpath_lint.py).

__all__ = [
    "Hello",
    "HELLO_TAG",
    "TAG_BY_TYPE",
    "TYPE_BY_TAG",
    "tag_of",
    "encode_payload",
    "encode_extensions",
    "encode_frame",
    "encode_hello",
    "decode_body",
    "decode_body_traced",
    "decode_frame",
    "decode_frame_traced",
    "decode_payload",
]

#: Type tag of the ``Hello`` control frame (never a protocol message).
HELLO_TAG = 0

#: Roles a peer may announce in its ``Hello``.
_ROLE_CODES = {"stream": 1, "local": 2, "root": 3, "driver": 4, "relay": 5}
_ROLE_NAMES = {code: name for name, code in _ROLE_CODES.items()}


@dataclass(frozen=True, slots=True)
class Hello:
    """Connection preamble: who is dialing and in what role.

    Sent once by the dialing side immediately after connect, before any
    protocol message, so the accepting server can register the peer under
    its node id.  Not a :class:`~repro.network.messages.Message` — it never
    crosses the simulator and carries no window.

    ``resume_from`` is the session-resume cursor: the event-time end (ms)
    of the highest window the sender has seen released, or ``-1`` for a
    fresh session.  A reconnecting local announces it so the root can
    re-acknowledge anything the local still retains but the root already
    answered.
    """

    node_id: int
    role: str
    resume_from: int = -1

    def __post_init__(self) -> None:
        if self.role not in _ROLE_CODES:
            raise CodecError(
                f"unknown hello role {self.role!r}; "
                f"expected one of {sorted(_ROLE_CODES)}"
            )


# ----------------------------------------------------------------------
# Tag registry.  Wire compatibility: tags are append-only, never reused.
# ----------------------------------------------------------------------

TAG_BY_TYPE: dict[type, int] = {
    Message: 1,
    EventBatchMessage: 2,
    SortedRunMessage: 3,
    SynopsisMessage: 4,
    CandidateRequestMessage: 5,
    CandidateEventsMessage: 6,
    SynopsisRequestMessage: 7,
    WindowReleaseMessage: 8,
    GammaUpdateMessage: 9,
    DigestMessage: 10,
    PartialAggregateMessage: 11,
    QDigestMessage: 12,
    WatermarkMessage: 13,
    ResultMessage: 14,
    HeartbeatMessage: 15,
    QueryRegisterMessage: 16,
    QueryAckMessage: 17,
    QueryResultMessage: 18,
    QueryDeregisterMessage: 19,
    JoinMessage: 20,
    LeaveMessage: 21,
    RouteUpdateMessage: 22,
    RelaySynopsisMessage: 23,
    RelayRunsMessage: 24,
    ShardFailoverMessage: 25,
    ResultAckMessage: 26,
    TelemetrySnapshotMessage: 27,
    TelemetryDigestMessage: 28,
}

TYPE_BY_TAG: dict[int, type] = {tag: cls for cls, tag in TAG_BY_TYPE.items()}


def tag_of(message: Message) -> int:
    """Wire type tag for ``message`` (exact type, not isinstance)."""
    try:
        return TAG_BY_TYPE[type(message)]
    except KeyError:
        raise CodecError(
            f"no wire tag registered for {type(message).__name__}"
        ) from None


# ----------------------------------------------------------------------
# Payload encoders.
# ----------------------------------------------------------------------


#: Cache of whole-batch structs keyed by event count.  ``"<I" + "dIII"*n``
#: is byte-identical to ``COUNT.pack(n)`` followed by ``n`` ``EVENT.pack``
#: calls (little-endian formats never pad), so one ``pack`` replaces ``n``
#: pack calls plus an ``n``-way join on the live ingest path.  Bounded so a
#: pathological mix of batch sizes cannot grow it without limit.
_EVENT_BATCH_STRUCTS: dict[int, struct.Struct] = {}
_EVENT_BATCH_CACHE_MAX = 4096


def _event_batch_struct(n: int) -> struct.Struct:
    fmt = _EVENT_BATCH_STRUCTS.get(n)
    if fmt is None:
        fmt = struct.Struct("<I" + "dIII" * n)
        if len(_EVENT_BATCH_STRUCTS) < _EVENT_BATCH_CACHE_MAX:
            _EVENT_BATCH_STRUCTS[n] = fmt
    return fmt


def _encode_events(events) -> bytes:
    if isinstance(events, EventColumns):
        # Columnar batches ARE the wire layout: count prefix + raw columns.
        return wire.COUNT.pack(len(events)) + events.to_wire()
    args: list = []
    extend = args.extend
    for ev in events:
        extend((ev.value, ev.timestamp, ev.node_id, ev.seq))
    return _event_batch_struct(len(events)).pack(len(events), *args)


def _encode_event_batch(m: EventBatchMessage) -> bytes:
    return _encode_events(m.events)


def _encode_sorted_run(m: SortedRunMessage) -> bytes:
    return _encode_events(m.events)


def _encode_synopsis(m: SynopsisMessage) -> bytes:
    parts = [
        wire.COUNT.pack(len(m.synopses)),
        wire.U64.pack(m.local_window_size),
    ]
    pack = wire.SYNOPSIS.pack
    for s in m.synopses:
        parts.append(
            pack(
                *s.first_key,
                *s.last_key,
                s.count,
                s.slice_index,
                s.n_slices,
                s.node_id,
            )
        )
    return b"".join(parts)


def _encode_candidate_request(m: CandidateRequestMessage) -> bytes:
    parts = [wire.COUNT.pack(len(m.slice_indices))]
    parts.extend(wire.U32.pack(i) for i in m.slice_indices)
    return b"".join(parts)


def _encode_candidate_events(m: CandidateEventsMessage) -> bytes:
    return wire.U32.pack(m.slice_index) + _encode_events(m.events)


def _encode_empty(_: Message) -> bytes:
    return b""


def _encode_gamma(m: GammaUpdateMessage) -> bytes:
    return wire.U32.pack(m.gamma)


def _encode_digest(m: DigestMessage) -> bytes:
    parts = [
        wire.COUNT.pack(len(m.centroids)),
        wire.F64.pack(m.minimum),
        wire.F64.pack(m.maximum),
    ]
    parts.extend(wire.CENTROID.pack(mean, weight) for mean, weight in m.centroids)
    return b"".join(parts)


def _encode_partial(m: PartialAggregateMessage) -> bytes:
    parts = [
        wire.COUNT.pack(len(m.state)),
        wire.U64.pack(m.local_window_size),
    ]
    parts.extend(wire.F64.pack(x) for x in m.state)
    return b"".join(parts)


def _encode_qdigest(m: QDigestMessage) -> bytes:
    parts = [
        wire.COUNT.pack(len(m.nodes)),
        wire.U64.pack(m.local_count),
    ]
    parts.extend(
        wire.QDIGEST_NODE.pack(level, index, count)
        for level, index, count in m.nodes
    )
    return b"".join(parts)


def _encode_watermark(m: WatermarkMessage) -> bytes:
    return wire.U64.pack(m.watermark_time)


def _encode_result(m: ResultMessage) -> bytes:
    return wire.F64.pack(m.value) + wire.U64.pack(m.global_window_size)


def _encode_heartbeat(m: HeartbeatMessage) -> bytes:
    return wire.U64.pack(m.sequence)


#: Window-kind codes on the wire.  Append-only, like message tags.
_QUERY_KIND_CODES = {"tumbling": 1, "sliding": 2, "session": 3}
_QUERY_KIND_NAMES = {code: name for name, code in _QUERY_KIND_CODES.items()}


def _encode_string(text: str) -> bytes:
    """A UTF-8 string behind a u32 **byte** count."""
    raw = text.encode("utf-8")
    return wire.COUNT.pack(len(raw)) + raw


def _encode_query_register(m: QueryRegisterMessage) -> bytes:
    kind_code = _QUERY_KIND_CODES.get(m.kind)
    if kind_code is None:
        raise CodecError(
            f"unknown query window kind {m.kind!r}; "
            f"expected one of {sorted(_QUERY_KIND_CODES)}"
        )
    return wire.QUERY_REGISTER_FIXED.pack(
        m.query_id,
        m.q,
        kind_code,
        m.length_ms,
        m.step_ms,
        m.gamma,
        m.freshness_ms,
    ) + _encode_string(m.selector)


def _encode_query_ack(m: QueryAckMessage) -> bytes:
    return wire.QUERY_ACK_FIXED.pack(
        m.query_id, 1 if m.accepted else 0
    ) + _encode_string(m.reason)


def _encode_query_result(m: QueryResultMessage) -> bytes:
    return wire.QUERY_RESULT.pack(
        m.query_id, m.value, m.global_window_size, m.rank
    )


def _encode_query_deregister(m: QueryDeregisterMessage) -> bytes:
    return wire.U32.pack(m.query_id)


def _encode_join(m: JoinMessage) -> bytes:
    return wire.I64.pack(m.first_window_start)


def _encode_leave(m: LeaveMessage) -> bytes:
    return wire.I64.pack(m.effective_from)


def _encode_route_update(m: RouteUpdateMessage) -> bytes:
    parts = [wire.U64.pack(m.epoch), wire.COUNT.pack(len(m.members))]
    parts.extend(wire.U32.pack(member) for member in m.members)
    return b"".join(parts)


def _encode_shard_failover(m: ShardFailoverMessage) -> bytes:
    parts = [wire.U64.pack(m.epoch), wire.COUNT.pack(len(m.dead))]
    parts.extend(wire.U32.pack(index) for index in m.dead)
    return b"".join(parts)


def _encode_result_ack(m: ResultAckMessage) -> bytes:
    return wire.U64.pack(m.cursor)


def _encode_telemetry_snapshot(m: TelemetrySnapshotMessage) -> bytes:
    parts = [wire.U64.pack(m.sequence), wire.COUNT.pack(len(m.stats))]
    for name, value in m.stats:
        parts.append(_encode_string(name))
        parts.append(wire.F64.pack(value))
    return b"".join(parts)


def _encode_telemetry_digest(m: TelemetryDigestMessage) -> bytes:
    parts = [
        _encode_string(m.metric),
        wire.U64.pack(m.sequence),
        wire.COUNT.pack(len(m.centroids)),
        wire.F64.pack(m.minimum),
        wire.F64.pack(m.maximum),
    ]
    parts.extend(
        wire.CENTROID.pack(mean, weight) for mean, weight in m.centroids
    )
    return b"".join(parts)


def _encode_relay_synopsis(m: RelaySynopsisMessage) -> bytes:
    parts = [wire.COUNT.pack(len(m.sections))]
    pack = wire.RELAY_SYNOPSIS.pack
    for node_id, local_window_size, synopses in m.sections:
        parts.append(
            wire.RELAY_SYNOPSIS_SECTION_FIXED.pack(
                node_id, local_window_size, len(synopses)
            )
        )
        for s in synopses:
            parts.append(pack(*s.first_key, *s.last_key, s.count))
    return b"".join(parts)


def _encode_relay_runs(m: RelayRunsMessage) -> bytes:
    parts = [wire.COUNT.pack(len(m.sections))]
    for node_id, slice_index, events in m.sections:
        parts.append(
            wire.RELAY_RUN_SECTION_FIXED.pack(
                node_id, slice_index, len(events)
            )
        )
        if isinstance(events, EventColumns):
            parts.append(events.to_wire())
            continue
        args: list = []
        for ev in events:
            args.extend((ev.value, ev.timestamp, ev.node_id, ev.seq))
        parts.append(struct.pack("<" + "dIII" * len(events), *args))
    return b"".join(parts)


_ENCODERS: dict[type, Callable[[Message], bytes]] = {
    Message: _encode_empty,
    EventBatchMessage: _encode_event_batch,
    SortedRunMessage: _encode_sorted_run,
    SynopsisMessage: _encode_synopsis,
    CandidateRequestMessage: _encode_candidate_request,
    CandidateEventsMessage: _encode_candidate_events,
    SynopsisRequestMessage: _encode_empty,
    WindowReleaseMessage: _encode_empty,
    GammaUpdateMessage: _encode_gamma,
    DigestMessage: _encode_digest,
    PartialAggregateMessage: _encode_partial,
    QDigestMessage: _encode_qdigest,
    WatermarkMessage: _encode_watermark,
    ResultMessage: _encode_result,
    HeartbeatMessage: _encode_heartbeat,
    QueryRegisterMessage: _encode_query_register,
    QueryAckMessage: _encode_query_ack,
    QueryResultMessage: _encode_query_result,
    QueryDeregisterMessage: _encode_query_deregister,
    JoinMessage: _encode_join,
    LeaveMessage: _encode_leave,
    RouteUpdateMessage: _encode_route_update,
    RelaySynopsisMessage: _encode_relay_synopsis,
    RelayRunsMessage: _encode_relay_runs,
    ShardFailoverMessage: _encode_shard_failover,
    ResultAckMessage: _encode_result_ack,
    TelemetrySnapshotMessage: _encode_telemetry_snapshot,
    TelemetryDigestMessage: _encode_telemetry_digest,
}


# ----------------------------------------------------------------------
# Payload decoders.  Each consumes a memoryview and must use it fully.
# ----------------------------------------------------------------------


class _Reader:
    """Cursor over a payload with bounds-checked struct reads."""

    __slots__ = ("_view", "_pos")

    def __init__(self, payload: bytes | memoryview) -> None:
        self._view = memoryview(payload)
        self._pos = 0

    def unpack(self, fmt) -> tuple:
        end = self._pos + fmt.size
        if end > len(self._view):
            raise CodecError(
                f"payload truncated: need {end} bytes, have {len(self._view)}"
            )
        values = fmt.unpack_from(self._view, self._pos)
        self._pos = end
        return values

    def count(self) -> int:
        return self.unpack(wire.COUNT)[0]

    def take(self, n: int) -> bytes:
        """Read ``n`` raw bytes (extension bodies of arbitrary length)."""
        return bytes(self.view(n))

    def view(self, n: int) -> memoryview:
        """Read ``n`` bytes as a zero-copy view (bulk struct decoding)."""
        end = self._pos + n
        if end > len(self._view):
            raise CodecError(
                f"payload truncated: need {end} bytes, have {len(self._view)}"
            )
        raw = self._view[self._pos:end]
        self._pos = end
        return raw

    def rest(self) -> memoryview:
        """All remaining bytes as a zero-copy view (payload-tail arrays)."""
        raw = self._view[self._pos:]
        self._pos = len(self._view)
        return raw

    def finish(self) -> None:
        if self._pos != len(self._view):
            raise CodecError(
                f"payload has {len(self._view) - self._pos} trailing bytes"
            )


def _decode_events(r: _Reader) -> EventColumns:
    # The event array is always the payload tail, so hand the remaining
    # bytes to the columnar constructor, which rejects byte lengths that
    # are not a multiple of the event stride or disagree with the count —
    # strict validation instead of iter_unpack's truncation behavior.
    n = r.count()
    raw = r.rest()
    return EventColumns.from_wire(raw, count=n)


def _decode_event_batch(r, sender, window, group_id):
    return EventBatchMessage(sender, window, group_id, _decode_events(r))


def _decode_sorted_run(r, sender, window, group_id):
    return SortedRunMessage(sender, window, group_id, _decode_events(r))


def _decode_synopsis(r, sender, window, group_id):
    n = r.count()
    (local_window_size,) = r.unpack(wire.U64)
    synopses = []
    for _ in range(n):
        raw = r.unpack(wire.SYNOPSIS)
        synopses.append(
            SliceSynopsis(
                first_key=(raw[0], raw[1], raw[2]),
                last_key=(raw[3], raw[4], raw[5]),
                count=raw[6],
                slice_index=raw[7],
                n_slices=raw[8],
                node_id=raw[9],
            )
        )
    return SynopsisMessage(
        sender, window, group_id, tuple(synopses), local_window_size
    )


def _decode_candidate_request(r, sender, window, group_id):
    n = r.count()
    indices = tuple(r.unpack(wire.U32)[0] for _ in range(n))
    return CandidateRequestMessage(sender, window, group_id, indices)


def _decode_candidate_events(r, sender, window, group_id):
    (slice_index,) = r.unpack(wire.U32)
    return CandidateEventsMessage(
        sender, window, group_id, slice_index, _decode_events(r)
    )


def _decode_bare(cls):
    def decode(r, sender, window, group_id):
        return cls(sender, window, group_id)

    return decode


def _decode_gamma(r, sender, window, group_id):
    (gamma,) = r.unpack(wire.U32)
    return GammaUpdateMessage(sender, window, group_id, gamma)


def _decode_digest(r, sender, window, group_id):
    n = r.count()
    (minimum,) = r.unpack(wire.F64)
    (maximum,) = r.unpack(wire.F64)
    centroids = tuple(r.unpack(wire.CENTROID) for _ in range(n))
    return DigestMessage(
        sender, window, group_id, centroids, minimum, maximum
    )


def _decode_partial(r, sender, window, group_id):
    n = r.count()
    (local_window_size,) = r.unpack(wire.U64)
    state = tuple(r.unpack(wire.F64)[0] for _ in range(n))
    return PartialAggregateMessage(
        sender, window, group_id, state, local_window_size
    )


def _decode_qdigest(r, sender, window, group_id):
    n = r.count()
    (local_count,) = r.unpack(wire.U64)
    nodes = tuple(r.unpack(wire.QDIGEST_NODE) for _ in range(n))
    return QDigestMessage(sender, window, group_id, nodes, local_count)


def _decode_watermark(r, sender, window, group_id):
    (watermark_time,) = r.unpack(wire.U64)
    return WatermarkMessage(sender, window, group_id, watermark_time)


def _decode_result(r, sender, window, group_id):
    (value,) = r.unpack(wire.F64)
    (global_window_size,) = r.unpack(wire.U64)
    return ResultMessage(sender, window, group_id, value, global_window_size)


def _decode_heartbeat(r, sender, window, group_id):
    (sequence,) = r.unpack(wire.U64)
    return HeartbeatMessage(sender, window, group_id, sequence)


def _decode_string(r: _Reader) -> str:
    raw = r.take(r.count())
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"string payload is not valid UTF-8: {exc}") from exc


def _decode_query_register(r, sender, window, group_id):
    (
        query_id, q, kind_code, length_ms, step_ms, gamma, freshness_ms,
    ) = r.unpack(wire.QUERY_REGISTER_FIXED)
    kind = _QUERY_KIND_NAMES.get(kind_code)
    if kind is None:
        raise CodecError(f"unknown query window kind code {kind_code}")
    selector = _decode_string(r)
    return QueryRegisterMessage(
        sender, window, group_id, query_id, q, kind,
        length_ms, step_ms, gamma, freshness_ms, selector,
    )


def _decode_query_ack(r, sender, window, group_id):
    (query_id, accepted) = r.unpack(wire.QUERY_ACK_FIXED)
    reason = _decode_string(r)
    return QueryAckMessage(
        sender, window, group_id, query_id, bool(accepted), reason
    )


def _decode_query_result(r, sender, window, group_id):
    (query_id, value, size, rank) = r.unpack(wire.QUERY_RESULT)
    return QueryResultMessage(
        sender, window, group_id, query_id, value, size, rank
    )


def _decode_query_deregister(r, sender, window, group_id):
    (query_id,) = r.unpack(wire.U32)
    return QueryDeregisterMessage(sender, window, group_id, query_id)


def _decode_join(r, sender, window, group_id):
    (first_window_start,) = r.unpack(wire.I64)
    return JoinMessage(sender, window, group_id, first_window_start)


def _decode_leave(r, sender, window, group_id):
    (effective_from,) = r.unpack(wire.I64)
    return LeaveMessage(sender, window, group_id, effective_from)


def _decode_route_update(r, sender, window, group_id):
    (epoch,) = r.unpack(wire.U64)
    n = r.count()
    members = tuple(r.unpack(wire.U32)[0] for _ in range(n))
    return RouteUpdateMessage(sender, window, group_id, epoch, members)


def _decode_shard_failover(r, sender, window, group_id):
    (epoch,) = r.unpack(wire.U64)
    n = r.count()
    dead = tuple(r.unpack(wire.U32)[0] for _ in range(n))
    return ShardFailoverMessage(sender, window, group_id, epoch, dead)


def _decode_result_ack(r, sender, window, group_id):
    (cursor,) = r.unpack(wire.U64)
    return ResultAckMessage(sender, window, group_id, cursor)


def _decode_telemetry_snapshot(r, sender, window, group_id):
    (sequence,) = r.unpack(wire.U64)
    n = r.count()
    stats = []
    for _ in range(n):
        name = _decode_string(r)
        (value,) = r.unpack(wire.F64)
        stats.append((name, value))
    return TelemetrySnapshotMessage(
        sender, window, group_id, sequence, tuple(stats)
    )


def _decode_telemetry_digest(r, sender, window, group_id):
    metric = _decode_string(r)
    (sequence,) = r.unpack(wire.U64)
    n = r.count()
    (minimum,) = r.unpack(wire.F64)
    (maximum,) = r.unpack(wire.F64)
    centroids = tuple(r.unpack(wire.CENTROID) for _ in range(n))
    return TelemetryDigestMessage(
        sender, window, group_id, metric, sequence, centroids, minimum, maximum
    )


def _decode_relay_synopsis(r, sender, window, group_id):
    n_sections = r.count()
    sections = []
    for _ in range(n_sections):
        node_id, local_window_size, n = r.unpack(
            wire.RELAY_SYNOPSIS_SECTION_FIXED
        )
        synopses = []
        for index in range(n):
            raw = r.unpack(wire.RELAY_SYNOPSIS)
            synopses.append(
                SliceSynopsis(
                    first_key=(raw[0], raw[1], raw[2]),
                    last_key=(raw[3], raw[4], raw[5]),
                    count=raw[6],
                    slice_index=index,
                    n_slices=n,
                    node_id=node_id,
                )
            )
        sections.append((node_id, local_window_size, tuple(synopses)))
    return RelaySynopsisMessage(sender, window, group_id, tuple(sections))


def _decode_relay_runs(r, sender, window, group_id):
    n_sections = r.count()
    sections = []
    for _ in range(n_sections):
        node_id, slice_index, n = r.unpack(wire.RELAY_RUN_SECTION_FIXED)
        raw = r.view(n * wire.EVENT.size)
        sections.append(
            (node_id, slice_index, EventColumns.from_wire(raw, count=n))
        )
    return RelayRunsMessage(sender, window, group_id, tuple(sections))


_DECODERS: dict[int, Callable] = {
    TAG_BY_TYPE[Message]: _decode_bare(Message),
    TAG_BY_TYPE[EventBatchMessage]: _decode_event_batch,
    TAG_BY_TYPE[SortedRunMessage]: _decode_sorted_run,
    TAG_BY_TYPE[SynopsisMessage]: _decode_synopsis,
    TAG_BY_TYPE[CandidateRequestMessage]: _decode_candidate_request,
    TAG_BY_TYPE[CandidateEventsMessage]: _decode_candidate_events,
    TAG_BY_TYPE[SynopsisRequestMessage]: _decode_bare(SynopsisRequestMessage),
    TAG_BY_TYPE[WindowReleaseMessage]: _decode_bare(WindowReleaseMessage),
    TAG_BY_TYPE[GammaUpdateMessage]: _decode_gamma,
    TAG_BY_TYPE[DigestMessage]: _decode_digest,
    TAG_BY_TYPE[PartialAggregateMessage]: _decode_partial,
    TAG_BY_TYPE[QDigestMessage]: _decode_qdigest,
    TAG_BY_TYPE[WatermarkMessage]: _decode_watermark,
    TAG_BY_TYPE[ResultMessage]: _decode_result,
    TAG_BY_TYPE[HeartbeatMessage]: _decode_heartbeat,
    TAG_BY_TYPE[QueryRegisterMessage]: _decode_query_register,
    TAG_BY_TYPE[QueryAckMessage]: _decode_query_ack,
    TAG_BY_TYPE[QueryResultMessage]: _decode_query_result,
    TAG_BY_TYPE[QueryDeregisterMessage]: _decode_query_deregister,
    TAG_BY_TYPE[JoinMessage]: _decode_join,
    TAG_BY_TYPE[LeaveMessage]: _decode_leave,
    TAG_BY_TYPE[RouteUpdateMessage]: _decode_route_update,
    TAG_BY_TYPE[RelaySynopsisMessage]: _decode_relay_synopsis,
    TAG_BY_TYPE[RelayRunsMessage]: _decode_relay_runs,
    TAG_BY_TYPE[ShardFailoverMessage]: _decode_shard_failover,
    TAG_BY_TYPE[ResultAckMessage]: _decode_result_ack,
    TAG_BY_TYPE[TelemetrySnapshotMessage]: _decode_telemetry_snapshot,
    TAG_BY_TYPE[TelemetryDigestMessage]: _decode_telemetry_digest,
}


# ----------------------------------------------------------------------
# Header extensions.
# ----------------------------------------------------------------------


def _pack_context_body(context: TraceContext | None) -> bytes:
    """One 17-byte context body; ``None`` packs the absent marker."""
    if context is None:
        return wire.TRACE_CONTEXT_EXT.pack(
            0, 0, wire.SECTION_CONTEXT_ABSENT_BIT
        )
    return wire.TRACE_CONTEXT_EXT.pack(
        context.trace_id,
        context.span_id,
        wire.TRACE_SAMPLED_BIT if context.sampled else 0,
    )


def encode_extensions(
    context: TraceContext | None,
    section_contexts: "tuple[TraceContext | None, ...]" = (),
) -> bytes:
    """Serialize the header extension block.

    One :data:`~repro.runtime.wire.EXT_TRACE_CONTEXT` entry carries the
    frame's own ``context`` (when given); one
    :data:`~repro.runtime.wire.EXT_SECTION_CONTEXT` entry per element of
    ``section_contexts`` carries a relay-combined frame's per-child
    contexts in section order (``None`` elements ship the absent marker
    so alignment with the section list survives untraced children).
    """
    entries = []
    if context is not None:
        body = _pack_context_body(context)
        entries.append(
            wire.EXT_HEADER.pack(wire.EXT_TRACE_CONTEXT, len(body)) + body
        )
    for section_context in section_contexts:
        body = _pack_context_body(section_context)
        entries.append(
            wire.EXT_HEADER.pack(wire.EXT_SECTION_CONTEXT, len(body)) + body
        )
    if len(entries) > 255:
        raise CodecError(
            f"extension block of {len(entries)} entries exceeds the u8 count"
        )
    return wire.EXT_COUNT.pack(len(entries)) + b"".join(entries)


def _unpack_context_body(body: bytes) -> TraceContext | None:
    trace_id, span_id, flags = wire.TRACE_CONTEXT_EXT.unpack(body)
    if flags & wire.SECTION_CONTEXT_ABSENT_BIT:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(flags & wire.TRACE_SAMPLED_BIT),
    )


def _decode_extensions(
    reader: _Reader,
) -> "tuple[TraceContext | None, list[TraceContext | None] | None]":
    """Consume the extension block.

    Returns the frame's trace context (``None`` when absent) and the
    per-section context list (``None`` when no section-context entries
    were present).  Unknown extension types are skipped by their declared
    length — the compatibility contract that lets an old decoder read a
    newer peer's frames (and this decoder read frames from a future one).
    """
    (count,) = reader.unpack(wire.EXT_COUNT)
    context: TraceContext | None = None
    sections: "list[TraceContext | None] | None" = None
    for _ in range(count):
        ext_type, ext_length = reader.unpack(wire.EXT_HEADER)
        body = reader.take(ext_length)
        if ext_type == wire.EXT_TRACE_CONTEXT:
            if ext_length != wire.TRACE_CONTEXT_EXT_BYTES:
                raise CodecError(
                    f"trace-context extension of {ext_length} bytes, "
                    f"expected {wire.TRACE_CONTEXT_EXT_BYTES}"
                )
            trace_id, span_id, flags = wire.TRACE_CONTEXT_EXT.unpack(body)
            context = TraceContext(
                trace_id=trace_id,
                span_id=span_id,
                sampled=bool(flags & wire.TRACE_SAMPLED_BIT),
            )
        elif ext_type == wire.EXT_SECTION_CONTEXT:
            if ext_length != wire.TRACE_CONTEXT_EXT_BYTES:
                raise CodecError(
                    f"section-context extension of {ext_length} bytes, "
                    f"expected {wire.TRACE_CONTEXT_EXT_BYTES}"
                )
            if sections is None:
                sections = []
            sections.append(_unpack_context_body(body))
        # Any other type: length-delimited, step over what we don't know.
    return context, sections


# ----------------------------------------------------------------------
# Public API.
# ----------------------------------------------------------------------


def encode_payload(message: Message) -> bytes:
    """Serialize just the payload of ``message`` (no header).

    ``len(encode_payload(m)) == m.payload_bytes`` for every message type —
    the invariant the simulator's byte accounting rests on.
    """
    try:
        encoder = _ENCODERS[type(message)]
    except KeyError:
        raise CodecError(
            f"no payload encoder for {type(message).__name__}"
        ) from None
    return encoder(message)


def _frame(tag: int, sender: int, group_id: int, start: int, end: int,
           payload: bytes, context: TraceContext | None = None,
           section_contexts: "tuple[TraceContext | None, ...]" = ()) -> bytes:
    flags = 0
    extensions = b""
    if context is not None or section_contexts:
        flags = wire.FLAG_EXTENSIONS
        extensions = encode_extensions(context, section_contexts)
    header = wire.HEADER.pack(
        wire.WIRE_VERSION, tag, flags, sender, group_id, start, end
    )
    length = len(header) + len(extensions) + len(payload)
    if length > wire.MAX_FRAME_BYTES:
        raise CodecError(
            f"frame of {length} bytes exceeds MAX_FRAME_BYTES "
            f"({wire.MAX_FRAME_BYTES})"
        )
    return wire.LENGTH_PREFIX.pack(length) + header + extensions + payload


def encode_frame(
    message: Message, context: TraceContext | None = None
) -> bytes:
    """Serialize ``message`` to one full frame (length prefix included).

    Without a ``context``, ``len(encode_frame(m)) == m.wire_bytes``
    exactly; with one, the frame grows by the extension block (telemetry
    overhead is real bytes and is reported as such, never hidden).  A
    relay-combined message whose ``section_contexts`` field is set also
    grows by one section-context entry per section — again real,
    reported bytes, and skippable by peers that predate the extension.
    """
    return _frame(
        tag_of(message),
        message.sender,
        message.group_id,
        message.window.start,
        message.window.end,
        encode_payload(message),
        context,
        getattr(message, "section_contexts", ()),
    )


def encode_hello(hello: Hello) -> bytes:
    """Serialize the connection preamble to one frame (tag 0)."""
    # No window on a hello: the bounds are zero and ignored on decode.
    payload = (
        wire.U32.pack(_ROLE_CODES[hello.role])
        + wire.I64.pack(hello.resume_from)
    )
    return _frame(HELLO_TAG, hello.node_id, 0, 0, 0, payload)


def decode_body_traced(
    body: bytes | memoryview,
) -> tuple[Message | Hello, TraceContext | None]:
    """Decode a frame body (header + payload, **without** length prefix).

    This is the entry point for stream transports, which already framed the
    body with two ``readexactly`` calls.  Returns the message together with
    the trace context its header extension carried (``None`` when absent).

    Raises:
        CodecError: On version mismatch, unknown tag, unknown flag bits, a
            malformed extension block, or a payload that is truncated or
            has trailing bytes.
    """
    view = memoryview(body)
    if len(view) < wire.HEADER.size:
        raise CodecError(
            f"frame body of {len(view)} bytes is shorter than the "
            f"{wire.HEADER.size}-byte header"
        )
    version, tag, flags, sender, group_id, start, end = wire.HEADER.unpack_from(
        view, 0
    )
    if version != wire.WIRE_VERSION:
        raise CodecError(
            f"wire version mismatch: got {version}, expected {wire.WIRE_VERSION}"
        )
    if flags & ~wire.KNOWN_FLAGS:
        raise CodecError(
            f"unknown flag bits {flags & ~wire.KNOWN_FLAGS:#06x} "
            f"(known: {wire.KNOWN_FLAGS:#06x})"
        )
    reader = _Reader(view[wire.HEADER.size:])
    context: TraceContext | None = None
    section_contexts: "list[TraceContext | None] | None" = None
    if flags & wire.FLAG_EXTENSIONS:
        context, section_contexts = _decode_extensions(reader)
    if tag == HELLO_TAG:
        (role_code,) = reader.unpack(wire.U32)
        (resume_from,) = reader.unpack(wire.I64)
        reader.finish()
        role = _ROLE_NAMES.get(role_code)
        if role is None:
            raise CodecError(f"unknown hello role code {role_code}")
        return Hello(node_id=sender, role=role, resume_from=resume_from), context
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown frame type tag {tag}")
    message = decoder(reader, sender, Window(start, end), group_id)
    reader.finish()
    if section_contexts is not None and isinstance(
        message, (RelaySynopsisMessage, RelayRunsMessage)
    ):
        if len(section_contexts) != len(message.sections):
            raise CodecError(
                f"{len(section_contexts)} section-context extensions on a "
                f"frame with {len(message.sections)} sections"
            )
        message = replace(message, section_contexts=tuple(section_contexts))
    return message, context


def decode_body(body: bytes | memoryview) -> Message | Hello:
    """Decode a frame body, discarding any trace context it carried."""
    message, _ = decode_body_traced(body)
    return message


def decode_frame_traced(
    frame: bytes | memoryview,
) -> tuple[Message | Hello, TraceContext | None]:
    """Decode one complete frame (length prefix included), strictly.

    The frame must contain exactly one message — a short buffer or trailing
    bytes raise :class:`~repro.errors.CodecError`.
    """
    view = memoryview(frame)
    if len(view) < wire.LENGTH_PREFIX.size:
        raise CodecError("frame shorter than its length prefix")
    (length,) = wire.LENGTH_PREFIX.unpack_from(view, 0)
    if length > wire.MAX_FRAME_BYTES:
        raise CodecError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({wire.MAX_FRAME_BYTES})"
        )
    body = view[wire.LENGTH_PREFIX.size:]
    if len(body) != length:
        raise CodecError(
            f"frame length prefix says {length} bytes, buffer has {len(body)}"
        )
    return decode_body_traced(body)


def decode_frame(frame: bytes | memoryview) -> Message | Hello:
    """Decode one complete frame, discarding any trace context."""
    message, _ = decode_frame_traced(frame)
    return message


def decode_payload(
    tag: int, payload: bytes | memoryview, *, sender: int, window: Window,
    group_id: int = 0,
) -> Message:
    """Decode a bare payload given its type tag and header fields.

    Mostly useful in tests that want to poke at payload layouts directly;
    transports go through :func:`decode_body`.
    """
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown frame type tag {tag}")
    reader = _Reader(payload)
    message = decoder(reader, sender, window, group_id)
    reader.finish()
    return message
