"""Transport abstraction: message streams over TCP or in-memory pipes.

Two implementations of one small surface:

``TcpMessageStream`` / ``TcpNetwork``
    Real asyncio TCP over localhost.  Backpressure is the socket's: every
    send awaits ``writer.drain()``, so a slow reader slows its writers.

``MemoryMessageStream`` / ``MemoryNetwork``
    A pair of bounded :class:`asyncio.Queue` objects carrying **encoded
    frames** — the codec runs on both transports, so an in-memory test
    exercises the exact serialization path a socket would.  The bounded
    queue is the backpressure: a full peer inbox suspends the sender.

Both count frames and bytes in each direction; the cluster layer feeds
those counters to the observability subsystem so live runs report the
same per-link byte accounting the simulator does.

Tracing rides along transparently: ``send`` stamps the task's ambient
:class:`~repro.obs.live.context.TraceContext` (if any) into the frame's
header extension, and ``recv`` surfaces the peer's context as
``last_context`` for the dispatching server to parent its span on.  Both
streams also account *send stalls* (time spent suspended on backpressure)
and expose their current send backlog, which the runtime telemetry
sampler scrapes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Protocol

from repro.errors import TransportError
from repro.network.messages import Message
from repro.obs.live.context import TraceContext, current_context
from repro.runtime import wire
from repro.runtime.codec import (
    Hello,
    decode_body_traced,
    encode_frame,
    encode_hello,
)

# Hot-path module: frames move as encoded bytes; no per-event ``Event``
# objects are constructed here (enforced by tests/test_hotpath_lint.py).

__all__ = [
    "FailureLatch",
    "Frame",
    "MessageStream",
    "StreamHandler",
    "TcpMessageStream",
    "TcpNetwork",
    "MemoryMessageStream",
    "MemoryNetwork",
    "memory_pipe",
    "DEFAULT_QUEUE_FRAMES",
]

#: Anything the codec produces: a protocol message or the hello preamble.
Frame = "Message | Hello"

#: Default capacity (frames) of one direction of an in-memory pipe.
DEFAULT_QUEUE_FRAMES = 1024

#: Closed-pipe sentinel (queues cannot carry ``None`` ambiguously).
_EOF = b""


class FailureLatch:
    """First-failure latch shared by a cluster's background tasks.

    Connection handlers run as fire-and-forget tasks; without a latch their
    exceptions die with the task and a run hangs instead of failing.  Every
    handler records its first exception here, the cluster driver waits on
    :attr:`event` alongside the main run, and whichever fires first wins.

    ``on_trip`` (when given) runs exactly once, on the first recorded
    failure — the hook the flight recorder uses to dump its ring buffer at
    the moment of death rather than after teardown has torn the evidence
    down.  A hook failure is swallowed: crash reporting must never mask
    the crash.
    """

    def __init__(
        self,
        on_trip: Callable[[BaseException], None] | None = None,
    ) -> None:
        self._error: BaseException | None = None
        self._on_trip = on_trip
        self.event = asyncio.Event()

    @property
    def error(self) -> BaseException | None:
        """The first recorded exception, or ``None``."""
        return self._error

    def record(self, exc: BaseException) -> None:
        """Latch ``exc`` if nothing failed yet and wake any waiter."""
        first = self._error is None
        if first:
            self._error = exc
        self.event.set()
        if first and self._on_trip is not None:
            try:
                self._on_trip(exc)
            except Exception:
                pass


@dataclass(slots=True)
class StreamStats:
    """Frame/byte counters and stall time for one direction pair."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    #: Cumulative seconds this stream's sends spent suspended on
    #: backpressure (socket drain / full peer queue).
    send_stall_s: float = 0.0


class MessageStream(Protocol):
    """One bidirectional, ordered, reliable message pipe to a peer."""

    stats: StreamStats
    #: Trace context carried by the most recently received frame (or None).
    last_context: TraceContext | None

    async def send(self, message: "Message | Hello") -> None:
        """Encode and ship one message; awaits under backpressure."""
        ...

    async def send_many(self, messages) -> None:
        """Encode and ship several messages, coalescing transport work
        (one writev + one drain on TCP).  Framing is unchanged: the peer
        receives exactly the frames ``send`` would have produced."""
        ...

    async def recv(self) -> "Message | Hello | None":
        """Next decoded message, or ``None`` once the peer closed."""
        ...

    def send_backlog(self) -> int:
        """Data queued behind this stream's sends, in transport units."""
        ...

    async def close(self) -> None:
        """Close both directions; concurrent ``recv`` returns ``None``."""
        ...


#: Server-side callback: one invocation per accepted connection.
StreamHandler = Callable[["MessageStream"], Awaitable[None]]


def _encode(message: "Message | Hello") -> bytes:
    if isinstance(message, Hello):
        return encode_hello(message)
    # Stamp the sending task's ambient trace context (None = no extension
    # block, so untraced runs put zero extra bytes on the wire).
    return encode_frame(message, current_context())


# ----------------------------------------------------------------------
# TCP.
# ----------------------------------------------------------------------


class TcpMessageStream:
    """Length-prefix framing over one asyncio TCP connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._closed = False
        self.stats = StreamStats()
        self.last_context: TraceContext | None = None

    async def send(self, message: "Message | Hello") -> None:
        if self._closed:
            raise TransportError("send on closed TCP stream")
        data = _encode(message)
        try:
            self._writer.write(data)
            t0 = time.monotonic()
            await self._writer.drain()
            self.stats.send_stall_s += time.monotonic() - t0
        except (ConnectionError, RuntimeError) as exc:
            raise TransportError(f"TCP send failed: {exc}") from exc
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(data)

    async def send_many(self, messages) -> None:
        """Frame-coalesced send: all frames in one writelines, one drain."""
        if self._closed:
            raise TransportError("send on closed TCP stream")
        frames = [_encode(message) for message in messages]
        if not frames:
            return
        try:
            self._writer.writelines(frames)
            t0 = time.monotonic()
            await self._writer.drain()
            self.stats.send_stall_s += time.monotonic() - t0
        except (ConnectionError, RuntimeError) as exc:
            raise TransportError(f"TCP send failed: {exc}") from exc
        self.stats.messages_sent += len(frames)
        self.stats.bytes_sent += sum(len(data) for data in frames)

    def send_backlog(self) -> int:
        """Bytes sitting in the socket's write buffer."""
        try:
            return self._writer.transport.get_write_buffer_size()
        except Exception:
            return 0  # transport already torn down

    async def recv(self) -> "Message | Hello | None":
        try:
            prefix = await self._reader.readexactly(wire.LENGTH_PREFIX.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise TransportError(
                    f"connection died mid-frame ({len(exc.partial)} bytes "
                    "of length prefix)"
                ) from exc
            return None  # clean EOF between frames
        except ConnectionError:
            return None
        (length,) = wire.LENGTH_PREFIX.unpack(prefix)
        if length > wire.MAX_FRAME_BYTES:
            raise TransportError(
                f"peer announced a {length}-byte frame "
                f"(max {wire.MAX_FRAME_BYTES})"
            )
        try:
            body = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise TransportError(
                f"connection died mid-frame ({len(exc.partial)}/{length} "
                "payload bytes)"
            ) from exc
        self.stats.messages_received += 1
        self.stats.bytes_received += wire.LENGTH_PREFIX.size + length
        message, self.last_context = decode_body_traced(body)
        return message

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


class TcpNetwork:
    """Localhost TCP fabric: listeners by node id, dial by node id.

    Every node that accepts connections calls :meth:`listen` and gets an
    ephemeral port; :meth:`dial` looks the port up by node id.  All servers
    are torn down by :meth:`close`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        failures: FailureLatch | None = None,
    ) -> None:
        self._host = host
        self._failures = failures
        self._ports: dict[int, int] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._handlers: set[asyncio.Task] = set()

    async def listen(self, node_id: int, handler: StreamHandler) -> int:
        """Start accepting for ``node_id``; returns the bound port."""
        if node_id in self._ports:
            raise TransportError(f"node {node_id} is already listening")

        async def on_connect(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            # Track the connection task so close() can await it instead of
            # the loop teardown cancelling it mid-handshake.
            task = asyncio.current_task()
            if task is not None:
                self._handlers.add(task)
            stream = TcpMessageStream(reader, writer)
            try:
                await handler(stream)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                if self._failures is not None:
                    self._failures.record(exc)
                raise
            finally:
                await stream.close()
                if task is not None:
                    self._handlers.discard(task)

        server = await asyncio.start_server(on_connect, self._host, 0)
        port = server.sockets[0].getsockname()[1]
        self._ports[node_id] = port
        self._servers.append(server)
        return port

    async def dial(self, node_id: int) -> TcpMessageStream:
        """Connect to the listener registered for ``node_id``."""
        port = self._ports.get(node_id)
        if port is None:
            raise TransportError(f"no listener registered for node {node_id}")
        try:
            reader, writer = await asyncio.open_connection(self._host, port)
        except OSError as exc:
            raise TransportError(
                f"dial to node {node_id} ({self._host}:{port}) failed: {exc}"
            ) from exc
        return TcpMessageStream(reader, writer)

    async def close(self) -> None:
        """Stop all listeners and wait for their connection handlers."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._handlers:
            # Dialers have closed by now, so handlers are draining EOFs;
            # give stragglers a short deadline before cancelling.
            done, pending = await asyncio.wait(self._handlers, timeout=5.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._handlers.clear()
        self._servers.clear()
        self._ports.clear()


# ----------------------------------------------------------------------
# In-memory.
# ----------------------------------------------------------------------


@dataclass(slots=True)
class _Pipe:
    """One direction of an in-memory duplex: a bounded queue of frames."""

    queue: asyncio.Queue
    closed: bool = field(default=False)


class MemoryMessageStream:
    """One end of an in-memory duplex carrying encoded frames.

    Deterministic stand-in for a socket: same codec, same framing, but
    scheduling is purely the event loop's — no OS buffering, no ports.
    """

    def __init__(self, outgoing: _Pipe, incoming: _Pipe) -> None:
        self._out = outgoing
        self._in = incoming
        self.stats = StreamStats()
        self.last_context: TraceContext | None = None

    async def send(self, message: "Message | Hello") -> None:
        if self._out.closed:
            raise TransportError("send on closed memory stream")
        data = _encode(message)
        t0 = time.monotonic()
        await self._out.queue.put(data)
        self.stats.send_stall_s += time.monotonic() - t0
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(data)

    async def send_many(self, messages) -> None:
        """Sequential puts — frames stay individually queued; the method
        exists so callers can coalesce uniformly across transports."""
        for message in messages:
            await self.send(message)

    def send_backlog(self) -> int:
        """Frames waiting in the peer's inbox queue."""
        return self._out.queue.qsize()

    async def recv(self) -> "Message | Hello | None":
        data = await self._in.queue.get()
        if data == _EOF:
            # Propagate the sentinel so every pending/future recv sees EOF.
            await self._in.queue.put(_EOF)
            return None
        self.stats.messages_received += 1
        self.stats.bytes_received += len(data)
        message, self.last_context = decode_body_traced(
            memoryview(data)[wire.LENGTH_PREFIX.size:]
        )
        return message

    async def close(self) -> None:
        if not self._out.closed:
            self._out.closed = True
            await self._out.queue.put(_EOF)


def memory_pipe(
    max_frames: int = DEFAULT_QUEUE_FRAMES,
) -> tuple[MemoryMessageStream, MemoryMessageStream]:
    """A connected pair of in-memory message streams.

    ``max_frames`` bounds each direction; a sender blocks once its peer's
    inbox is full, mirroring TCP's flow control.
    """
    a_to_b = _Pipe(asyncio.Queue(maxsize=max_frames))
    b_to_a = _Pipe(asyncio.Queue(maxsize=max_frames))
    return (
        MemoryMessageStream(a_to_b, b_to_a),
        MemoryMessageStream(b_to_a, a_to_b),
    )


class MemoryNetwork:
    """In-memory fabric with the same listen/dial surface as TCP.

    ``dial`` hands the server's handler one end of a fresh pipe as a task
    and returns the other end, so server and client code are transport
    agnostic.
    """

    def __init__(
        self,
        max_frames: int = DEFAULT_QUEUE_FRAMES,
        failures: FailureLatch | None = None,
    ) -> None:
        self._max_frames = max_frames
        self._failures = failures
        self._handlers: dict[int, StreamHandler] = {}
        self._tasks: list[asyncio.Task] = []

    async def listen(self, node_id: int, handler: StreamHandler) -> int:
        if node_id in self._handlers:
            raise TransportError(f"node {node_id} is already listening")
        self._handlers[node_id] = handler
        return node_id  # port-shaped return for symmetry; unused

    async def dial(self, node_id: int) -> MemoryMessageStream:
        handler = self._handlers.get(node_id)
        if handler is None:
            raise TransportError(f"no listener registered for node {node_id}")
        client_end, server_end = memory_pipe(self._max_frames)

        async def serve() -> None:
            try:
                await handler(server_end)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                # A dead serve task used to vanish silently and hang the
                # run; record the failure so the cluster driver fails fast.
                if self._failures is not None:
                    self._failures.record(exc)
                raise
            finally:
                await server_end.close()

        self._tasks.append(asyncio.ensure_future(serve()))
        return client_end

    async def close(self) -> None:
        for task in self._tasks:
            if not task.done():
                task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # Recorded in the failure latch (if any) when it happened;
                # teardown must not let a re-raise mask the latched error.
                pass
        self._tasks.clear()
        self._handlers.clear()
