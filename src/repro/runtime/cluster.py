"""Cluster driver: a full live Dema topology as one coroutine.

:func:`run_live_cluster` launches the three-layer deployment — one
:class:`~repro.runtime.servers.RootServer`, ``n_locals``
:class:`~repro.runtime.servers.LocalServer` hosts and
``streams_per_local`` :class:`~repro.runtime.servers.StreamServer` replay
tasks per local — over either transport, replays the given per-local-node
workload, waits for every tumbling window of the grid to produce an
outcome, and tears everything down gracefully.

The quantile values a live run produces are **bit-identical** to
:class:`~repro.core.engine.DemaEngine` on the same workload (with a fixed
γ): watermark-driven sealing guarantees every event lands in its window,
and the operators on both substrates are literally the same objects.  The
equivalence test in ``tests/runtime`` pins this.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Mapping, Sequence

from repro.core.local_node import DemaLocalNode
from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode, WindowOutcome
from repro.errors import ConfigurationError, TransportError
from repro.faults.chaos import ChaosController
from repro.faults.plan import FaultEvent, FaultPlan, ToleranceConfig
from repro.network.metrics import LatencyStats
from repro.obs.live.config import TelemetryConfig
from repro.obs.live.http import TelemetryServer
from repro.obs.live.recorder import FlightRecorder
from repro.obs.live.sampler import RuntimeSampler
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Tracer
from repro.runtime.servers import (
    LIVE_OPS_PER_SECOND,
    LiveFabric,
    LocalServer,
    RootServer,
    StreamServer,
)
from repro.runtime.transport import (
    DEFAULT_QUEUE_FRAMES,
    FailureLatch,
    MemoryNetwork,
    MessageStream,
    TcpNetwork,
)
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event

__all__ = [
    "LiveClusterConfig",
    "LiveRunReport",
    "QueryDriverContext",
    "run_live_cluster",
    "run_live",
]

#: Root node id, matching the simulated topology's convention.
ROOT_NODE_ID = 0

#: Event timestamps are milliseconds; wall clock runs in seconds.
_MS_PER_SECOND = 1000.0


@dataclass(frozen=True, slots=True)
class LiveClusterConfig:
    """Shape and pacing of one live deployment.

    Attributes:
        n_locals: Local (edge) node count; ids ``1..n_locals``.
        streams_per_local: Replay tasks feeding each local node.
        query: The quantile query (fixed γ recommended for live runs).
        batch_size: Events per replayed batch (window splits still apply).
        transport: ``"memory"`` (deterministic, in-process) or ``"tcp"``
            (real localhost sockets).
        time_scale: Wall-clock seconds per second of event time.  ``1.0``
            replays in real time, ``0.0`` as fast as backpressure allows.
        queue_frames: Bound of each in-memory pipe direction.
        timeout_s: Overall deadline for the run; ``None`` waits forever.
        faults: Optional fault schedule injected while the run is live;
            event times scale to the wall clock by ``time_scale``.
        tolerance: Survival policy (heartbeats, reconnect backoff, the
            reliability timers).  Defaults to :class:`ToleranceConfig`
            whenever ``faults`` is given; without either, the cluster runs
            the original fail-fast path.
        telemetry: Live telemetry plane (wire-level trace context, the
            runtime sampler, the scrape endpoint, the flight recorder).
            ``None`` — the default — starts none of it and puts zero
            extra bytes on the wire; quantile results are bit-identical
            either way.
        durable_queries: Retain per-driver result logs at the root and
            replay them when a driver reconnects with a resume cursor,
            so a dropped query connection loses no results.  Only
            meaningful when a query driver is attached.
    """

    n_locals: int = 2
    streams_per_local: int = 2
    query: QuantileQuery = field(default_factory=QuantileQuery)
    batch_size: int = 512
    transport: str = "memory"
    time_scale: float = 0.0
    queue_frames: int = DEFAULT_QUEUE_FRAMES
    timeout_s: float | None = 60.0
    faults: FaultPlan | None = None
    tolerance: ToleranceConfig | None = None
    telemetry: TelemetryConfig | None = None
    durable_queries: bool = False

    def __post_init__(self) -> None:
        if self.n_locals < 1:
            raise ConfigurationError("need at least one local node")
        if self.streams_per_local < 1:
            raise ConfigurationError("need at least one stream per local")
        if self.transport not in ("memory", "tcp"):
            raise ConfigurationError(
                f"transport must be 'memory' or 'tcp', got {self.transport!r}"
            )
        if self.time_scale < 0:
            raise ConfigurationError(
                f"time_scale must be >= 0, got {self.time_scale}"
            )
        if self.faults is not None and self.time_scale <= 0:
            raise ConfigurationError(
                "fault injection needs time_scale > 0 — event-time fault "
                "schedules are meaningless at replay-as-fast-as-possible"
            )


@dataclass(frozen=True, slots=True)
class QueryDriverContext:
    """What a query-plane driver coroutine gets handed by the cluster.

    The driver runs alongside the cluster: it dials the root with the
    ``driver`` role (:meth:`dial`), registers queries before or during
    the replay, and decides when the event streams start flowing
    (:meth:`start_replay` — replays are gated until then so queries
    registered up front cover the whole grid).  Whatever dict the driver
    returns lands in :attr:`LiveRunReport.queries`.
    """

    grid_start: int
    grid_end: int
    config: "LiveClusterConfig"
    #: Dial the root as a driver client: ``await ctx.dial(client_id)``.
    dial: Callable[[int], Awaitable[MessageStream]]
    #: Open the replay gate; idempotent, called automatically when the
    #: driver coroutine finishes (so a failed driver cannot hang the run).
    start_replay: Callable[[], None]
    #: Total results the root plane has produced so far (all clients).
    #: Durable-session scenarios poll this while *disconnected* to know
    #: when the retained log holds the whole run.
    plane_results: Callable[[], int] = lambda: 0


@dataclass
class LiveRunReport:
    """Everything a caller needs from one live run."""

    outcomes: list[WindowOutcome]
    windows: int
    events_sent: int
    wall_seconds: float
    #: Watermark seal (last local) → root outcome, per completed window.
    seal_to_result: LatencyStats
    #: Bytes/messages on the wire, summed over every dialed stream
    #: (both directions), keyed by layer.
    bytes_by_layer: dict[str, int]
    messages_by_layer: dict[str, int]
    transport: str
    #: Fault-tolerance accounting (all zero on an undisturbed run).
    reconnects: int = 0
    heartbeat_misses: int = 0
    degraded_windows: int = 0
    locals_declared_dead: int = 0
    dropped_sends: int = 0
    windows_lost: int = 0
    #: Canonical descriptions of the fault events actually applied.
    fault_events: list[str] = field(default_factory=list)
    #: Telemetry-plane facts (empty when the plane was off): the bound
    #: HTTP port, sampler tick count, traced live spans, recorder path.
    telemetry: dict = field(default_factory=dict)
    #: Whatever dict the query-plane driver returned (empty without one).
    queries: dict = field(default_factory=dict)

    @property
    def values(self) -> list[float | None]:
        """Per-window quantile values in window order."""
        return [
            outcome.value
            for outcome in sorted(self.outcomes, key=lambda o: o.window)
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes across all layers and directions."""
        return sum(self.bytes_by_layer.values())

    @property
    def events_per_second(self) -> float:
        """Replay throughput on the wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_sent / self.wall_seconds


async def _drive_faults(
    controller: ChaosController,
    config: LiveClusterConfig,
    locals_by_id: Mapping[int, LocalServer],
    replays_by_local: Mapping[int, "list[asyncio.Task]"],
    epoch: float,
    root: RootServer,
    failures: FailureLatch,
    tracer: Tracer,
) -> None:
    """Fire the fault plan against the live cluster on the wall clock.

    Event times are event-time seconds; the driver scales them by the
    run's ``time_scale`` (one second of event time replays in
    ``time_scale`` wall seconds) so the same plan hits the same point of
    the stream on both substrates.
    """
    loop = asyncio.get_event_loop()
    plan = controller.plan
    never_restart = {
        node
        for node, intervals in plan.crash_intervals().items()
        if any(end is None for _, end in intervals)
    }
    try:
        for event in plan.schedule():
            deadline = epoch + event.at_s * config.time_scale
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            controller.record(event)
            now = root.fabric.now
            if tracer.enabled:
                tracer.record(
                    f"fault_{event.kind}",
                    ROOT_NODE_ID if event.node is None else event.node,
                    now, now,
                )
            await _apply_fault(
                event, controller, locals_by_id, replays_by_local,
                never_restart,
            )
    except asyncio.CancelledError:
        raise
    except BaseException as exc:
        failures.record(exc)


async def _apply_fault(
    event: FaultEvent,
    controller: ChaosController,
    locals_by_id: Mapping[int, LocalServer],
    replays_by_local: Mapping[int, "list[asyncio.Task]"],
    never_restart: "set[int]",
) -> None:
    if event.kind == "crash":
        controller.sever(event.node)
        await locals_by_id[event.node].crash()
        if event.node in never_restart:
            # Nothing will ever drain this local's pipes again; cancel its
            # feeds so the run can finish degraded instead of deadlocking
            # on a full queue.
            for task in replays_by_local.get(event.node, ()):
                task.cancel()
    elif event.kind == "restart":
        await locals_by_id[event.node].restart()
    elif event.kind == "drop_link":
        controller.sever(event.node)
    elif event.kind == "partition_start":
        controller.start_partition()
    elif event.kind == "partition_heal":
        controller.heal_partition()


def _cluster_summary(
    *,
    transport: str,
    expected_windows: int,
    root: RootServer,
    tracer: Tracer,
    dialed: Sequence[tuple[str, int, int, MessageStream]],
) -> dict:
    """The live per-node phase/queue digest served at ``/summary``.

    Built on demand from completed live spans and the dialed streams'
    counters — this is what ``python -m repro top`` renders.
    """
    nodes: dict[int, dict[str, dict]] = {}
    if isinstance(tracer, RecordingTracer):
        for span in tracer.spans:
            if not span.name.startswith("live_"):
                continue
            phases = nodes.setdefault(span.node_id, {})
            entry = phases.setdefault(
                span.name, {"count": 0, "seconds": 0.0}
            )
            entry["count"] += 1
            entry["seconds"] += span.duration
    links = []
    for layer, src, dst, stream in list(dialed):
        try:
            backlog = stream.send_backlog()
        except Exception:
            backlog = 0  # stream already torn down
        stats = stream.stats
        links.append({
            "layer": layer,
            "src": src,
            "dst": dst,
            "send_backlog": backlog,
            "send_stall_s": round(stats.send_stall_s, 6),
            "frames_sent": stats.messages_sent,
            "frames_received": stats.messages_received,
            "bytes_sent": stats.bytes_sent,
            "bytes_received": stats.bytes_received,
        })
    return {
        "transport": transport,
        "windows_expected": expected_windows,
        "windows_done": len(root.node.outcomes),
        "nodes": [
            {
                "node": node_id,
                "phases": {
                    name: {
                        "count": entry["count"],
                        "seconds": round(entry["seconds"], 6),
                    }
                    for name, entry in sorted(phases.items())
                },
            }
            for node_id, phases in sorted(nodes.items())
        ],
        "links": links,
    }


def _grid(
    streams: Mapping[int, Sequence[Event]], window_length_ms: int
) -> tuple[int, int]:
    """The tumbling-window grid ``[start, end)`` covering every event."""
    lo = hi = None
    for events in streams.values():
        if not len(events):
            continue
        if isinstance(events, EventColumns):
            # Columnar shares answer min/max off the timestamp array.
            share_lo = events.min_timestamp()
            share_hi = events.max_timestamp()
        else:
            share_lo = min(event.timestamp for event in events)
            share_hi = max(event.timestamp for event in events)
        lo = share_lo if lo is None else min(lo, share_lo)
        hi = share_hi if hi is None else max(hi, share_hi)
    if lo is None:
        raise ConfigurationError("live run needs at least one event")
    start = (lo // window_length_ms) * window_length_ms
    end = (hi // window_length_ms + 1) * window_length_ms
    return start, end


async def run_live_cluster(
    config: LiveClusterConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
    driver: Callable[
        [QueryDriverContext], Awaitable[dict | None]
    ] | None = None,
) -> LiveRunReport:
    """Run the full live topology over ``streams`` and collect the report.

    Args:
        config: Deployment shape, transport and pacing.
        streams: Per-**local-node** event streams (keys ``1..n_locals``),
            each in timestamp order; a local's stream is split round-robin
            over its stream servers exactly as the simulated engine does.
        tracer: Observability hooks; live message deliveries are recorded
            as protocol traces.
        driver: Optional query-plane driver coroutine.  When given, the
            cluster attaches a :class:`~repro.queries.root.RootQueryPlane`
            to the root and a :class:`~repro.queries.local.LocalQueryPlane`
            to every local, gates the replays on the driver's
            ``start_replay()`` call, and runs the driver alongside the
            cluster.

    Returns:
        The run report with per-window outcomes and wall-clock metrics.
    """
    local_ids = list(range(1, config.n_locals + 1))
    unknown = set(streams) - set(local_ids)
    if unknown:
        raise ConfigurationError(
            f"streams reference unknown local nodes {sorted(unknown)}"
        )
    length = config.query.window_length_ms
    if config.query.is_sliding:
        raise ConfigurationError("the live runtime seals tumbling grids only")
    grid_start, grid_end = _grid(streams, length)
    expected_windows = (grid_end - grid_start) // length

    tolerance = config.tolerance
    if tolerance is None and config.faults is not None:
        tolerance = ToleranceConfig()
    reliability = tolerance.reliability if tolerance is not None else None

    telemetry = config.telemetry
    if telemetry is not None and not tracer.enabled:
        # The plane needs somewhere to put spans and metrics; a caller who
        # asked for telemetry but passed no tracer gets a private one.
        tracer = RecordingTracer()
    wire_tracing = telemetry is not None
    recorder: FlightRecorder | None = None
    if telemetry is not None and telemetry.flight_recorder_path is not None:
        recorder = FlightRecorder(
            telemetry.flight_recorder_path,
            capacity=telemetry.flight_recorder_capacity,
        )
        if isinstance(tracer, RecordingTracer):
            tracer.on_record = recorder.record
    failures = FailureLatch(
        on_trip=recorder.on_failure if recorder is not None else None
    )
    sampler: RuntimeSampler | None = None
    if telemetry is not None and telemetry.sampler_interval_s > 0:
        sampler = RuntimeSampler(
            tracer.registry, interval_s=telemetry.sampler_interval_s
        )
    http_server: TelemetryServer | None = None

    controller = (
        ChaosController(config.faults) if config.faults is not None else None
    )

    query_plane = None
    local_planes: dict = {}
    replay_gate: asyncio.Event | None = None
    if driver is not None:
        # Imported lazily: the queries package's runner module imports
        # this module back, so a top-level import would be circular.
        from repro.queries.local import LocalQueryPlane
        from repro.queries.root import RootQueryPlane

        query_plane = RootQueryPlane(
            tuple(local_ids), tracer=tracer, durable=config.durable_queries
        )
        local_planes = {
            local_id: LocalQueryPlane(local_id, grid_start=grid_start)
            for local_id in local_ids
        }
        replay_gate = asyncio.Event()

    network = (
        TcpNetwork(failures=failures)
        if config.transport == "tcp"
        else MemoryNetwork(max_frames=config.queue_frames, failures=failures)
    )
    loop = asyncio.get_event_loop()
    epoch = loop.time()
    dialed: list[tuple[str, int, int, MessageStream]] = []
    locals_: list[LocalServer] = []
    locals_by_id: dict[int, LocalServer] = {}

    def track(layer: str, src: int, dst: int, stream: MessageStream) -> None:
        """Remember a dialed stream for accounting and the sampler."""
        dialed.append((layer, src, dst, stream))
        if sampler is not None:
            sampler.register_stream(stream, src=src, dst=dst)

    root = RootServer(
        DemaRootNode(
            ROOT_NODE_ID,
            local_ids=local_ids,
            query=config.query,
            ops_per_second=LIVE_OPS_PER_SECOND,
            reliability=reliability,
            degrade_after_retries=tolerance is not None,
        ),
        LiveFabric(epoch),
        expected_windows=expected_windows,
        tracer=tracer,
        tolerance=tolerance,
        failures=failures,
        wire_tracing=wire_tracing,
        echo_heartbeats=(
            telemetry.heartbeat_rtt if telemetry is not None else False
        ),
        query_plane=query_plane,
    )
    if query_plane is not None:
        # Plane spans share the cluster's fabric clock.
        query_plane.clock = lambda: root.fabric.now
    await network.listen(ROOT_NODE_ID, root.serve)
    root.start_monitor()

    replays: list[asyncio.Task] = []
    replays_by_local: dict[int, list[asyncio.Task]] = {}
    servers: list[StreamServer] = []
    chaos_task: asyncio.Task | None = None
    main_task: asyncio.Task | None = None
    failure_task: asyncio.Task | None = None
    driver_task: asyncio.Task | None = None
    driver_result: dict = {}
    try:
        if sampler is not None:
            sampler.start()
        if telemetry is not None and telemetry.http_port is not None:

            def live_spans():
                if isinstance(tracer, RecordingTracer):
                    return tracer.spans
                return []

            def summary() -> dict:
                return _cluster_summary(
                    transport=config.transport,
                    expected_windows=expected_windows,
                    root=root,
                    tracer=tracer,
                    dialed=dialed,
                )

            http_server = TelemetryServer(
                tracer.registry,
                host=telemetry.http_host,
                port=telemetry.http_port,
                spans=live_spans,
                summary=summary,
            )
            await http_server.start()
            if telemetry.announce is not None:
                telemetry.announce(http_server.port)

        next_stream_id = config.n_locals + 1
        for local_id in local_ids:

            def make_dial(lid: int):
                async def dial_root() -> MessageStream:
                    if controller is not None and not controller.dial_allowed(
                        lid
                    ):
                        raise TransportError(
                            f"chaos: local {lid} is partitioned from the root"
                        )
                    stream: MessageStream = await network.dial(ROOT_NODE_ID)
                    if controller is not None:
                        stream = controller.wrap(lid, stream)
                    track("local_root", lid, ROOT_NODE_ID, stream)
                    return stream

                return dial_root

            dial_root = make_dial(local_id)
            local = LocalServer(
                DemaLocalNode(
                    local_id,
                    root_id=ROOT_NODE_ID,
                    query=config.query,
                    ops_per_second=LIVE_OPS_PER_SECOND,
                    reliability=reliability,
                ),
                LiveFabric(epoch),
                expected_streams=config.streams_per_local,
                grid_start=grid_start,
                grid_end=grid_end,
                window_length_ms=length,
                tracer=tracer,
                tolerance=tolerance,
                dial_root=dial_root,
                failures=failures,
                wire_tracing=wire_tracing,
                sample_rate=(
                    telemetry.sample_rate if telemetry is not None else 1.0
                ),
                query_plane=local_planes.get(local_id),
            )
            locals_.append(local)
            locals_by_id[local_id] = local
            await network.listen(local_id, local.serve)
            await local.connect_root(await dial_root())

            share = streams.get(local_id, ())
            n_shards = config.streams_per_local
            if isinstance(share, EventColumns):
                # Strided views give exactly the round-robin assignment
                # (shard k takes events k, k+n, k+2n, …) without copying.
                shards: list[Sequence[Event]] = [
                    share[k::n_shards] for k in range(n_shards)
                ]
            else:
                shards = [[] for _ in range(n_shards)]
                for index, event in enumerate(share):
                    shards[index % n_shards].append(event)
            for shard in shards:
                server = StreamServer(
                    next_stream_id,
                    events=shard,
                    batch_size=config.batch_size,
                    grid_start=grid_start,
                    grid_end=grid_end,
                    window_length_ms=length,
                    time_scale=config.time_scale,
                    tracer=tracer,
                    wire_tracing=wire_tracing,
                    sample_rate=(
                        telemetry.sample_rate
                        if telemetry is not None
                        else 1.0
                    ),
                    epoch=epoch,
                )
                servers.append(server)
                next_stream_id += 1

                async def replay(srv: StreamServer, dst: int) -> None:
                    if replay_gate is not None:
                        # Queries registered before the streams flow cover
                        # the whole grid; the driver opens the gate.
                        await replay_gate.wait()
                    pipe = await network.dial(dst)
                    track("stream_local", srv.stream_id, dst, pipe)
                    await srv.replay(pipe)

                task = asyncio.ensure_future(replay(server, local_id))
                replays.append(task)
                replays_by_local.setdefault(local_id, []).append(task)

        if controller is not None:
            chaos_task = asyncio.ensure_future(
                _drive_faults(
                    controller, config, locals_by_id, replays_by_local,
                    epoch, root, failures, tracer,
                )
            )

        if driver is not None:
            assert replay_gate is not None
            gate = replay_gate

            async def dial_client(client_id: int) -> MessageStream:
                stream: MessageStream = await network.dial(ROOT_NODE_ID)
                track("driver_root", client_id, ROOT_NODE_ID, stream)
                return stream

            plane = query_plane

            context = QueryDriverContext(
                grid_start=grid_start,
                grid_end=grid_end,
                config=config,
                dial=dial_client,
                start_replay=gate.set,
                plane_results=lambda: plane.results_served,
            )

            async def run_driver() -> None:
                try:
                    result = await driver(context)
                    if isinstance(result, dict):
                        driver_result.update(result)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:
                    failures.record(exc)
                finally:
                    gate.set()  # a dead driver must not hang the replays

            driver_task = asyncio.ensure_future(run_driver())

        async def main() -> None:
            results = await asyncio.gather(*replays, return_exceptions=True)
            for result in results:
                if isinstance(result, asyncio.CancelledError):
                    continue  # a never-restarting crash cancels its feeds
                if isinstance(result, BaseException):
                    raise result
            await root.done.wait()
            if driver_task is not None:
                await driver_task

        main_task = asyncio.ensure_future(main())
        failure_task = asyncio.ensure_future(failures.event.wait())
        done, _ = await asyncio.wait(
            {main_task, failure_task},
            timeout=config.timeout_s,
            return_when=asyncio.FIRST_COMPLETED,
        )
        if failure_task in done and failures.error is not None:
            # A background task died (satellite fix: these used to vanish
            # silently and the run would hang until the deadline).
            raise TransportError(
                f"live cluster task failed: {failures.error!r}"
            ) from failures.error
        if main_task not in done:
            raise TransportError(
                f"live run did not complete {expected_windows} windows "
                f"within {config.timeout_s}s "
                f"({len(root.node.outcomes)} finished)"
            )
        main_task.result()  # propagate replay errors, if any
    finally:
        for task in (chaos_task, main_task, failure_task, driver_task):
            if task is not None and not task.done():
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        for task in replays:
            if not task.done():
                task.cancel()
        await root.stop_monitor()
        for local in locals_:
            await local.shutdown()
        for _, _, _, stream in dialed:
            with contextlib.suppress(TransportError):
                await stream.close()
        await network.close()
        if http_server is not None:
            await http_server.stop()
        if sampler is not None:
            await sampler.stop()

    wall_seconds = loop.time() - epoch
    outcomes = root.node.outcomes
    seal_to_result = LatencyStats()
    for outcome in outcomes:
        sealed = max(
            (
                local.seal_walls.get(outcome.window, 0.0)
                for local in locals_
            ),
            default=0.0,
        )
        finished = root.result_walls.get(outcome.window)
        if finished is not None:
            seal_to_result.add(max(0.0, finished - sealed))

    bytes_by_layer: dict[str, int] = {}
    messages_by_layer: dict[str, int] = {}
    for layer, src, dst, stream in dialed:
        stats = stream.stats
        bytes_by_layer[layer] = (
            bytes_by_layer.get(layer, 0)
            + stats.bytes_sent
            + stats.bytes_received
        )
        messages_by_layer[layer] = (
            messages_by_layer.get(layer, 0)
            + stats.messages_sent
            + stats.messages_received
        )
        if tracer.enabled:
            tracer.record_link(
                src, dst,
                bytes=stats.bytes_sent, messages=stats.messages_sent,
            )
            tracer.record_link(
                dst, src,
                bytes=stats.bytes_received, messages=stats.messages_received,
            )

    reconnects = sum(local.reconnects for local in locals_)
    dropped_sends = root.dropped_sends + sum(
        local.dropped_sends for local in locals_
    )
    degraded = root.node.degraded_windows
    if tracer.enabled and tolerance is not None:
        tracer.registry.gauge(
            "degraded_windows",
            "Windows answered from a strict subset of the locals.",
        ).set(float(degraded))
        tracer.registry.gauge(
            "dropped_sends",
            "Messages dropped at severed or unroutable links.",
        ).set(float(dropped_sends))

    telemetry_report: dict = {}
    if telemetry is not None:
        traced_live = 0
        if isinstance(tracer, RecordingTracer):
            traced_live = sum(
                1 for span in tracer.spans if span.name.startswith("live_")
            )
        telemetry_report = {
            "http_port": (
                http_server.port if http_server is not None else None
            ),
            "sampler_samples": sampler.samples if sampler is not None else 0,
            "traced_live_spans": traced_live,
            "flight_recorder": (
                str(recorder.path) if recorder is not None else None
            ),
            "flight_recorder_dumped": (
                recorder.dumped if recorder is not None else False
            ),
        }

    return LiveRunReport(
        outcomes=outcomes,
        windows=expected_windows,
        events_sent=sum(server.events_sent for server in servers),
        wall_seconds=wall_seconds,
        seal_to_result=seal_to_result,
        bytes_by_layer=bytes_by_layer,
        messages_by_layer=messages_by_layer,
        transport=config.transport,
        reconnects=reconnects,
        heartbeat_misses=root.heartbeat_misses,
        degraded_windows=degraded,
        locals_declared_dead=root.locals_declared_dead,
        dropped_sends=dropped_sends,
        windows_lost=max(0, expected_windows - len(outcomes)),
        fault_events=list(controller.applied) if controller else [],
        telemetry=telemetry_report,
        queries=driver_result,
    )


def run_live(
    config: LiveClusterConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
    driver: Callable[
        [QueryDriverContext], Awaitable[dict | None]
    ] | None = None,
) -> LiveRunReport:
    """Synchronous wrapper around :func:`run_live_cluster`."""
    return asyncio.run(
        run_live_cluster(config, streams, tracer=tracer, driver=driver)
    )
