"""Cluster driver: a full live Dema topology as one coroutine.

:func:`run_live_cluster` launches the three-layer deployment — one
:class:`~repro.runtime.servers.RootServer`, ``n_locals``
:class:`~repro.runtime.servers.LocalServer` hosts and
``streams_per_local`` :class:`~repro.runtime.servers.StreamServer` replay
tasks per local — over either transport, replays the given per-local-node
workload, waits for every tumbling window of the grid to produce an
outcome, and tears everything down gracefully.

The quantile values a live run produces are **bit-identical** to
:class:`~repro.core.engine.DemaEngine` on the same workload (with a fixed
γ): watermark-driven sealing guarantees every event lands in its window,
and the operators on both substrates are literally the same objects.  The
equivalence test in ``tests/runtime`` pins this.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.local_node import DemaLocalNode
from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode, WindowOutcome
from repro.errors import ConfigurationError, TransportError
from repro.network.metrics import LatencyStats
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.runtime.servers import (
    LIVE_OPS_PER_SECOND,
    LiveFabric,
    LocalServer,
    RootServer,
    StreamServer,
)
from repro.runtime.transport import (
    DEFAULT_QUEUE_FRAMES,
    MemoryNetwork,
    MessageStream,
    TcpNetwork,
)
from repro.streaming.events import Event

__all__ = ["LiveClusterConfig", "LiveRunReport", "run_live_cluster", "run_live"]

#: Root node id, matching the simulated topology's convention.
ROOT_NODE_ID = 0

#: Event timestamps are milliseconds; wall clock runs in seconds.
_MS_PER_SECOND = 1000.0


@dataclass(frozen=True, slots=True)
class LiveClusterConfig:
    """Shape and pacing of one live deployment.

    Attributes:
        n_locals: Local (edge) node count; ids ``1..n_locals``.
        streams_per_local: Replay tasks feeding each local node.
        query: The quantile query (fixed γ recommended for live runs).
        batch_size: Events per replayed batch (window splits still apply).
        transport: ``"memory"`` (deterministic, in-process) or ``"tcp"``
            (real localhost sockets).
        time_scale: Wall-clock seconds per second of event time.  ``1.0``
            replays in real time, ``0.0`` as fast as backpressure allows.
        queue_frames: Bound of each in-memory pipe direction.
        timeout_s: Overall deadline for the run; ``None`` waits forever.
    """

    n_locals: int = 2
    streams_per_local: int = 2
    query: QuantileQuery = field(default_factory=QuantileQuery)
    batch_size: int = 512
    transport: str = "memory"
    time_scale: float = 0.0
    queue_frames: int = DEFAULT_QUEUE_FRAMES
    timeout_s: float | None = 60.0

    def __post_init__(self) -> None:
        if self.n_locals < 1:
            raise ConfigurationError("need at least one local node")
        if self.streams_per_local < 1:
            raise ConfigurationError("need at least one stream per local")
        if self.transport not in ("memory", "tcp"):
            raise ConfigurationError(
                f"transport must be 'memory' or 'tcp', got {self.transport!r}"
            )
        if self.time_scale < 0:
            raise ConfigurationError(
                f"time_scale must be >= 0, got {self.time_scale}"
            )


@dataclass
class LiveRunReport:
    """Everything a caller needs from one live run."""

    outcomes: list[WindowOutcome]
    windows: int
    events_sent: int
    wall_seconds: float
    #: Watermark seal (last local) → root outcome, per completed window.
    seal_to_result: LatencyStats
    #: Bytes/messages on the wire, summed over every dialed stream
    #: (both directions), keyed by layer.
    bytes_by_layer: dict[str, int]
    messages_by_layer: dict[str, int]
    transport: str

    @property
    def values(self) -> list[float | None]:
        """Per-window quantile values in window order."""
        return [
            outcome.value
            for outcome in sorted(self.outcomes, key=lambda o: o.window)
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes across all layers and directions."""
        return sum(self.bytes_by_layer.values())

    @property
    def events_per_second(self) -> float:
        """Replay throughput on the wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_sent / self.wall_seconds


def _grid(
    streams: Mapping[int, Sequence[Event]], window_length_ms: int
) -> tuple[int, int]:
    """The tumbling-window grid ``[start, end)`` covering every event."""
    timestamps = [
        event.timestamp
        for events in streams.values()
        for event in events
    ]
    if not timestamps:
        raise ConfigurationError("live run needs at least one event")
    lo, hi = min(timestamps), max(timestamps)
    start = (lo // window_length_ms) * window_length_ms
    end = (hi // window_length_ms + 1) * window_length_ms
    return start, end


async def run_live_cluster(
    config: LiveClusterConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
) -> LiveRunReport:
    """Run the full live topology over ``streams`` and collect the report.

    Args:
        config: Deployment shape, transport and pacing.
        streams: Per-**local-node** event streams (keys ``1..n_locals``),
            each in timestamp order; a local's stream is split round-robin
            over its stream servers exactly as the simulated engine does.
        tracer: Observability hooks; live message deliveries are recorded
            as protocol traces.

    Returns:
        The run report with per-window outcomes and wall-clock metrics.
    """
    local_ids = list(range(1, config.n_locals + 1))
    unknown = set(streams) - set(local_ids)
    if unknown:
        raise ConfigurationError(
            f"streams reference unknown local nodes {sorted(unknown)}"
        )
    length = config.query.window_length_ms
    if config.query.is_sliding:
        raise ConfigurationError("the live runtime seals tumbling grids only")
    grid_start, grid_end = _grid(streams, length)
    expected_windows = (grid_end - grid_start) // length

    network = (
        TcpNetwork()
        if config.transport == "tcp"
        else MemoryNetwork(max_frames=config.queue_frames)
    )
    loop = asyncio.get_event_loop()
    epoch = loop.time()
    dialed: list[tuple[str, int, int, MessageStream]] = []
    locals_: list[LocalServer] = []

    root = RootServer(
        DemaRootNode(
            ROOT_NODE_ID,
            local_ids=local_ids,
            query=config.query,
            ops_per_second=LIVE_OPS_PER_SECOND,
        ),
        LiveFabric(epoch),
        expected_windows=expected_windows,
        tracer=tracer,
    )
    await network.listen(ROOT_NODE_ID, root.serve)

    replays: list[asyncio.Task] = []
    servers: list[StreamServer] = []
    try:
        next_stream_id = config.n_locals + 1
        for local_id in local_ids:
            local = LocalServer(
                DemaLocalNode(
                    local_id,
                    root_id=ROOT_NODE_ID,
                    query=config.query,
                    ops_per_second=LIVE_OPS_PER_SECOND,
                ),
                LiveFabric(epoch),
                expected_streams=config.streams_per_local,
                grid_start=grid_start,
                grid_end=grid_end,
                window_length_ms=length,
                tracer=tracer,
            )
            locals_.append(local)
            await network.listen(local_id, local.serve)
            root_stream = await network.dial(ROOT_NODE_ID)
            dialed.append(("local_root", local_id, ROOT_NODE_ID, root_stream))
            await local.connect_root(root_stream)

            share = list(streams.get(local_id, ()))
            shards: list[list[Event]] = [
                [] for _ in range(config.streams_per_local)
            ]
            for index, event in enumerate(share):
                shards[index % config.streams_per_local].append(event)
            for shard in shards:
                server = StreamServer(
                    next_stream_id,
                    events=shard,
                    batch_size=config.batch_size,
                    grid_start=grid_start,
                    grid_end=grid_end,
                    window_length_ms=length,
                    time_scale=config.time_scale,
                )
                servers.append(server)
                next_stream_id += 1

                async def replay(srv: StreamServer, dst: int) -> None:
                    pipe = await network.dial(dst)
                    dialed.append(("stream_local", srv.stream_id, dst, pipe))
                    await srv.replay(pipe)

                replays.append(
                    asyncio.ensure_future(replay(server, local_id))
                )

        await asyncio.gather(*replays)
        await asyncio.wait_for(root.done.wait(), config.timeout_s)
    except asyncio.TimeoutError:
        raise TransportError(
            f"live run did not complete {expected_windows} windows within "
            f"{config.timeout_s}s ({len(root.node.outcomes)} finished)"
        ) from None
    finally:
        for task in replays:
            if not task.done():
                task.cancel()
        for local in locals_:
            await local.shutdown()
        for _, _, _, stream in dialed:
            await stream.close()
        await network.close()

    wall_seconds = loop.time() - epoch
    outcomes = root.node.outcomes
    seal_to_result = LatencyStats()
    for outcome in outcomes:
        sealed = max(
            (
                local.seal_walls.get(outcome.window, 0.0)
                for local in locals_
            ),
            default=0.0,
        )
        finished = root.result_walls.get(outcome.window)
        if finished is not None:
            seal_to_result.add(max(0.0, finished - sealed))

    bytes_by_layer: dict[str, int] = {}
    messages_by_layer: dict[str, int] = {}
    for layer, src, dst, stream in dialed:
        stats = stream.stats
        bytes_by_layer[layer] = (
            bytes_by_layer.get(layer, 0)
            + stats.bytes_sent
            + stats.bytes_received
        )
        messages_by_layer[layer] = (
            messages_by_layer.get(layer, 0)
            + stats.messages_sent
            + stats.messages_received
        )
        if tracer.enabled:
            tracer.record_link(
                src, dst,
                bytes=stats.bytes_sent, messages=stats.messages_sent,
            )
            tracer.record_link(
                dst, src,
                bytes=stats.bytes_received, messages=stats.messages_received,
            )

    return LiveRunReport(
        outcomes=outcomes,
        windows=expected_windows,
        events_sent=sum(server.events_sent for server in servers),
        wall_seconds=wall_seconds,
        seal_to_result=seal_to_result,
        bytes_by_layer=bytes_by_layer,
        messages_by_layer=messages_by_layer,
        transport=config.transport,
    )


def run_live(
    config: LiveClusterConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer: Tracer = NOOP_TRACER,
) -> LiveRunReport:
    """Synchronous wrapper around :func:`run_live_cluster`."""
    return asyncio.run(
        run_live_cluster(config, streams, tracer=tracer)
    )
