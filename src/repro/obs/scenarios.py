"""Named, traced scenarios for ``python -m repro trace``.

Each scenario deploys a small but complete Dema run with a
:class:`~repro.obs.tracer.RecordingTracer` attached, so the CLI can emit a
trace without the user writing harness code.  Scenarios are deliberately
tiny — a handful of windows on two or three local nodes — because their
purpose is lifecycle inspection, not measurement; the benchmark harness
remains the tool for figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.tracer import RecordingTracer

__all__ = ["ScenarioResult", "SCENARIOS", "run_scenario"]


@dataclass
class ScenarioResult:
    """A completed traced run, ready for export and reporting."""

    name: str
    description: str
    tracer: RecordingTracer
    report: object  # DemaRunReport; typed loosely to keep imports light


def _quickstart(tracer: RecordingTracer, seed: int):
    """Two local nodes, fixed γ, four tumbling windows of generated data."""
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.engine import DemaEngine
    from repro.core.query import QuantileQuery
    from repro.network.topology import TopologyConfig

    query = QuantileQuery(q=0.5, gamma=16)
    engine = DemaEngine(
        query, TopologyConfig(n_local_nodes=2), tracer=tracer
    )
    streams = workload(
        [1, 2],
        GeneratorConfig(event_rate=1_000.0, duration_s=4.0, seed=seed),
    )
    return engine.run(streams)


def _adaptive(tracer: RecordingTracer, seed: int):
    """Adaptive γ on three locals: watch GammaUpdate traffic appear."""
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.engine import DemaEngine
    from repro.core.query import QuantileQuery
    from repro.network.topology import TopologyConfig

    query = QuantileQuery(q=0.5, gamma=4, adaptive=True)
    engine = DemaEngine(
        query, TopologyConfig(n_local_nodes=3), tracer=tracer
    )
    streams = workload(
        [1, 2, 3],
        GeneratorConfig(event_rate=800.0, duration_s=5.0, seed=seed),
    )
    return engine.run(streams)


def _lossy(tracer: RecordingTracer, seed: int):
    """Lossy links + reliability: retransmits and LOST messages on the
    timeline."""
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.engine import DemaEngine
    from repro.core.query import QuantileQuery
    from repro.core.reliability import ReliabilityConfig
    from repro.network.topology import TopologyConfig

    query = QuantileQuery(q=0.5, gamma=8)
    engine = DemaEngine(
        query,
        TopologyConfig(n_local_nodes=2, loss_rate=0.25, loss_seed=seed),
        reliability=ReliabilityConfig(timeout_s=0.05, max_retries=20),
        tracer=tracer,
    )
    streams = workload(
        [1, 2],
        GeneratorConfig(event_rate=500.0, duration_s=3.0, seed=seed),
    )
    return engine.run(streams)


def _sensors(tracer: RecordingTracer, seed: int):
    """Full three-tier deployment: sensor → local → root, every hop paid."""
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.engine import DemaEngine
    from repro.core.query import QuantileQuery
    from repro.network.topology import TopologyConfig

    query = QuantileQuery(q=0.5, gamma=8)
    engine = DemaEngine(
        query,
        TopologyConfig(n_local_nodes=2, streams_per_local=2),
        tracer=tracer,
    )
    streams = workload(
        [1, 2],
        GeneratorConfig(event_rate=600.0, duration_s=3.0, seed=seed),
    )
    return engine.run_via_sensors(streams)


#: Scenario name → (description, runner).
SCENARIOS: dict[str, tuple[str, Callable]] = {
    "quickstart": (
        "2 local nodes, fixed γ=16, 4 windows of 1 kHz data", _quickstart
    ),
    "adaptive": (
        "3 local nodes, adaptive γ from 4, 5 windows", _adaptive
    ),
    "lossy": (
        "25% loss with reliability retries, 2 locals, 3 windows", _lossy
    ),
    "sensors": (
        "three-tier topology: 2 sensors per local, 2 locals", _sensors
    ),
}


def run_scenario(name: str, *, seed: int = 42) -> ScenarioResult:
    """Run one named scenario under a fresh recording tracer.

    Raises:
        ConfigurationError: On an unknown scenario name.
    """
    try:
        description, runner = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None
    tracer = RecordingTracer()
    report = runner(tracer, seed)
    return ScenarioResult(
        name=name, description=description, tracer=tracer, report=report
    )
