"""Observability event model: everything a run can put on one timeline.

Two record kinds share the simulated-clock timeline:

* :class:`MessageTrace` — one routed message, observed by the simulator's
  trace hook at the moment it leaves its source channel.  This class
  originated in :mod:`repro.network.simulator`; it now lives here so that
  message-level and span-level views are one event model (the old import
  path remains valid as a deprecated alias).
* :class:`~repro.obs.tracer.Span` — one named phase of work on one node
  (defined next to the tracer that records it).

Both serialize to the same JSONL stream (see :mod:`repro.obs.export`), so a
single trace file interleaves protocol traffic with the compute phases it
triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a cycle with
    # repro.network.simulator, which imports this module at runtime.
    from repro.network.messages import Message

__all__ = ["MessageTrace", "message_to_dict"]


@dataclass(frozen=True, slots=True)
class MessageTrace:
    """One routed message, as observed by a simulator trace hook.

    ``delivered_at`` is ``None`` for messages lost on a lossy channel.
    """

    sent_at: float
    delivered_at: float | None
    src: int
    dst: int
    message: Message

    def describe(self) -> str:
        """One protocol-trace line (used by the debugging example)."""
        kind = type(self.message).__name__.removesuffix("Message")
        status = (
            "LOST"
            if self.delivered_at is None
            else f"{(self.delivered_at - self.sent_at) * 1e6:7.1f} µs"
        )
        return (
            f"t={self.sent_at * 1e3:9.3f} ms  {self.src} → {self.dst}  "
            f"{kind:<16} {self.message.wire_bytes:>6} B  {status}"
        )


def message_to_dict(trace: MessageTrace) -> dict:
    """Flatten one message observation for JSONL export."""
    events = getattr(trace.message, "events", None)
    record = {
        "kind": "message",
        "type": type(trace.message).__name__,
        "src": trace.src,
        "dst": trace.dst,
        "sent": trace.sent_at,
        "delivered": trace.delivered_at,
        "bytes": trace.message.wire_bytes,
        "events": len(events) if events is not None else 0,
        "window": [trace.message.window.start, trace.message.window.end],
    }
    # Slice identity (where the message carries one) lets the report tell
    # a retransmit of the same payload apart from a new request.
    slice_index = getattr(trace.message, "slice_index", None)
    if slice_index is not None:
        record["slice"] = slice_index
    slice_indices = getattr(trace.message, "slice_indices", None)
    if slice_indices is not None:
        record["slices"] = list(slice_indices)
    return record
