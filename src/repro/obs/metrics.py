"""Metrics registry: counters, gauges and histograms with text rendering.

The registry follows the Prometheus data model — named metric families,
instruments distinguished by label sets, histograms with cumulative-bucket
rendering — but stays dependency-free and in-process: simulations are
single-threaded and deterministic, so there is no locking and no clock.
Every instrument is get-or-create, so instrumentation sites can call
``registry.counter("bytes_total", type="SynopsisMessage").inc(n)`` without
registration ceremony.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, sized for simulated-seconds span durations
#: (100 µs discrete-event latencies up to multi-second backlogs).
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition: backslash, double-quote and newline are
    # the three characters that must be escaped inside a label value.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter.

        Raises:
            ConfigurationError: On a negative increment.
        """
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self._value += amount


class Gauge:
    """A value that can go up and down (utilization, queue depth)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self._value += amount


class Histogram:
    """A distribution with fixed upper-bound buckets.

    Buckets are stored per-interval and rendered cumulatively (the
    Prometheus convention, including the implicit ``+Inf`` bucket).
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_inf", "_sum", "_count")

    def __init__(
        self, name: str, labels: _LabelKey, buckets: tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name} needs ascending, non-empty buckets"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * len(self.buckets)
        self._inf = 0
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._inf += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self._inf))
        return pairs

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        target = max(1, math.ceil(q * self._count))
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            if running >= target:
                return bound
        return math.inf


class MetricsRegistry:
    """Keeps every instrument of one run; renders Prometheus text format."""

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._families: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._instruments: dict[tuple[str, _LabelKey], object] = {}

    def _get(
        self, kind: str, name: str, help_: str, labels: Mapping[str, str],
        buckets: tuple[float, ...] | None = None,
    ):
        family = self._families.get(name)
        if family is None:
            self._families[name] = kind
            self._help[name] = help_
        elif family != kind:
            raise ConfigurationError(
                f"metric {name} already registered as a {family}"
            )
        elif help_ and not self._help[name]:
            self._help[name] = help_
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if kind == "histogram":
                instrument = Histogram(name, key[1], buckets or DEFAULT_BUCKETS)
            else:
                instrument = self._TYPES[kind](name, key[1])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help_: str = "", **labels: str) -> Counter:
        """Get or create a counter for this name + label set."""
        return self._get("counter", name, help_, labels)

    def gauge(self, name: str, help_: str = "", **labels: str) -> Gauge:
        """Get or create a gauge for this name + label set."""
        return self._get("gauge", name, help_, labels)

    def histogram(
        self,
        name: str,
        help_: str = "",
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        """Get or create a histogram for this name + label set."""
        return self._get("histogram", name, help_, labels, buckets)

    def instruments(self) -> Iterator[object]:
        """All instruments, grouped by family name then label set."""
        for key in sorted(self._instruments, key=lambda k: (k[0], k[1])):
            yield self._instruments[key]

    def value(self, name: str, **labels: str) -> float:
        """Read one counter/gauge value; 0.0 if never touched.

        Raises:
            ConfigurationError: If ``name`` names a histogram family.
        """
        if self._families.get(name) == "histogram":
            raise ConfigurationError(
                f"metric {name} is a histogram; read it via its instrument"
            )
        instrument = self._instruments.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        seen_families: set[str] = set()
        for instrument in self.instruments():
            name = instrument.name  # type: ignore[attr-defined]
            if name not in seen_families:
                seen_families.add(name)
                help_ = self._help.get(name, "")
                if help_:
                    lines.append(f"# HELP {name} {help_}")
                lines.append(f"# TYPE {name} {self._families[name]}")
            if isinstance(instrument, Histogram):
                for bound, count in instrument.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    labels = _render_labels(instrument.labels, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {count}")
                labels = _render_labels(instrument.labels)
                lines.append(f"{name}_sum{labels} {instrument.sum}")
                lines.append(f"{name}_count{labels} {instrument.count}")
            else:
                labels = _render_labels(instrument.labels)  # type: ignore[attr-defined]
                value = instrument.value  # type: ignore[attr-defined]
                lines.append(f"{name}{labels} {_format_number(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
