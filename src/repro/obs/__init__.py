"""Unified observability: protocol tracing, metrics, exporters.

The paper's evaluation (§4) reasons in per-node network cost, per-window
latency and per-phase CPU work; this subpackage makes all three visible
*inside* a run instead of as end-of-run snapshots:

* :mod:`repro.obs.tracer` — span-based tracing of the Dema window
  lifecycle (ingest → slice → synopsis → identification → candidate fetch →
  calculation → result) on the simulated clock.  A no-op tracer is the
  default everywhere, so disabled runs pay nothing.
* :mod:`repro.obs.events` — the shared timeline event model; the home of
  :class:`MessageTrace` (formerly in :mod:`repro.network.simulator`).
* :mod:`repro.obs.metrics` — a Prometheus-style registry of counters,
  gauges and histograms, fed live by the recording tracer.
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event`` and Prometheus
  text renderings of a traced run.
* :mod:`repro.obs.report` — per-phase latency/byte breakdown tables
  (``python -m repro report``).
* :mod:`repro.obs.scenarios` — small named deployments for
  ``python -m repro trace``.

Attach a tracer by passing it to any engine::

    from repro import DemaEngine, QuantileQuery, TopologyConfig
    from repro.obs import RecordingTracer
    from repro.obs.export import write_chrome_trace

    tracer = RecordingTracer()
    engine = DemaEngine(QuantileQuery(q=0.5, gamma=16),
                        TopologyConfig(n_local_nodes=2), tracer=tracer)
    engine.run(streams)
    write_chrome_trace("run.json", tracer)   # open in chrome://tracing
    print(tracer.registry.render_prometheus())
"""

from repro.obs.events import MessageTrace, message_to_dict
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NOOP_TRACER,
    RecordingTracer,
    Span,
    Tracer,
    span_to_dict,
)
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.report import (
    MessageSummary,
    PhaseSummary,
    WindowBreakdown,
    format_report,
    message_summary,
    phase_summary,
    window_breakdown,
)

__all__ = [
    "MessageTrace",
    "message_to_dict",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "RecordingTracer",
    "Span",
    "Tracer",
    "span_to_dict",
    "chrome_trace",
    "read_jsonl",
    "trace_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "MessageSummary",
    "PhaseSummary",
    "WindowBreakdown",
    "format_report",
    "message_summary",
    "phase_summary",
    "window_breakdown",
]
