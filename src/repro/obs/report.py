"""Per-phase breakdown of a traced run.

Consumes the record dicts produced by :mod:`repro.obs.export` (either fresh
from a :class:`~repro.obs.tracer.RecordingTracer` or read back from JSONL)
and answers the questions the paper's evaluation asks per figure: where did
the time inside each window go, and which message types carried the bytes.

The window accounting leans on the tracer's span nesting: the root's
``window`` span covers a window's full end-to-end latency, and its child
phase spans (``synopsis_wait`` → ``identification`` → ``candidate_fetch`` →
``calculation``) partition that interval, so per-window phase durations sum
to the reported latency — :func:`window_breakdown` checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "PhaseSummary",
    "MessageSummary",
    "WindowBreakdown",
    "LinkReliability",
    "QueryLatency",
    "phase_summary",
    "message_summary",
    "window_breakdown",
    "query_breakdown",
    "reliability_summary",
    "format_report",
]

#: Message types whose identical identity keys recur by design (streaming
#: batches, watermarks, liveness probes) — never counted as retransmits.
_STREAMING_TYPES = frozenset({
    "EventBatchMessage",
    "SortedRunMessage",
    "WatermarkMessage",
    "HeartbeatMessage",
})

#: Windows whose phase sum differs from the end-to-end span by more than
#: this (simulated seconds) are flagged in the report.
_SUM_TOLERANCE_S = 1e-9


@dataclass(slots=True)
class PhaseSummary:
    """Aggregate statistics for one span phase across a trace."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean span duration; 0.0 with no spans."""
        return self.total_s / self.count if self.count else 0.0


@dataclass(slots=True)
class MessageSummary:
    """Aggregate statistics for one message type across a trace."""

    type: str
    count: int = 0
    bytes: int = 0
    events: int = 0
    lost: int = 0


@dataclass(slots=True)
class WindowBreakdown:
    """One global window's phase partition of its end-to-end latency."""

    window: tuple[int, int]
    node_id: int
    end_to_end_s: float
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def phase_sum_s(self) -> float:
        """Summed child-phase durations."""
        return sum(self.phases.values())

    @property
    def is_consistent(self) -> bool:
        """Whether the phases partition the end-to-end interval.

        Vacuously true when no child phases were recorded (baseline
        systems emit the end-to-end ``window`` span without a phase
        partition).
        """
        if not self.phases:
            return True
        return abs(self.phase_sum_s - self.end_to_end_s) <= _SUM_TOLERANCE_S


def phase_summary(records: Iterable[dict]) -> list[PhaseSummary]:
    """Per-phase span statistics, ordered by total time descending.

    Ties break on the phase name so the report is deterministic — byte
    totals frequently tie (equal-sized frames), and a report that is
    diffed in CI must not depend on dict insertion order.
    """
    by_name: dict[str, PhaseSummary] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        summary = by_name.setdefault(record["name"], PhaseSummary(record["name"]))
        duration = record["end"] - record["start"]
        summary.count += 1
        summary.total_s += duration
        summary.max_s = max(summary.max_s, duration)
    return sorted(by_name.values(), key=lambda s: (-s.total_s, s.name))


def message_summary(records: Iterable[dict]) -> list[MessageSummary]:
    """Per-message-type traffic statistics, ordered by bytes descending.

    Ties break on the type name so two runs of the same workload render
    byte-identical reports.
    """
    by_type: dict[str, MessageSummary] = {}
    for record in records:
        if record.get("kind") != "message":
            continue
        summary = by_type.setdefault(
            record["type"], MessageSummary(record["type"])
        )
        summary.count += 1
        summary.bytes += record["bytes"]
        summary.events += record["events"]
        if record["delivered"] is None:
            summary.lost += 1
    return sorted(by_type.values(), key=lambda s: (-s.bytes, s.type))


@dataclass(slots=True)
class LinkReliability:
    """Loss and retransmission statistics for one directed link."""

    src: int
    dst: int
    sent: int = 0
    dropped: int = 0
    retransmits: int = 0


def reliability_summary(records: Iterable[dict]) -> list[LinkReliability]:
    """Per-link drop and retransmit counts from message records.

    A *drop* is a message with no delivery time (the channel lost it); a
    *retransmit* is a repeat of a protocol message with an identity —
    (type, src, dst, window, slice) — already seen on that link.  Streaming
    message types recur by design and are excluded from retransmit
    counting.
    """
    by_link: dict[tuple[int, int], LinkReliability] = {}
    seen: set[tuple] = set()
    for record in records:
        if record.get("kind") != "message":
            continue
        link = by_link.setdefault(
            (record["src"], record["dst"]),
            LinkReliability(record["src"], record["dst"]),
        )
        link.sent += 1
        if record["delivered"] is None:
            link.dropped += 1
        if record["type"] in _STREAMING_TYPES:
            continue
        key = (
            record["type"],
            record["src"],
            record["dst"],
            tuple(record["window"]),
            record.get("slice"),
            tuple(record["slices"]) if record.get("slices") else None,
        )
        if key in seen:
            link.retransmits += 1
        else:
            seen.add(key)
    return sorted(by_link.values(), key=lambda s: (s.src, s.dst))


def window_breakdown(records: Sequence[dict]) -> list[WindowBreakdown]:
    """Per-window phase partition, from ``window`` spans and their children."""
    window_spans = {
        record["id"]: record
        for record in records
        if record.get("kind") == "span" and record["name"] == "window"
    }
    breakdowns = {
        span_id: WindowBreakdown(
            window=tuple(record["window"]),
            node_id=record["node"],
            end_to_end_s=record["end"] - record["start"],
        )
        for span_id, record in window_spans.items()
    }
    for record in records:
        if record.get("kind") != "span":
            continue
        parent = record.get("parent")
        if parent in breakdowns and record["name"] != "window":
            phases = breakdowns[parent].phases
            duration = record["end"] - record["start"]
            phases[record["name"]] = phases.get(record["name"], 0.0) + duration
    return sorted(breakdowns.values(), key=lambda b: b.window)


@dataclass(slots=True)
class QueryLatency:
    """One registered query's share of the query plane's work.

    Shared ``query_identification``/``query_calculation`` spans carry
    every riding query id; each query is charged the span duration
    divided by the number of riders, so the per-query shares sum back to
    the plane's total span time.
    """

    query_id: int
    results: int = 0
    cuts: int = 0
    identification_s: float = 0.0
    calculation_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Amortized identification + calculation time."""
        return self.identification_s + self.calculation_s


def query_breakdown(records: Iterable[dict]) -> list[QueryLatency]:
    """Per-query amortized latency from the query plane's spans.

    Returns an empty list for traces without query-plane spans, so
    callers can gate the report section on truthiness.
    """
    by_query: dict[int, QueryLatency] = {}

    def entry(query_id: int) -> QueryLatency:
        return by_query.setdefault(query_id, QueryLatency(query_id))

    for record in records:
        if record.get("kind") != "span":
            continue
        name = record["name"]
        attrs = record.get("attrs") or {}
        if name in ("query_identification", "query_calculation"):
            riders = [
                int(raw)
                for raw in str(attrs.get("query_ids", "")).split(",")
                if raw
            ]
            if not riders:
                continue
            share = (record["end"] - record["start"]) / len(riders)
            for query_id in riders:
                latency = entry(query_id)
                if name == "query_identification":
                    latency.cuts += 1
                    latency.identification_s += share
                else:
                    latency.calculation_s += share
        elif name == "query_result" and "query" in attrs:
            entry(int(attrs["query"])).results += 1
    return sorted(by_query.values(), key=lambda latency: latency.query_id)


def format_report(records: Sequence[dict]) -> str:
    """Render the full per-phase latency/byte breakdown as text tables."""
    from repro.bench.reporting import format_bytes, format_seconds, format_table

    sections: list[str] = []

    phases = phase_summary(records)
    if phases:
        sections.append(format_table(
            ["phase", "spans", "total", "mean", "max"],
            [
                [
                    s.name, str(s.count), format_seconds(s.total_s),
                    format_seconds(s.mean_s), format_seconds(s.max_s),
                ]
                for s in phases
            ],
            title="Span phases",
        ))

    messages = message_summary(records)
    if messages:
        sections.append(format_table(
            ["message type", "count", "bytes", "events", "lost"],
            [
                [s.type, str(s.count), format_bytes(s.bytes),
                 str(s.events), str(s.lost)]
                for s in messages
            ],
            title="Network traffic",
        ))

    links = reliability_summary(records)
    if any(link.dropped or link.retransmits for link in links):
        sections.append(format_table(
            ["link", "sent", "dropped", "retransmits"],
            [
                [f"{link.src} → {link.dst}", str(link.sent),
                 str(link.dropped), str(link.retransmits)]
                for link in links
            ],
            title="Link reliability",
        ))

    breakdowns = window_breakdown(records)
    if breakdowns:
        phase_names: list[str] = []
        for breakdown in breakdowns:
            for name in breakdown.phases:
                if name not in phase_names:
                    phase_names.append(name)
        rows = []
        for breakdown in breakdowns:
            start, end = breakdown.window
            rows.append(
                [f"[{start},{end})"]
                + [
                    format_seconds(breakdown.phases.get(name, 0.0))
                    for name in phase_names
                ]
                + [
                    format_seconds(breakdown.end_to_end_s),
                    "yes" if breakdown.is_consistent else "NO",
                ]
            )
        sections.append(format_table(
            ["window"] + phase_names + ["end-to-end", "sums?"],
            rows,
            title="Per-window latency breakdown (root)",
        ))

    queries = query_breakdown(records)
    if queries:
        sections.append(format_table(
            ["query", "results", "cuts", "identification", "calculation",
             "total"],
            [
                [str(q.query_id), str(q.results), str(q.cuts),
                 format_seconds(q.identification_s),
                 format_seconds(q.calculation_s),
                 format_seconds(q.total_s)]
                for q in queries
            ],
            title="Per-query latency breakdown (shared cuts amortized)",
        ))

    if not sections:
        return "empty trace: no spans or messages"
    return "\n\n".join(sections)
