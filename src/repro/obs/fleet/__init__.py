"""Mesh-wide telemetry: Dema monitoring itself with its own sketches.

Fleet telemetry is the paper's thesis applied to the system's own
operations: per-node latency/backlog samples are summarized locally with
:class:`repro.sketches.tdigest.TDigest` and shipped as mergeable
centroids (``TelemetryDigestMessage``, wire tag 28) plus flat
counter/gauge snapshots (``TelemetrySnapshotMessage``, wire tag 27) over
the *existing* transports, piggybacked in-band the way heartbeats are.
The coordinator's :class:`FleetCollector` merges the digests into
cluster-wide percentiles — the exact decentralized-quantile machinery
the repo reproduces, dogfooded.

Off by default; with telemetry disabled no uplink task is started and
zero telemetry bytes touch the wire.
"""

from repro.obs.fleet.bench import (
    DEFAULT_FLEET_PATH,
    fleet_benchmark,
    write_fleet_bench,
)
from repro.obs.fleet.collector import FLEET_QUANTILES, FleetCollector
from repro.obs.fleet.uplink import TelemetryUplink

__all__ = [
    "DEFAULT_FLEET_PATH",
    "FLEET_QUANTILES",
    "FleetCollector",
    "TelemetryUplink",
    "fleet_benchmark",
    "write_fleet_bench",
]
