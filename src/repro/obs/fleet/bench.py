"""Fleet amortization benchmark: digest uplink vs. raw-sample shipping.

The fleet plane's byte claim is the paper's claim in miniature: a node
that summarizes its latency samples into a t-digest and uplinks the
centroids ships a small, bounded number of bytes per interval, while a
node that ships every raw sample pays linearly in sample volume.  This
benchmark measures both sides with the *real* wire messages — the digest
side runs actual :class:`~repro.obs.fleet.uplink.TelemetryUplink`
instances and sums the built frames' ``wire_bytes``; the raw side
charges the identical framing (header, metric name, count prefix) with
f64 samples in place of centroids — and writes ``BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import platform
import random
import sys
from typing import Any

from repro.runtime import wire
from repro.obs.fleet.uplink import TelemetryUplink
from repro.streaming.windows import Window

__all__ = ["fleet_benchmark", "write_fleet_bench", "DEFAULT_FLEET_PATH"]

DEFAULT_FLEET_PATH = "BENCH_fleet.json"

#: Locals-curve points; 100 is the acceptance point (digest ≤ 10% raw).
DEFAULT_CURVE = (10, 50, 100)

#: Metrics every node uplinks, mirroring the live mesh wiring.
DEFAULT_METRICS = (
    "seal_to_result_s",
    "event_loop_lag_s",
    "relay_flush_delay_s",
)

_CONTROL_WINDOW = Window(0, 1)


def _raw_frame_bytes(metric: str, n_samples: int) -> int:
    """Wire bytes to ship ``n_samples`` raw f64 samples of one metric.

    Charged with the same framing as a ``TelemetryDigestMessage`` —
    32-byte header, length-prefixed metric name, u64 sequence, u32
    count — so the comparison isolates payload encoding (samples vs.
    centroids), not framing overhead.
    """
    return (
        wire.MESSAGE_HEADER_BYTES
        + wire.COUNT_BYTES
        + len(metric.encode("utf-8"))
        + wire.U64_BYTES
        + wire.COUNT_BYTES
        + n_samples * wire.F64_BYTES
    )


def fleet_benchmark(
    *,
    curve: "tuple[int, ...]" = DEFAULT_CURVE,
    metrics: "tuple[str, ...]" = DEFAULT_METRICS,
    samples_per_round: int = 2000,
    rounds: int = 5,
    seed: int = 42,
) -> "dict[str, Any]":
    """Measure digest-uplink vs. raw-sample bytes along the locals curve.

    Each simulated node observes ``samples_per_round`` log-normal latency
    samples per metric per uplink round (a realistic heavy-tailed shape),
    then uplinks.  Digest bytes are summed from the actual built frames;
    raw bytes assume every sample is shipped under identical framing.
    """
    rng = random.Random(seed)
    points: "list[dict[str, Any]]" = []
    for n_locals in curve:
        digest_bytes = 0
        raw_bytes = 0
        total_samples = 0
        for node in range(1, n_locals + 1):
            uplink = TelemetryUplink(node)
            uplink.set_stat("events_ingested", 0.0)
            for _ in range(rounds):
                for metric in metrics:
                    for _ in range(samples_per_round):
                        uplink.observe(metric, rng.lognormvariate(-4.0, 1.0))
                    raw_bytes += _raw_frame_bytes(metric, samples_per_round)
                    total_samples += samples_per_round
                digest_bytes += sum(
                    frame.wire_bytes for frame in uplink.build(_CONTROL_WINDOW)
                )
        points.append({
            "n_locals": n_locals,
            "samples": total_samples,
            "digest_uplink_bytes": digest_bytes,
            "raw_sample_bytes": raw_bytes,
            "digest_fraction_of_raw": digest_bytes / raw_bytes,
            "savings": 1.0 - digest_bytes / raw_bytes,
        })
    return {
        "benchmark": "fleet_telemetry",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "metrics": list(metrics),
            "samples_per_round": samples_per_round,
            "rounds": rounds,
            "seed": seed,
        },
        "curve": points,
    }


def write_fleet_bench(
    path: str = DEFAULT_FLEET_PATH, **kwargs: Any
) -> "dict[str, Any]":
    """Run :func:`fleet_benchmark` and write the JSON artifact."""
    result = fleet_benchmark(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return result
