"""Per-node side of the fleet telemetry plane.

A :class:`TelemetryUplink` lives on one node (local, relay or shard).
The node feeds it raw samples (``observe``) and flat counter/gauge
readings (``set_stat``); at each uplink interval the owner calls
:meth:`build` and sends the returned frames upstream on whatever
connection it already holds — telemetry is in-band and piggybacked, so
partitions and failover exercise it for free.

Digests are **cumulative**: every uplink ships the node's full t-digest
since start, stamped with a monotonically increasing sequence number.
The collector keeps only the highest sequence per ``(sender, metric)``,
which makes duplicated or re-ordered uplinks (relay replay, failover
reconnects) idempotent — last write wins and the last write contains
everything.
"""

from __future__ import annotations

from repro.network.messages import (
    Message,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
)
from repro.sketches.tdigest import TDigest
from repro.streaming.windows import Window

__all__ = ["TelemetryUplink", "UPLINK_COMPRESSION"]

#: Compression for uplinked digests.  Deliberately coarser than the
#: query-path default (100): telemetry needs p50/p95/p99 to within a
#: fraction of a percent, and halving the centroid budget halves the
#: steady-state uplink bytes.
UPLINK_COMPRESSION = 50.0


class TelemetryUplink:
    """Accumulates one node's samples and builds its uplink frames."""

    def __init__(
        self,
        node_id: int,
        *,
        compression: float = UPLINK_COMPRESSION,
    ) -> None:
        self.node_id = node_id
        self.compression = compression
        self._digests: dict[str, TDigest] = {}
        self._stats: dict[str, float] = {}
        self._sequence = 0
        self._samples = 0

    @property
    def sequence(self) -> int:
        """Sequence number stamped on the most recent :meth:`build`."""
        return self._sequence

    @property
    def samples(self) -> int:
        """Raw samples absorbed since start (the cost digests avoid)."""
        return self._samples

    def observe(self, metric: str, value: float) -> None:
        """Absorb one sample of ``metric`` into its cumulative digest."""
        digest = self._digests.get(metric)
        if digest is None:
            digest = self._digests[metric] = TDigest(self.compression)
        digest.add(float(value))
        self._samples += 1

    def set_stat(self, name: str, value: float) -> None:
        """Set a flat counter/gauge reading shipped with each snapshot."""
        self._stats[name] = float(value)

    def inc_stat(self, name: str, amount: float = 1.0) -> None:
        """Increment a flat stat (convenience for counters)."""
        self._stats[name] = self._stats.get(name, 0.0) + amount

    def build(self, window: Window) -> list[Message]:
        """Frames for one uplink: a snapshot plus one digest per metric.

        ``window`` is the control window the owner sends telemetry on
        (the same reserved window heartbeats use).  Returns an empty
        list when there is nothing to report yet, so an idle node ships
        zero telemetry bytes.
        """
        if not self._stats and not self._digests:
            return []
        self._sequence += 1
        frames: list[Message] = [
            TelemetrySnapshotMessage(
                self.node_id,
                window,
                sequence=self._sequence,
                stats=tuple(sorted(self._stats.items())),
            )
        ]
        for metric in sorted(self._digests):
            digest = self._digests[metric]
            if digest.count == 0:
                continue
            frames.append(
                TelemetryDigestMessage(
                    self.node_id,
                    window,
                    metric=metric,
                    sequence=self._sequence,
                    centroids=digest.to_centroid_tuples(),
                    minimum=digest.min,
                    maximum=digest.max,
                )
            )
        return frames
