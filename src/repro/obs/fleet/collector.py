"""Coordinator side of the fleet telemetry plane.

The :class:`FleetCollector` receives every node's
``TelemetrySnapshotMessage`` / ``TelemetryDigestMessage`` uplinks and
keeps, per sender, the latest snapshot and the latest cumulative digest
of each metric.  Merging the per-node digests with
:func:`repro.sketches.tdigest.TDigest.merge_all` yields cluster-wide
percentiles — exactly the paper's decentralized-aggregation move, turned
on the system's own latency distributions.

Uplinks are idempotent: each carries a monotonically increasing
per-sender sequence number and digests are cumulative, so the collector
keeps the highest sequence and drops the rest.  Relay replay, failover
reconnects and duplicated control frames therefore cannot double-count.
"""

from __future__ import annotations

from repro.network.messages import (
    Message,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
)
from repro.sketches.tdigest import DEFAULT_COMPRESSION, TDigest

__all__ = ["FleetCollector", "FLEET_QUANTILES"]

#: The quantiles every fleet report serves.
FLEET_QUANTILES = (0.5, 0.95, 0.99)


class FleetCollector:
    """Merges per-node telemetry uplinks into a cluster-wide view."""

    def __init__(self, *, compression: float = DEFAULT_COMPRESSION) -> None:
        self.compression = compression
        #: sender -> (sequence, {stat: value})
        self._snapshots: dict[int, tuple[int, dict[str, float]]] = {}
        #: (sender, metric) -> (sequence, centroids, minimum, maximum)
        self._digests: dict[
            tuple[int, str],
            tuple[int, tuple[tuple[float, float], ...], float, float],
        ] = {}
        self._frames = 0
        self._bytes = 0
        self._stale = 0
        self._failovers: list[dict] = []

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> bool:
        """Absorb one frame; returns ``True`` if it was telemetry."""
        if isinstance(message, TelemetrySnapshotMessage):
            self._frames += 1
            self._bytes += message.wire_bytes
            held = self._snapshots.get(message.sender)
            if held is not None and held[0] >= message.sequence:
                self._stale += 1
                return True
            self._snapshots[message.sender] = (
                message.sequence,
                dict(message.stats),
            )
            return True
        if isinstance(message, TelemetryDigestMessage):
            self._frames += 1
            self._bytes += message.wire_bytes
            key = (message.sender, message.metric)
            held = self._digests.get(key)
            if held is not None and held[0] >= message.sequence:
                self._stale += 1
                return True
            self._digests[key] = (
                message.sequence,
                message.centroids,
                message.minimum,
                message.maximum,
            )
            return True
        return False

    def record_failover(
        self, dead: int, successor: int, epoch: int, at: float
    ) -> None:
        """Note one shard-failover takeover for the fleet report."""
        self._failovers.append(
            {"dead": dead, "successor": successor, "epoch": epoch, "at": at}
        )

    # ------------------------------------------------------------------
    # Read side.
    # ------------------------------------------------------------------

    @property
    def frames(self) -> int:
        """Telemetry frames absorbed (including stale duplicates)."""
        return self._frames

    @property
    def bytes(self) -> int:
        """Telemetry wire bytes absorbed."""
        return self._bytes

    @property
    def digest_count(self) -> int:
        """Distinct ``(sender, metric)`` digests currently held."""
        return len(self._digests)

    @property
    def failovers(self) -> list[dict]:
        """Failover events observed, in arrival order."""
        return list(self._failovers)

    def senders(self) -> list[int]:
        """Every node id that has uplinked anything."""
        ids = set(self._snapshots)
        ids.update(sender for sender, _ in self._digests)
        return sorted(ids)

    def metrics(self) -> list[str]:
        """Every metric name any node has uplinked a digest for."""
        return sorted({metric for _, metric in self._digests})

    def stats(self, sender: int) -> dict[str, float]:
        """The latest flat stats snapshot from ``sender`` (empty if none)."""
        held = self._snapshots.get(sender)
        return dict(held[1]) if held is not None else {}

    def stat_sum(self, name: str) -> float:
        """Sum of one stat across every sender's latest snapshot."""
        return sum(stats.get(name, 0.0) for _, stats in self._snapshots.values())

    def stat_max(self, name: str) -> float:
        """Max of one stat across senders holding it (0.0 if nobody does)."""
        values = [
            stats[name]
            for _, stats in self._snapshots.values()
            if name in stats
        ]
        return max(values) if values else 0.0

    def merged(self, metric: str) -> TDigest:
        """All senders' digests of ``metric`` merged into one."""
        parts = [
            TDigest.from_centroid_tuples(
                centroids, self.compression, minimum=minimum, maximum=maximum
            )
            for (_, held_metric), (_, centroids, minimum, maximum)
            in sorted(self._digests.items())
            if held_metric == metric and centroids
        ]
        return TDigest.merge_all(parts, self.compression)

    def percentiles(self, metric: str) -> dict:
        """JSON-ready percentile summary of one merged metric."""
        digest = self.merged(metric)
        if digest.count == 0:
            return {"count": 0.0}
        return {
            "count": digest.count,
            "min": digest.min,
            "max": digest.max,
            **{f"p{int(q * 100)}": digest.quantile(q) for q in FLEET_QUANTILES},
        }

    def report(self) -> dict:
        """The full JSON-ready fleet view served at ``/fleet``."""
        return {
            "frames": self._frames,
            "bytes": self._bytes,
            "stale_frames": self._stale,
            "digest_count": self.digest_count,
            "senders": self.senders(),
            "metrics": {
                metric: self.percentiles(metric) for metric in self.metrics()
            },
            "nodes": {
                str(sender): self.stats(sender) for sender in self.senders()
            },
            "failovers": list(self._failovers),
        }
