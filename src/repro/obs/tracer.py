"""Span tracer for the simulated window lifecycle.

A *span* is one named phase of work on one node — ``ingest``, ``slice``,
``identification``, ``candidate_fetch``, ``calculation`` — with start/end
times from the simulated clock and free-form numeric attributes (event
counts, byte counts, γ in force).  Spans nest through ``parent_id``: the
root opens one ``window`` span per global window and hangs its protocol
phases off it, so an exported trace shows exactly where inside a window's
lifecycle time and bytes go.

Tracing is **off by default and free when off**: every node and engine holds
the module-level :data:`NOOP_TRACER`, whose ``enabled`` flag is ``False``.
Instrumentation sites guard on that flag, so a disabled run pays one
attribute check per *window phase* (never per event) and allocates nothing.

:class:`RecordingTracer` collects spans and :class:`MessageTrace` records on
one timeline and simultaneously feeds a :class:`MetricsRegistry` — span
counts and durations, bytes by message type, loss and retransmit counters —
so a single traced run yields both a flamegraph-ready trace and a
Prometheus-style scrape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.obs.events import MessageTrace
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.simulator import Simulator
    from repro.streaming.windows import Window

__all__ = ["Span", "Tracer", "NOOP_TRACER", "RecordingTracer", "span_to_dict"]

#: Message types that legitimately repeat within one (window, sender) pair,
#: excluded from duplicate-as-retransmit detection.
_STREAMING_MESSAGES = frozenset(
    {"EventBatchMessage", "WatermarkMessage", "ResultMessage"}
)


@dataclass(slots=True)
class Span:
    """One phase of work on one node, on the simulated clock."""

    span_id: int
    parent_id: int | None
    name: str
    node_id: int
    start: float
    end: float
    window: "Window | None" = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


def span_to_dict(span: Span) -> dict:
    """Flatten one span for JSONL export."""
    return {
        "kind": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "node": span.node_id,
        "start": span.start,
        "end": span.end,
        "window": (
            [span.window.start, span.window.end]
            if span.window is not None
            else None
        ),
        "attrs": dict(span.attrs),
    }


class Tracer:
    """No-op tracer: the default on every node, engine and simulator.

    All methods do nothing and return immediately; ``enabled`` is ``False``
    so instrumentation sites can skip even argument construction.  Subclass
    and flip ``enabled`` to actually record (see :class:`RecordingTracer`).
    """

    enabled: bool = False

    def begin(
        self,
        name: str,
        node_id: int,
        start: float,
        *,
        window: "Window | None" = None,
        parent: int | None = None,
        **attrs: float,
    ) -> int:
        """Open a span; returns its id (0 for the no-op tracer)."""
        return 0

    def end(self, span_id: int, end: float, **attrs: float) -> None:
        """Close the span opened as ``span_id`` at time ``end``."""

    def record(
        self,
        name: str,
        node_id: int,
        start: float,
        end: float,
        *,
        window: "Window | None" = None,
        parent: int | None = None,
        **attrs: float,
    ) -> int:
        """Record a complete span in one call; returns its id (0 here)."""
        return 0

    def record_message(self, trace: MessageTrace) -> None:
        """Observe one routed message (called by the simulator)."""

    def record_link(
        self, src: int, dst: int, *, bytes: int, messages: int
    ) -> None:
        """Capture one live transport link's totals (called by the live
        cluster at teardown, playing the role :meth:`finalize` plays for
        simulated channels)."""

    def finalize(self, simulator: "Simulator", duration: float) -> None:
        """Capture end-of-run gauges (CPU busy fractions, channel totals)."""


#: The shared do-nothing tracer; safe to hand to any number of nodes.
NOOP_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Collects spans + messages and keeps live metrics while recording.

    ``on_record`` (when set) is called with the flattened dict of every
    completed span and observed message as it happens — the tap the live
    flight recorder hangs off without buffering the whole run twice.
    """

    enabled = True

    def __init__(self, *, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_record: "Callable[[dict], None] | None" = None
        self._spans: list[Span] = []
        self._open: dict[int, Span] = {}
        self._messages: list[MessageTrace] = []
        self._next_id = 1
        self._seen_messages: set = set()

    @property
    def spans(self) -> list[Span]:
        """Completed spans ordered by start time (ties by creation)."""
        return sorted(self._spans, key=lambda s: (s.start, s.span_id))

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    @property
    def messages(self) -> list[MessageTrace]:
        """Observed messages in send order."""
        return list(self._messages)

    def begin(
        self,
        name: str,
        node_id: int,
        start: float,
        *,
        window: "Window | None" = None,
        parent: int | None = None,
        **attrs: float,
    ) -> int:
        span = Span(
            span_id=self._next_id,
            parent_id=parent or None,
            name=name,
            node_id=node_id,
            start=start,
            end=start,
            window=window,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._open[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, end: float, **attrs: float) -> None:
        span = self._open.pop(span_id, None)
        if span is None:
            raise ConfigurationError(
                f"span {span_id} is not open (ended twice or never begun)"
            )
        span.end = end
        span.attrs.update(attrs)
        self._spans.append(span)
        self._span_metrics(span)
        if self.on_record is not None:
            self.on_record(span_to_dict(span))

    def record(
        self,
        name: str,
        node_id: int,
        start: float,
        end: float,
        *,
        window: "Window | None" = None,
        parent: int | None = None,
        **attrs: float,
    ) -> int:
        span_id = self.begin(
            name, node_id, start, window=window, parent=parent, **attrs
        )
        self.end(span_id, end)
        return span_id

    def _span_metrics(self, span: Span) -> None:
        registry = self.registry
        registry.counter(
            "spans_total", "Completed spans by phase.", phase=span.name
        ).inc()
        registry.counter(
            "span_seconds_total",
            "Summed span duration by phase, simulated seconds.",
            phase=span.name,
        ).inc(span.duration)
        registry.histogram(
            "span_duration_seconds",
            "Span duration distribution by phase.",
            phase=span.name,
        ).observe(span.duration)

    def record_message(self, trace: MessageTrace) -> None:
        self._messages.append(trace)
        if self.on_record is not None:
            from repro.obs.events import message_to_dict

            self.on_record(message_to_dict(trace))
        registry = self.registry
        message = trace.message
        kind = type(message).__name__
        registry.counter(
            "messages_total", "Messages sent by type.", type=kind
        ).inc()
        registry.counter(
            "bytes_total", "Bytes on the wire by message type.", type=kind
        ).inc(message.wire_bytes)
        events = getattr(message, "events", None)
        if events is not None:
            registry.counter(
                "events_on_wire_total",
                "Raw events that crossed a channel, by message type.",
                type=kind,
            ).inc(len(events))
        if trace.delivered_at is None:
            registry.counter(
                "messages_lost_total", "Messages lost in transit.", type=kind
            ).inc()
        if kind not in _STREAMING_MESSAGES:
            key = (
                kind,
                trace.src,
                trace.dst,
                message.window,
                getattr(message, "slice_index", None),
                getattr(message, "slice_indices", None),
            )
            if key in self._seen_messages:
                registry.counter(
                    "retransmits_total",
                    "Protocol messages sent more than once "
                    "(reliability retries).",
                    type=kind,
                ).inc()
            else:
                self._seen_messages.add(key)

    def record_link(
        self, src: int, dst: int, *, bytes: int, messages: int
    ) -> None:
        registry = self.registry
        registry.gauge(
            "live_link_bytes",
            "Bytes that crossed each live transport link.",
            src=str(src), dst=str(dst),
        ).set(bytes)
        registry.gauge(
            "live_link_messages",
            "Messages that crossed each live transport link.",
            src=str(src), dst=str(dst),
        ).set(messages)

    def finalize(self, simulator: "Simulator", duration: float) -> None:
        registry = self.registry
        for node_id, node in sorted(simulator.nodes.items()):
            busy = (
                node.cpu.total_ops / (node.cpu.ops_per_second * duration)
                if duration > 0
                else 0.0
            )
            registry.gauge(
                "node_cpu_busy_fraction",
                "Fraction of the run each node's CPU was busy.",
                node=str(node_id),
            ).set(min(busy, 1.0))
            registry.gauge(
                "node_cpu_total_ops",
                "Abstract operations accepted per node.",
                node=str(node_id),
            ).set(node.cpu.total_ops)
        for (src, dst), channel in sorted(simulator.channels.items()):
            registry.gauge(
                "channel_bytes",
                "Bytes that crossed each directed channel.",
                src=str(src), dst=str(dst),
            ).set(channel.stats.bytes)
            registry.gauge(
                "channel_dropped_messages",
                "Messages dropped by each lossy channel.",
                src=str(src), dst=str(dst),
            ).set(channel.stats.dropped)

    def records(self) -> list[dict]:
        """Spans and messages flattened to dicts, ordered by timeline."""
        from repro.obs.events import message_to_dict

        rows = [span_to_dict(span) for span in self.spans]
        rows.extend(message_to_dict(trace) for trace in self._messages)
        rows.sort(key=lambda r: r.get("start", r.get("sent", 0.0)))
        return rows
