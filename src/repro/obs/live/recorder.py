"""Flight recorder: the last N observability records, dumped on crash.

A live cluster that dies under chaos usually takes its evidence with it —
the run never reaches the orderly trace-export path.  The
:class:`FlightRecorder` is a bounded ring buffer tapped into the
tracer's ``on_record`` stream (completed spans, observed messages) plus
any free-form events pushed at it; when the cluster's
:class:`~repro.runtime.transport.FailureLatch` trips, the latch's
``on_trip`` hook dumps the ring to JSONL **at the moment of death**,
before teardown unwinds anything.

The dump format is one JSON object per line, newest last, preceded by a
``{"kind": "flight_recorder_header", ...}`` line naming the dump reason
— readable by the same tooling that reads trace exports.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of observability records with crash dump."""

    def __init__(self, path: Path | str, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.path = Path(path)
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0
        self._dumped = False

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total records ever pushed (>= len once the ring wraps)."""
        return self._recorded

    @property
    def dumped(self) -> bool:
        """Whether a dump has been written."""
        return self._dumped

    def record(self, row: dict) -> None:
        """Push one record; evicts the oldest when the ring is full."""
        self._ring.append(row)
        self._recorded += 1

    def event(self, name: str, **attrs) -> None:
        """Push a free-form event record (``kind: "event"``)."""
        self.record({"kind": "event", "name": name, **attrs})

    def on_failure(self, exc: BaseException) -> None:
        """FailureLatch ``on_trip`` adapter: dump, naming the exception."""
        self.dump(reason=f"{type(exc).__name__}: {exc}")

    def dump(self, reason: str = "requested") -> Path:
        """Write the ring to :attr:`path` as JSONL; returns the path.

        Idempotent in spirit but not in effect: every call rewrites the
        file with the current ring, so the *first* failure's dump can be
        refreshed by a later explicit call if the run limps on.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as fh:
            header = {
                "kind": "flight_recorder_header",
                "reason": reason,
                "capacity": self.capacity,
                "recorded": self._recorded,
                "retained": len(self._ring),
            }
            fh.write(json.dumps(header) + "\n")
            for row in self._ring:
                fh.write(json.dumps(row, default=str) + "\n")
        self._dumped = True
        return self.path
