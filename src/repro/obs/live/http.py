"""Dependency-free telemetry HTTP endpoint for a serving live cluster.

One small asyncio server (raw ``asyncio.start_server`` — no web
framework, per the repo's stdlib-only rule) exposing the cluster's
observability plane while it runs:

* ``GET /metrics`` — the shared :class:`~repro.obs.metrics.MetricsRegistry`
  rendered as Prometheus text exposition format.
* ``GET /timeline/<window-start>`` — that window's reconstructed causal
  timeline (:func:`~repro.obs.live.timeline.window_timeline`) as JSON.
* ``GET /summary`` — the per-node phase/queue digest ``repro top``
  renders, as JSON.
* ``GET /fleet`` — the mesh-wide fleet view (merged telemetry digests,
  per-shard health, staleness, failover events) as JSON; 404 on
  clusters without a fleet collector.
* ``GET /healthz`` — liveness.

Every response closes the connection; this is a scrape endpoint, not a
web server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from repro.obs.live.timeline import window_timeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = ["TelemetryServer"]

_MAX_REQUEST_BYTES = 16384

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


class TelemetryServer:
    """Asyncio HTTP endpoint serving metrics, timelines and summaries."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spans: Callable[[], list[Span]] | None = None,
        summary: Callable[[], dict] | None = None,
        fleet: Callable[[], dict] | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port  # rewritten with the bound port by start()
        self._spans = spans
        self._summary = summary
        self._fleet = fleet
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind and start serving; returns (and stores) the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await reader.readuntil(b"\r\n\r\n")
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionError,
            ):
                return
            if len(request) > _MAX_REQUEST_BYTES:
                await self._respond(writer, 400, "text/plain", "request too large")
                return
            parts = request.split(b"\r\n", 1)[0].decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                await self._respond(writer, 400, "text/plain", "GET only")
                return
            status, content_type, body = self._route(parts[1])
            await self._respond(writer, status, content_type, body)
        except Exception as exc:  # a broken handler must not kill the loop
            try:
                await self._respond(writer, 500, "text/plain", f"error: {exc}")
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _route(self, path: str) -> tuple[int, str, str]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.registry.render_prometheus(),
            )
        if path == "/healthz":
            return 200, "application/json", json.dumps({"ok": True})
        if path == "/summary":
            if self._summary is None:
                return 404, "text/plain", "no summary provider attached"
            return 200, "application/json", json.dumps(self._summary())
        if path == "/fleet":
            if self._fleet is None:
                return 404, "text/plain", "no fleet collector attached"
            return 200, "application/json", json.dumps(self._fleet())
        if path.startswith("/timeline/"):
            if self._spans is None:
                return 404, "text/plain", "no span source attached"
            raw = path[len("/timeline/"):]
            try:
                window_start = int(raw)
            except ValueError:
                return 400, "text/plain", f"not a window start: {raw!r}"
            timeline = window_timeline(self._spans(), window_start)
            return 200, "application/json", json.dumps(timeline)
        return 404, "text/plain", f"no route for {path}"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
