"""``python -m repro top``: attach to a serving cluster and watch it.

A tiny text-mode client for the telemetry endpoint: fetches ``/summary``
(and liveness from ``/healthz``) over plain HTTP and renders a per-node
phase table plus per-link queue/stall figures, refreshing in place until
interrupted.  ``--once`` prints a single snapshot and exits — the mode CI
smoke-tests.

With no ``--port``, there is nothing to attach to, so ``top`` spawns a
small in-process demo cluster with telemetry enabled in a background
thread and watches that — a one-command way to see the plane working
(and a self-contained smoke test).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import TextIO

__all__ = ["fetch_json", "render_summary", "run_top"]


def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> dict:
    """GET ``http://host:port/path`` and parse the JSON body."""
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def render_summary(summary: dict) -> str:
    """One snapshot of the cluster as a fixed-width text dashboard."""
    lines = [
        "repro top — live cluster "
        f"[{summary.get('transport', '?')}] "
        f"windows {summary.get('windows_done', 0)}"
        f"/{summary.get('windows_expected', 0)}",
        "",
        f"{'NODE':>6}  {'PHASE':<22} {'COUNT':>7} {'SECONDS':>10}",
    ]
    for node in summary.get("nodes", []):
        node_id = node.get("node")
        phases = node.get("phases", {})
        if not phases:
            lines.append(f"{node_id:>6}  {'(no live spans yet)':<22}")
            continue
        first = True
        for name, entry in phases.items():
            label = f"{node_id:>6}" if first else f"{'':>6}"
            lines.append(
                f"{label}  {name:<22} {entry['count']:>7} "
                f"{entry['seconds']:>10.4f}"
            )
            first = False
    lines += [
        "",
        f"{'LINK':<14} {'SRC':>4} {'DST':>4} {'BACKLOG':>8} "
        f"{'STALL_S':>9} {'FR_SENT':>8} {'FR_RECV':>8}",
    ]
    for link in summary.get("links", []):
        lines.append(
            f"{link['layer']:<14} {link['src']:>4} {link['dst']:>4} "
            f"{link['send_backlog']:>8} {link['send_stall_s']:>9.4f} "
            f"{link['frames_sent']:>8} {link['frames_received']:>8}"
        )
    return "\n".join(lines)


def _watch(
    host: str,
    port: int,
    *,
    interval_s: float,
    once: bool,
    out: TextIO,
) -> int:
    while True:
        try:
            summary = fetch_json(host, port, "/summary")
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(
                f"repro top: cannot fetch http://{host}:{port}/summary: "
                f"{exc}",
                file=sys.stderr,
            )
            return 1
        if not once:
            out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        out.write(render_summary(summary) + "\n")
        out.flush()
        if once:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0


def _demo(*, interval_s: float, once: bool, out: TextIO) -> int:
    """Spawn a small telemetry-enabled cluster in a thread and watch it."""
    import queue
    import threading

    # Imported here, not at module top: repro.obs.live must stay importable
    # without repro.runtime (the codec depends on the former).
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.query import QuantileQuery
    from repro.obs.live.config import TelemetryConfig
    from repro.runtime.cluster import LiveClusterConfig, run_live

    ports: "queue.Queue[int]" = queue.Queue()
    config = LiveClusterConfig(
        n_locals=2,
        streams_per_local=2,
        query=QuantileQuery(q=0.9, window_length_ms=500, gamma=64),
        transport="memory",
        time_scale=1.0,  # pace the replay so there is something to watch
        telemetry=TelemetryConfig(http_port=0, announce=ports.put),
    )
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=200.0, duration_s=2.0, seed=41)
    )
    print("repro top: no --port given; running a demo cluster", file=sys.stderr)
    runner = threading.Thread(
        target=run_live, args=(config, streams), daemon=True
    )
    runner.start()
    try:
        port = ports.get(timeout=10.0)
    except queue.Empty:
        print("repro top: demo cluster never came up", file=sys.stderr)
        return 1
    if once:
        # Give the demo a moment to produce spans worth printing.
        time.sleep(1.0)
        status = _watch(
            "127.0.0.1", port, interval_s=interval_s, once=True, out=out
        )
    else:
        status = 0
        while runner.is_alive():
            status = _watch(
                "127.0.0.1", port, interval_s=interval_s, once=True, out=out
            )
            if status != 0:
                break
            time.sleep(interval_s)
    runner.join(timeout=30.0)
    return status


def run_top(
    host: str = "127.0.0.1",
    port: int | None = None,
    *,
    interval_s: float = 1.0,
    once: bool = False,
    out: TextIO | None = None,
) -> int:
    """Entry point behind ``python -m repro top``; returns an exit code."""
    out = out if out is not None else sys.stdout
    if port is None:
        return _demo(interval_s=interval_s, once=once, out=out)
    return _watch(host, port, interval_s=interval_s, once=once, out=out)
