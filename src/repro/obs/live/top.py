"""``python -m repro top``: attach to a serving cluster and watch it.

A tiny text-mode client for the telemetry endpoint: fetches ``/summary``
(and liveness from ``/healthz``) over plain HTTP and renders a per-node
phase table plus per-link queue/stall figures, refreshing in place until
interrupted.  ``--once`` prints a single snapshot and exits — the mode CI
smoke-tests.

With no ``--port``, there is nothing to attach to, so ``top`` spawns a
small in-process demo cluster with telemetry enabled in a background
thread and watches that — a one-command way to see the plane working
(and a self-contained smoke test).

``--mesh`` switches the scrape target to ``/fleet`` and the rendering to
the mesh-wide fleet view: cluster percentiles merged from every node's
t-digest uplinks, per-shard and per-relay health, window completeness,
staleness and failover events.  The no-port demo then runs a small
sharded mesh instead of the flat cluster.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Callable, TextIO

__all__ = ["fetch_json", "render_summary", "render_fleet", "run_top"]


def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> dict:
    """GET ``http://host:port/path`` and parse the JSON body."""
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def render_summary(summary: dict) -> str:
    """One snapshot of the cluster as a fixed-width text dashboard."""
    lines = [
        "repro top — live cluster "
        f"[{summary.get('transport', '?')}] "
        f"windows {summary.get('windows_done', 0)}"
        f"/{summary.get('windows_expected', 0)}",
        "",
        f"{'NODE':>6}  {'PHASE':<22} {'COUNT':>7} {'SECONDS':>10}",
    ]
    for node in summary.get("nodes", []):
        node_id = node.get("node")
        phases = node.get("phases", {})
        if not phases:
            lines.append(f"{node_id:>6}  {'(no live spans yet)':<22}")
            continue
        first = True
        for name, entry in phases.items():
            label = f"{node_id:>6}" if first else f"{'':>6}"
            lines.append(
                f"{label}  {name:<22} {entry['count']:>7} "
                f"{entry['seconds']:>10.4f}"
            )
            first = False
    lines += [
        "",
        f"{'LINK':<14} {'SRC':>4} {'DST':>4} {'BACKLOG':>8} "
        f"{'STALL_S':>9} {'FR_SENT':>8} {'FR_RECV':>8}",
    ]
    for link in summary.get("links", []):
        lines.append(
            f"{link['layer']:<14} {link['src']:>4} {link['dst']:>4} "
            f"{link['send_backlog']:>8} {link['send_stall_s']:>9.4f} "
            f"{link['frames_sent']:>8} {link['frames_received']:>8}"
        )
    return "\n".join(lines)


def render_fleet(fleet: dict) -> str:
    """One snapshot of the mesh fleet view as a text dashboard."""
    windows = fleet.get("windows", {})
    lines = [
        "repro top — fleet "
        f"windows {windows.get('answered', 0)}"
        f"/{windows.get('expected', 0)} "
        f"(completeness {windows.get('completeness', 0.0):.2f}) "
        f"epoch {fleet.get('epoch', 0)}",
        f"telemetry: {fleet.get('frames', 0)} frames, "
        f"{fleet.get('bytes', 0)} bytes, "
        f"{fleet.get('digest_count', 0)} digests from "
        f"{len(fleet.get('senders', []))} nodes, "
        f"staleness {fleet.get('staleness_s', 0.0):.3f}s",
        "",
        f"{'METRIC':<24} {'COUNT':>8} {'P50':>12} {'P95':>12} {'P99':>12}",
    ]
    for metric, row in sorted(fleet.get("metrics", {}).items()):
        if row.get("count", 0.0) <= 0:
            lines.append(f"{metric:<24} {0:>8}")
            continue
        lines.append(
            f"{metric:<24} {int(row['count']):>8} "
            f"{row['p50']:>12.6f} {row['p95']:>12.6f} {row['p99']:>12.6f}"
        )
    lines += [
        "",
        f"{'SHARD':>6} {'LIVE':>5} {'ANSWERED':>9} {'EXPECTED':>9} "
        f"{'ADOPTED':>8} {'HB_MISS':>8}",
    ]
    for shard in fleet.get("shards", []):
        lines.append(
            f"{shard['index']:>6} {str(shard['live']):>5} "
            f"{shard['windows_answered']:>9} {shard['windows_expected']:>9} "
            f"{shard['windows_adopted']:>8} {shard['heartbeat_misses']:>8}"
        )
    if fleet.get("relays"):
        lines += [
            "",
            f"{'RELAY':>6} {'COMBINED':>9} {'SECTIONS':>9} "
            f"{'SINGLETON':>10} {'REPLAYED':>9}",
        ]
        for relay in fleet["relays"]:
            lines.append(
                f"{relay['index']:>6} {relay['frames_combined']:>9} "
                f"{relay['sections_combined']:>9} "
                f"{relay['singleton_forwards']:>10} "
                f"{relay['frames_replayed']:>9}"
            )
    for event in fleet.get("failovers", []):
        lines.append(
            f"failover: shard {event['dead']} -> {event['successor']} "
            f"at {event['at']:.3f}s (epoch {event['epoch']})"
        )
    return "\n".join(lines)


def _watch(
    host: str,
    port: int,
    *,
    interval_s: float,
    once: bool,
    out: TextIO,
    path: str = "/summary",
    render: "Callable[[dict], str]" = render_summary,
) -> int:
    while True:
        try:
            summary = fetch_json(host, port, path)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(
                f"repro top: cannot fetch http://{host}:{port}{path}: "
                f"{exc}",
                file=sys.stderr,
            )
            return 1
        if not once:
            out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        out.write(render(summary) + "\n")
        out.flush()
        if once:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0


def _demo(
    *, interval_s: float, once: bool, out: TextIO, mesh: bool = False
) -> int:
    """Spawn a small telemetry-enabled cluster in a thread and watch it."""
    import queue
    import threading

    # Imported here, not at module top: repro.obs.live must stay importable
    # without repro.runtime (the codec depends on the former).
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.query import QuantileQuery
    from repro.obs.live.config import TelemetryConfig

    if mesh:
        # Mesh replays are unpaced, so a demo run is over in well under
        # a refresh interval — scrape-while-running would race the run.
        # Run it to completion and render the final fleet view instead;
        # ``--port`` is the live-scrape path for a real serving mesh.
        from repro.mesh import MeshConfig, run_mesh

        config = MeshConfig(
            n_locals=4,
            n_shards=2,
            relay_fanin=2,
            query=QuantileQuery(q=0.9, window_length_ms=500, gamma=64),
            telemetry=TelemetryConfig(sampler_interval_s=0.01),
        )
        streams = workload(
            [1, 2, 3, 4],
            GeneratorConfig(event_rate=200.0, duration_s=2.0, seed=41),
        )
        print(
            "repro top: no --port given; running a demo mesh",
            file=sys.stderr,
        )
        report = run_mesh(config, streams)
        out.write(render_fleet(report.telemetry["fleet"]) + "\n")
        out.flush()
        return 0

    from repro.runtime.cluster import LiveClusterConfig, run_live

    ports: "queue.Queue[int]" = queue.Queue()
    config = LiveClusterConfig(
        n_locals=2,
        streams_per_local=2,
        query=QuantileQuery(q=0.9, window_length_ms=500, gamma=64),
        transport="memory",
        time_scale=1.0,  # pace the replay so there is something to watch
        telemetry=TelemetryConfig(http_port=0, announce=ports.put),
    )
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=200.0, duration_s=2.0, seed=41)
    )
    print("repro top: no --port given; running a demo cluster", file=sys.stderr)
    runner = threading.Thread(
        target=run_live, args=(config, streams), daemon=True
    )
    runner.start()
    try:
        port = ports.get(timeout=10.0)
    except queue.Empty:
        print("repro top: demo cluster never came up", file=sys.stderr)
        return 1
    if once:
        # Give the demo a moment to produce spans worth printing.
        time.sleep(1.0)
        status = _watch(
            "127.0.0.1", port, interval_s=interval_s, once=True, out=out
        )
    else:
        status = 0
        while runner.is_alive():
            status = _watch(
                "127.0.0.1", port, interval_s=interval_s, once=True, out=out
            )
            if status != 0:
                break
            time.sleep(interval_s)
    runner.join(timeout=30.0)
    return status


def run_top(
    host: str = "127.0.0.1",
    port: int | None = None,
    *,
    interval_s: float = 1.0,
    once: bool = False,
    out: TextIO | None = None,
    mesh: bool = False,
) -> int:
    """Entry point behind ``python -m repro top``; returns an exit code."""
    out = out if out is not None else sys.stdout
    if port is None:
        return _demo(interval_s=interval_s, once=once, out=out, mesh=mesh)
    return _watch(
        host, port, interval_s=interval_s, once=once, out=out,
        path="/fleet" if mesh else "/summary",
        render=render_fleet if mesh else render_summary,
    )
