"""Live observability: distributed tracing and an online telemetry plane.

Everything in :mod:`repro.obs` up to this package looks at a run *after*
the fact, on the simulated clock.  This package watches the **live**
asyncio cluster while it is serving:

* :mod:`repro.obs.live.context` — the compact trace context (trace id,
  parent span id, sampled flag) that rides inside every wire frame as a
  header extension, plus the contextvar plumbing that carries it across
  ``await`` boundaries and the head-based sampling decision.
* :mod:`repro.obs.live.config` — :class:`TelemetryConfig`, the one knob
  the cluster driver takes to turn the whole plane on.
* :mod:`repro.obs.live.sampler` — :class:`RuntimeSampler`, a background
  task feeding the metrics registry with event-loop lag, per-transport
  send backlog and stall time, GC pauses and frames in flight.
* :mod:`repro.obs.live.http` — :class:`TelemetryServer`, a dependency-free
  asyncio HTTP endpoint serving ``/metrics`` (Prometheus text),
  ``/timeline/<window-start>`` (the causal timeline as JSON),
  ``/summary`` (the per-node digest ``repro top`` renders) and
  ``/healthz``.
* :mod:`repro.obs.live.recorder` — :class:`FlightRecorder`, a bounded
  ring buffer of the most recent spans/events, dumped to JSONL when a
  :class:`~repro.runtime.transport.FailureLatch` trips (or on demand).
* :mod:`repro.obs.live.timeline` — reconstruction of one window's causal
  timeline (stream → local → root) from wall-clock spans.
* :mod:`repro.obs.live.top` — the ``python -m repro top`` client: attach
  to a serving cluster's telemetry endpoint and render a refreshing
  per-node phase/queue summary.

The design constraint throughout: **off means free**.  Without a
:class:`TelemetryConfig` the cluster driver starts none of this, frames
carry no extension bytes, and live quantile results are bit-identical to
a telemetry-enabled run (pinned by ``tests/runtime/test_live_telemetry``).
"""

from repro.obs.live.config import TelemetryConfig
from repro.obs.live.context import (
    TraceContext,
    context_scope,
    current_context,
    set_context,
    should_sample,
    trace_id_for_window,
)
from repro.obs.live.http import TelemetryServer
from repro.obs.live.recorder import FlightRecorder
from repro.obs.live.sampler import RuntimeSampler
from repro.obs.live.timeline import (
    LIVE_PHASES,
    timeline_tree,
    window_timeline,
)

__all__ = [
    "TelemetryConfig",
    "TraceContext",
    "context_scope",
    "current_context",
    "set_context",
    "should_sample",
    "trace_id_for_window",
    "TelemetryServer",
    "FlightRecorder",
    "RuntimeSampler",
    "LIVE_PHASES",
    "timeline_tree",
    "window_timeline",
]
