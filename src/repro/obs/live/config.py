"""TelemetryConfig: the one knob that turns the live telemetry plane on.

The live cluster driver takes ``telemetry=None`` (the default: no trace
context on the wire, no sampler task, no HTTP endpoint, no flight
recorder — zero new code on the hot path) or a :class:`TelemetryConfig`
describing which parts of the plane to start and how aggressively to
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """Configuration for the live cluster's telemetry plane.

    Attributes:
        sample_rate: Head-based trace sampling rate in ``[0, 1]``.  The
            verdict is made once per window (the trace root) from the
            trace id alone, so it is deterministic across nodes and
            reruns.  ``1.0`` traces every window.
        http_port: Port for the scrape endpoint (``/metrics``,
            ``/timeline/<window-start>``, ``/summary``, ``/healthz``).
            ``0`` binds an ephemeral port; ``None`` starts no server.
        http_host: Interface the scrape endpoint binds.
        sampler_interval_s: Period of the runtime sampler (event-loop
            lag, send backlogs, GC pauses).  ``0`` disables the sampler.
        flight_recorder_path: Where the flight recorder dumps its ring
            buffer when the cluster's failure latch trips.  ``None``
            disables the recorder.
        flight_recorder_capacity: Ring size — the last N span/event
            records kept for a crash dump.
        heartbeat_rtt: Whether the root echoes heartbeats so locals can
            measure round-trip time.  Adds one small frame per heartbeat
            per local; off by default to keep traffic identical to an
            untelemetered run unless asked for.
        announce: Called once with the bound HTTP port after the scrape
            endpoint starts (the config is frozen, so an ephemeral port
            cannot be written back; tests and the CLI use this to learn
            where to point a client).
    """

    sample_rate: float = 1.0
    http_port: int | None = None
    http_host: str = "127.0.0.1"
    sampler_interval_s: float = 0.05
    flight_recorder_path: Path | str | None = None
    flight_recorder_capacity: int = 2048
    heartbeat_rtt: bool = False
    announce: Callable[[int], None] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.http_port is not None and not 0 <= self.http_port <= 65535:
            raise ConfigurationError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )
        if self.sampler_interval_s < 0:
            raise ConfigurationError(
                "sampler_interval_s must be >= 0, got "
                f"{self.sampler_interval_s}"
            )
        if self.flight_recorder_capacity <= 0:
            raise ConfigurationError(
                "flight_recorder_capacity must be positive, got "
                f"{self.flight_recorder_capacity}"
            )
