"""Runtime sampler: the event loop's vital signs, fed to the registry.

The simulated fabric meters everything by construction; the live asyncio
cluster has real costs no protocol counter sees — a starved event loop,
a transport stalled on backpressure, a GC pause in the middle of a seal.
:class:`RuntimeSampler` is one background task that measures those and
feeds the same :class:`~repro.obs.metrics.MetricsRegistry` the tracer
uses, so one ``/metrics`` scrape shows protocol and runtime health side
by side.

Sampled every ``interval_s``:

* **event-loop lag** — the drift of ``asyncio.sleep(interval)`` against
  the wall clock; the single best proxy for "the loop is starved".
* **per-transport send backlog** — frames (memory) or bytes (TCP)
  queued behind the stream's sends, plus cumulative send-stall seconds
  and frame/byte totals, labelled by link.
* **GC pauses** — via :data:`gc.callbacks`, pause duration observed into
  a histogram (this one is event-driven, not polled).
"""

from __future__ import annotations

import asyncio
import gc
import time
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.transport import MessageStream

__all__ = ["RuntimeSampler"]


class RuntimeSampler:
    """Background task sampling runtime health into a metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 0.05,
    ) -> None:
        self.registry = registry
        self.interval_s = interval_s
        self._streams: list[tuple[dict, "MessageStream"]] = []
        self._task: asyncio.Task | None = None
        self._gc_start: float | None = None
        self._gc_hooked = False
        self.samples = 0

    def register_stream(
        self, stream: "MessageStream", *, src: int, dst: int
    ) -> None:
        """Track one transport link; safe to call while sampling runs."""
        self._streams.append(({"src": str(src), "dst": str(dst)}, stream))

    def start(self) -> None:
        """Install the GC hook and start the sampling task."""
        if self._task is not None:
            return
        if not self._gc_hooked:
            gc.callbacks.append(self._on_gc)
            self._gc_hooked = True
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Take one final sample, stop the task, remove the GC hook."""
        if self._gc_hooked:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - interpreter cleanup
                pass
            self._gc_hooked = False
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._sample_streams()  # final totals survive even a short run

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_start = time.monotonic()
        elif phase == "stop" and self._gc_start is not None:
            pause = time.monotonic() - self._gc_start
            self._gc_start = None
            self.registry.histogram(
                "live_gc_pause_seconds",
                "Garbage collection pause durations.",
                generation=str(info.get("generation", "")),
            ).observe(pause)

    async def _run(self) -> None:
        lag_gauge = self.registry.gauge(
            "live_event_loop_lag_seconds",
            "Most recent event-loop scheduling lag sample.",
        )
        lag_hist = self.registry.histogram(
            "live_event_loop_lag",
            "Event-loop scheduling lag distribution, seconds.",
        )
        while True:
            t0 = time.monotonic()
            await asyncio.sleep(self.interval_s)
            lag = max(0.0, time.monotonic() - t0 - self.interval_s)
            lag_gauge.set(lag)
            lag_hist.observe(lag)
            self._sample_streams()
            self.samples += 1

    def _sample_streams(self) -> None:
        registry = self.registry
        for labels, stream in self._streams:
            try:
                backlog = stream.send_backlog()
            except Exception:  # stream torn down mid-sample
                continue
            registry.gauge(
                "live_send_backlog",
                "Data queued behind sends per link "
                "(frames for memory streams, bytes for TCP).",
                **labels,
            ).set(backlog)
            stats = stream.stats
            registry.gauge(
                "live_send_stall_seconds",
                "Cumulative seconds sends spent stalled on backpressure.",
                **labels,
            ).set(stats.send_stall_s)
            registry.gauge(
                "live_frames_sent",
                "Frames sent per link so far.",
                **labels,
            ).set(stats.messages_sent)
            registry.gauge(
                "live_frames_received",
                "Frames received per link so far.",
                **labels,
            ).set(stats.messages_received)
            registry.gauge(
                "live_bytes_sent",
                "Bytes sent per link so far.",
                **labels,
            ).set(stats.bytes_sent)
            registry.gauge(
                "live_bytes_received",
                "Bytes received per link so far.",
                **labels,
            ).set(stats.bytes_received)
