"""Per-window causal timelines reconstructed from live wall-clock spans.

Every live span opened on behalf of a traced window carries the window's
trace id (``attrs["trace_id"]``) and parents onto the span named in the
incoming frame's trace context — so one global window's journey

    stream batch → local ingest → synopsis seal → root identification
    → candidate fetch → calculation → release

is reconstructable as a tree across real processes-worth of nodes from
the flat span list alone.  This module does that reconstruction; the
telemetry HTTP server serves the result at ``/timeline/<window-start>``.

Mesh runs add two cross-node hops to the same story.  Relay combine
spans (``relay_combine``) mark where several locals' frames became one
section-carrying frame, and the per-section trace contexts on that frame
let the shard's dispatch spans parent onto the *originating* local's
span rather than vanishing at the relay.  Shard failover adds
``live_failover_replay`` spans: when a window is re-homed, each replayed
frame travels under a replay span stamped with the new ShardMap epoch,
so the dead shard's pre-crash work and the successor's adopted work knit
into one tree — :func:`window_timeline` surfaces the epochs it saw under
``"epochs"`` and flags stitched-failover windows with ``"failover"``.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.live.context import trace_id_for_window
from repro.obs.tracer import Span, span_to_dict

__all__ = [
    "LIVE_PHASES",
    "MESH_PHASES",
    "window_timeline",
    "timeline_tree",
]

#: The live window lifecycle, in causal order.  ``live_dispatch`` (the
#: fallback span for message types outside the named lifecycle) is
#: deliberately absent: a timeline is judged on these phases.
LIVE_PHASES = (
    "live_stream_batch",
    "live_ingest",
    "live_synopsis",
    "live_identification",
    "live_candidate_fetch",
    "live_calculation",
    "live_release",
)

#: Cross-node hops a mesh run adds to a window's timeline.
MESH_PHASES = (
    "relay_combine",
    "live_failover_replay",
)


def window_timeline(spans: Iterable[Span], window_start: int) -> dict:
    """The causal timeline of the window starting at ``window_start``.

    Returns a JSON-ready dict::

        {"window_start": ..., "trace_id": ..., "phases": [...],
         "nodes": [...], "epochs": [...], "failover": bool,
         "spans": [span dicts, by start time]}

    ``phases`` and ``nodes`` are the distinct span names and node ids
    seen, so a caller can check coverage at a glance.  ``epochs`` lists
    the ShardMap epochs stamped on failover-replay spans (empty on a
    clean run) and ``failover`` is True when the window's tree stitches
    a dead shard's work to its successor's.
    """
    trace_id = trace_id_for_window(window_start)
    rows = [
        span_to_dict(span)
        for span in spans
        if int(span.attrs.get("trace_id", -1)) == trace_id
    ]
    rows.sort(key=lambda row: (row["start"], row["id"]))
    epochs = sorted({
        int(row["attrs"]["epoch"])
        for row in rows
        if row["name"] == "live_failover_replay" and "epoch" in row["attrs"]
    })
    return {
        "window_start": window_start,
        "trace_id": trace_id,
        "phases": sorted({row["name"] for row in rows}),
        "nodes": sorted({row["node"] for row in rows}),
        "epochs": epochs,
        "failover": bool(epochs),
        "spans": rows,
    }


def timeline_tree(timeline: dict) -> list[dict]:
    """Nest a timeline's spans by parentage.

    Returns the root spans (those whose parent is absent from the
    timeline — normally the stream-layer batch spans and the synopsis
    seal), each with a recursively nested ``children`` list ordered by
    start time.
    """
    rows = timeline["spans"]
    by_id = {row["id"]: {**row, "children": []} for row in rows}
    roots: list[dict] = []
    for row in rows:
        node = by_id[row["id"]]
        parent = by_id.get(row["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots
