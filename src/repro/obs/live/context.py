"""Trace context: the 17 bytes of causality that cross every wire hop.

A :class:`TraceContext` names the trace one frame belongs to (for the
live cluster: one global window — the trace id **is** the window's start
timestamp in ms), the span that caused the frame (the sender's open span,
which becomes the receiver's parent), and the head-based sampling verdict
made once at the trace root and honored everywhere downstream.

The context travels two ways:

* **across the wire** as a header extension
  (:data:`repro.runtime.wire.EXT_TRACE_CONTEXT`), packed/unpacked by the
  codec, and
* **within a process** through a :class:`contextvars.ContextVar`, which
  asyncio copies into every task and callback — so a transport's ``send``
  can stamp the current span's context onto a frame without any plumbing
  through the call stack.

This module deliberately imports nothing from :mod:`repro.runtime`, so
the codec (which sits low in the import graph) can depend on it.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TraceContext",
    "current_context",
    "set_context",
    "context_scope",
    "should_sample",
    "trace_id_for_window",
]

_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One hop's causal coordinates: (trace, parent span, sampled)."""

    trace_id: int
    span_id: int
    sampled: bool = True

    def __post_init__(self) -> None:
        # The wire packs both ids as u64; fail at creation, not at send.
        if not 0 <= self.trace_id <= _U64_MASK:
            raise ValueError(f"trace_id {self.trace_id} does not fit in u64")
        if not 0 <= self.span_id <= _U64_MASK:
            raise ValueError(f"span_id {self.span_id} does not fit in u64")

    def child(self, span_id: int) -> "TraceContext":
        """The context a span opened under this one stamps on its sends."""
        return TraceContext(self.trace_id, span_id, self.sampled)


#: The ambient trace context of the current task (None = untraced).
_CURRENT: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """The trace context of the running task, or ``None``."""
    return _CURRENT.get()


def set_context(context: TraceContext | None):
    """Set the ambient context; returns the token for ``reset``."""
    return _CURRENT.set(context)


@contextmanager
def context_scope(context: TraceContext | None) -> Iterator[None]:
    """Make ``context`` ambient for the duration of the ``with`` block."""
    token = _CURRENT.set(context)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def trace_id_for_window(window_start: int) -> int:
    """The deterministic trace id of the window starting at ``window_start``.

    Using the (event-time, ms) window start directly means every node —
    and every rerun of the same workload — agrees on the trace id with no
    coordination, and a timeline query addresses a trace by the window it
    describes.
    """
    return window_start & _U64_MASK


def _splitmix64(x: int) -> int:
    """A tiny, seedless 64-bit mixer (SplitMix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _U64_MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64_MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64_MASK
    return x ^ (x >> 31)


def should_sample(trace_id: int, rate: float) -> bool:
    """Head-based sampling verdict for ``trace_id`` at ``rate`` ∈ [0, 1].

    Deterministic: the same trace id always gets the same verdict, so the
    decision made once at the trace root (the stream layer) is consistent
    with any node re-deriving it, and reruns sample the same windows.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return _splitmix64(trace_id) < rate * (_U64_MASK + 1)
