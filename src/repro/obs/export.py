"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, Prometheus text.

Three renderings of one traced run:

* **JSONL** — one record per line, spans and messages interleaved on the
  simulated timeline.  Lossless; ``python -m repro report`` consumes it.
* **Chrome trace** — the ``trace_event`` format understood by
  ``chrome://tracing`` and Perfetto.  Spans become complete (``"ph": "X"``)
  events on per-node tracks; messages become events on a per-node network
  track, so channel occupancy renders as a second lane under each node's
  compute lane.
* **Prometheus text** — the metrics registry's scrape rendering, delegated
  to :meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`.

Simulated seconds are converted to microseconds for Chrome (its native
timestamp unit), so a 100 µs link latency is visible at full resolution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.tracer import RecordingTracer

__all__ = [
    "trace_records",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
]

#: Chrome trace timestamps are microseconds.
_US_PER_S = 1e6

#: Synthetic thread ids inside each node's process: compute vs. network.
_COMPUTE_TRACK = 0
_NETWORK_TRACK = 1


def trace_records(tracer: RecordingTracer) -> list[dict]:
    """Flatten a tracer's spans + messages into timeline-ordered dicts."""
    return tracer.records()


def write_jsonl(path: str | Path, tracer: RecordingTracer) -> int:
    """Write one record per line; returns the number of records."""
    rows = trace_records(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return len(rows)


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into record dicts.

    Raises:
        ConfigurationError: If a line is not a JSON object or lacks the
            ``kind`` discriminator.
    """
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from None
            if not isinstance(row, dict) or "kind" not in row:
                raise ConfigurationError(
                    f"{path}:{number}: expected an object with a 'kind' field"
                )
            rows.append(row)
    return rows


def chrome_trace(records: Iterable[dict]) -> dict:
    """Convert trace records to a Chrome ``trace_event`` document.

    Spans map to complete events on ``pid = node`` / ``tid = 0``; messages
    map to complete events on the *sender's* ``tid = 1`` network track with
    their transfer-plus-latency duration (lost messages get a ``lost``
    arg and zero duration).
    """
    events: list[dict] = []
    pids: set[int] = set()
    for record in records:
        if record["kind"] == "span":
            pids.add(record["node"])
            events.append({
                "name": record["name"],
                "cat": "span",
                "ph": "X",
                "pid": record["node"],
                "tid": _COMPUTE_TRACK,
                "ts": record["start"] * _US_PER_S,
                "dur": max(record["end"] - record["start"], 0.0) * _US_PER_S,
                "args": {
                    "id": record["id"],
                    "parent": record["parent"],
                    "window": record["window"],
                    **record.get("attrs", {}),
                },
            })
        elif record["kind"] == "message":
            pids.add(record["src"])
            delivered = record["delivered"]
            duration = (
                (delivered - record["sent"]) if delivered is not None else 0.0
            )
            events.append({
                "name": f"{record['type']} → {record['dst']}",
                "cat": "message",
                "ph": "X",
                "pid": record["src"],
                "tid": _NETWORK_TRACK,
                "ts": record["sent"] * _US_PER_S,
                "dur": duration * _US_PER_S,
                "args": {
                    "bytes": record["bytes"],
                    "events": record["events"],
                    "lost": delivered is None,
                    "window": record.get("window"),
                },
            })
    for pid in sorted(pids):
        label = "node 0 (root)" if pid == 0 else f"node {pid}"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": _COMPUTE_TRACK, "args": {"name": "compute"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": _NETWORK_TRACK, "args": {"name": "network out"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, source: RecordingTracer | Sequence[dict]
) -> int:
    """Write a Chrome trace JSON file; returns the number of trace events."""
    records = (
        trace_records(source)
        if isinstance(source, RecordingTracer)
        else list(source)
    )
    document = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def write_prometheus(path: str | Path, tracer: RecordingTracer) -> None:
    """Write the tracer's metrics registry in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tracer.registry.render_prometheus())
