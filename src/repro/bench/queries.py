"""Benchmark of the live multi-query plane: shared-execution amortization.

One shared run serves N concurrent queries from one event replay, one
pane store per (selector, pane) and one identification cut per (group,
window).  The baseline re-runs the *same* cluster once per query — which
is exactly what N independent single-query deployments would cost.  The
artifact (``BENCH_queries.json``) records both sides so the sub-linear
byte growth the plane exists for shows up as a ratio, and regressions
show up as artifact diffs.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any

from repro.queries.runner import (
    QueryScenarioReport,
    build_specs,
    run_query_scenario,
)

__all__ = [
    "DEFAULT_BENCH_PATH",
    "queries_benchmark",
    "write_queries_bench",
]

DEFAULT_BENCH_PATH = "BENCH_queries.json"


def _run_summary(report: QueryScenarioReport) -> dict[str, Any]:
    return {
        "queries": report.n_queries,
        "deregistered": report.n_deregistered,
        "groups": report.groups,
        "results_served": report.results_served,
        "queries_per_second": round(report.queries_per_second, 3),
        "identification_cuts": report.identification_cuts,
        "duplicate_cuts": report.duplicate_cuts,
        "mismatches": len(report.mismatches),
        "wall_seconds": round(report.wall_seconds, 4),
        "bytes_by_layer": dict(sorted(report.live.bytes_by_layer.items())),
        "total_bytes": report.live.total_bytes,
        "events_sent": report.live.events_sent,
    }


def queries_benchmark(
    *,
    n_queries: int = 8,
    n_keys: int = 3,
    n_locals: int = 3,
    streams_per_local: int = 2,
    rate: float = 400.0,
    duration_s: float = 4.0,
    transport: str = "memory",
    time_scale: float = 0.0,
    churn: bool = False,
    seed: int = 7,
    gamma: int = 32,
    window_ms: int = 1000,
) -> tuple[QueryScenarioReport, dict[str, Any]]:
    """Run the shared scenario plus N single-query baselines.

    Returns:
        The shared run's graded report and the JSON-serializable artifact
        comparing it against the summed independent runs.
    """
    common = dict(
        n_keys=n_keys,
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        event_rate=rate,
        duration_s=duration_s,
        transport=transport,
        seed=seed,
        gamma=gamma,
        window_ms=window_ms,
    )
    shared = run_query_scenario(
        n_queries=n_queries,
        time_scale=time_scale,
        churn=churn,
        **common,
    )
    specs = build_specs(n_queries, n_keys, window_ms=window_ms, gamma=gamma)
    independent_bytes = 0
    independent_aggregation = 0
    independent_cuts = 0
    independent_results = 0
    independent_mismatches = 0
    for spec in specs:
        single = run_query_scenario(specs=[spec], **common)
        independent_bytes += single.live.total_bytes
        independent_aggregation += sum(
            count
            for layer, count in single.live.bytes_by_layer.items()
            if layer in ("local_root", "driver_root")
        )
        independent_cuts += single.identification_cuts
        independent_results += single.results_served
        independent_mismatches += len(single.mismatches)

    shared_aggregation = sum(
        count
        for layer, count in shared.live.bytes_by_layer.items()
        if layer in ("local_root", "driver_root")
    )
    artifact: dict[str, Any] = {
        "benchmark": "multi_query_plane",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "n_queries": n_queries,
            "n_keys": n_keys,
            "n_locals": n_locals,
            "streams_per_local": streams_per_local,
            "rate": rate,
            "duration_s": duration_s,
            "transport": transport,
            "time_scale": time_scale,
            "churn": churn,
            "gamma": gamma,
            "window_ms": window_ms,
            "seed": seed,
        },
        "shared_run": _run_summary(shared),
        "independent_runs": {
            "runs": len(specs),
            "total_bytes": independent_bytes,
            "aggregation_bytes": independent_aggregation,
            "identification_cuts": independent_cuts,
            "results_served": independent_results,
            "mismatches": independent_mismatches,
        },
        "amortization": {
            # Shared run bytes over the sum of N independent runs; < 1.0
            # means serving N queries together is cheaper than apart, and
            # the gap widens as queries share shapes (shared cuts) and
            # overlap windows (shared slices).
            "total_bytes_ratio": round(
                shared.live.total_bytes / independent_bytes, 4
            )
            if independent_bytes
            else None,
            "aggregation_bytes_ratio": round(
                shared_aggregation / independent_aggregation, 4
            )
            if independent_aggregation
            else None,
            "cuts_shared": shared.identification_cuts,
            "cuts_independent": independent_cuts,
        },
    }
    return shared, artifact


def write_queries_bench(path: str, artifact: dict[str, Any]) -> None:
    """Write the artifact JSON (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
