"""Named experiment configurations: one per paper figure plus ablations.

Scaling note (documented in DESIGN.md §2).  The paper runs on a 9-node Xeon
cluster at millions of events per second with γ = 10 000 and local windows of
~10⁶ events, i.e. roughly 100 slices per local window.  A pure-Python
discrete-event simulation cannot push 10⁶ events per window, so every
experiment here scales *both* the CPU budgets and γ down together, keeping
the ratios that drive the figures — slices per window (l/γ ≈ 100), the
relative per-event costs of the systems, and the identical-hardware root
(the paper's cluster nodes are identical machines).  Absolute events/second
are therefore smaller than the paper's; the reproduced quantities are the
*relations* between systems, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.topology import TopologyConfig
from repro.core.query import QuantileQuery
from repro.bench.generator import GeneratorConfig

__all__ = ["bench_topology", "ExperimentSpec", "EXPERIMENTS", "BENCH_OPS"]

#: CPU budget (abstract ops/second) of every simulated cluster node.  The
#: paper's cluster uses identical machines for root and locals.
BENCH_OPS = 1.0e5

#: Slice factor used by the fixed-γ experiments.  Chosen so that local
#: windows at sustainable rates hold l/γ ≈ 100 slices, the same ratio the
#: paper's γ=10 000 produces at its ~10⁶-event windows.
BENCH_GAMMA = 100


def bench_topology(
    n_local_nodes: int,
    *,
    ops_per_second: float = BENCH_OPS,
    uplink_bandwidth_bps: float = 25e9 / 8,
) -> TopologyConfig:
    """Topology with identical node budgets, as in the paper's cluster."""
    return TopologyConfig(
        n_local_nodes=n_local_nodes,
        streams_per_local=0,
        root_ops_per_second=ops_per_second,
        local_ops_per_second=ops_per_second,
        stream_ops_per_second=ops_per_second,
        uplink_bandwidth_bps=uplink_bandwidth_bps,
        downlink_bandwidth_bps=uplink_bandwidth_bps,
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproduced figure.

    Attributes:
        experiment_id: Short id matching DESIGN.md's per-experiment index.
        figure: Paper figure the experiment reproduces.
        title: Human-readable description.
        systems: Systems compared in this experiment.
        n_local_nodes: Local node counts (one entry → fixed topology).
        q: Quantiles evaluated (usually just the median).
        gammas: Slice factors swept (one entry → fixed γ).
        scale_rate_configs: Named per-node scale-rate maps.
        notes: Scaling substitutions relevant to this experiment.
    """

    experiment_id: str
    figure: str
    title: str
    systems: tuple[str, ...]
    n_local_nodes: tuple[int, ...] = (2,)
    q: tuple[float, ...] = (0.5,)
    gammas: tuple[int, ...] = (BENCH_GAMMA,)
    scale_rate_configs: dict = field(default_factory=dict)
    notes: str = ""


def _uniform_scale(n_nodes: int, rate: float = 1.0) -> dict[int, float]:
    return {node_id: rate for node_id in range(1, n_nodes + 1)}


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig5a": ExperimentSpec(
        experiment_id="E1",
        figure="Figure 5a",
        title="Maximum sustainable throughput, 1 root + 2 locals, median",
        systems=("dema", "scotty", "desis", "tdigest"),
        notes="γ scaled with window size (see module docstring).",
    ),
    "fig5b": ExperimentSpec(
        experiment_id="E2",
        figure="Figure 5b",
        title="Latency at each system's sustainable rate",
        systems=("dema", "scotty", "desis", "tdigest"),
    ),
    "fig6a": ExperimentSpec(
        experiment_id="E3",
        figure="Figure 6a",
        title="Network utilization, 2 locals, fixed event volume",
        systems=("dema", "scotty", "desis", "tdigest"),
        notes="Event volume scaled down from 100M/node; byte ratios are "
        "volume-independent.",
    ),
    "fig6b": ExperimentSpec(
        experiment_id="E4",
        figure="Figure 6b",
        title="Network cost as local nodes are added",
        systems=("dema", "scotty", "desis"),
        n_local_nodes=(2, 4, 6, 8),
    ),
    "fig7a": ExperimentSpec(
        experiment_id="E5",
        figure="Figure 7a",
        title="Throughput scalability with local node count",
        systems=("dema", "scotty", "desis"),
        n_local_nodes=(2, 4, 6, 8),
    ),
    "fig7b": ExperimentSpec(
        experiment_id="E6",
        figure="Figure 7b",
        title="Accuracy (1 - MPE) vs Scotty ground truth",
        systems=("dema", "tdigest"),
    ),
    "fig8a": ExperimentSpec(
        experiment_id="E7",
        figure="Figure 8a",
        title="Dema throughput across quantile functions",
        systems=("dema",),
        q=(0.25, 0.5, 0.75),
    ),
    "fig8b": ExperimentSpec(
        experiment_id="E8",
        figure="Figure 8b",
        title="Dema throughput vs γ under skewed scale rates (30% quantile)",
        systems=("dema",),
        q=(0.3,),
        gammas=(2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000),
        scale_rate_configs={
            "dema#1": {1: 1.0, 2: 1.0},
            "dema#2": {1: 1.0, 2: 2.0},
            "dema#10": {1: 1.0, 2: 10.0},
        },
    ),
    "ablation_window_cut": ExperimentSpec(
        experiment_id="A1",
        figure="ablation (ours)",
        title="Candidate events with window-cut pruning vs whole-unit fetch",
        systems=("dema",),
    ),
    "ablation_adaptive_gamma": ExperimentSpec(
        experiment_id="A2",
        figure="ablation (ours)",
        title="Adaptive γ vs fixed γ under drifting event rates",
        systems=("dema",),
    ),
}


def base_generator(event_rate: float, duration_s: float, seed: int = 42) -> GeneratorConfig:
    """Generator defaults shared by all experiments."""
    return GeneratorConfig(
        event_rate=event_rate, duration_s=duration_s, seed=seed
    )


def median_query(gamma: int = BENCH_GAMMA, *, q: float = 0.5,
                 adaptive: bool = False) -> QuantileQuery:
    """One-second tumbling-window quantile query, the paper's default."""
    return QuantileQuery(
        q=q, window_length_ms=1000, gamma=gamma, adaptive=adaptive
    )
