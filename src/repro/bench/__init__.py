"""Benchmark substrate: workload generation, measurement harness, reporting.

The paper's generators replay the DEBS 2013 soccer dataset with two knobs —
*scale rate* (multiplies values, shifting per-node distributions) and *event
rate* (drives local window sizes).  :mod:`repro.bench.generator` provides a
synthetic stand-in with exactly those knobs; :mod:`repro.bench.harness`
implements the paper's metrics (maximum sustainable throughput, latency,
network cost, accuracy); :mod:`repro.bench.runner` regenerates every figure
of the evaluation section and renders the tables recorded in EXPERIMENTS.md.
"""

from repro.bench.generator import GeneratorConfig, SensorStreamGenerator, workload
from repro.bench.workloads import (
    bench_topology,
    EXPERIMENTS,
    ExperimentSpec,
)
from repro.bench.harness import (
    ThroughputResult,
    measure_latency,
    run_workload,
    sustainable_throughput,
)
from repro.bench.accuracy import accuracy_vs_ground_truth, mean_percentage_error
from repro.bench.charts import bar_chart, series_chart, sparkline
from repro.bench.model import SystemModel, predict
from repro.bench.sweep import SweepSpec, run_sweep

__all__ = [
    "bar_chart",
    "series_chart",
    "sparkline",
    "SystemModel",
    "predict",
    "SweepSpec",
    "run_sweep",
    "GeneratorConfig",
    "SensorStreamGenerator",
    "workload",
    "bench_topology",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ThroughputResult",
    "sustainable_throughput",
    "measure_latency",
    "run_workload",
    "accuracy_vs_ground_truth",
    "mean_percentage_error",
]
