"""Analytical performance model of every system under evaluation.

Closed-form predictions of network cost and sustainable throughput, derived
from the same cost constants the simulator charges (sort = 4 ops/cmp,
merge = 1, deserialize = 0.75/byte, ingest = 4/event).  Two uses:

* **what-if analysis** — size a deployment (how many edge nodes? which γ?)
  in microseconds instead of simulating;
* **simulator validation** — the test suite checks the model against the
  discrete-event simulation; agreement means the simulator charges exactly
  the costs it claims to.

The model intentionally mirrors the operators:
local capacity solves ``R · c_local(R) = budget`` by fixed point (per-event
cost depends on the window size through the ``log`` of the sorted-insert),
root capacity solves the analogous equation over the aggregate arrival
rate, and Dema's root additionally carries the per-window candidate term
``m·γ`` that is independent of the event rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.messages import MESSAGE_HEADER_BYTES, SYNOPSIS_WIRE_BYTES
from repro.network.simulator import (
    INGEST_OPS,
    MERGE_OPS_PER_CMP,
    RECEIVE_OPS_BASE,
    RECEIVE_OPS_PER_BYTE,
    SORT_OPS_PER_CMP,
)
from repro.streaming.events import EVENT_WIRE_BYTES

__all__ = ["SystemModel", "ThroughputPrediction", "predict"]

#: Slicing pass at the Dema local node, per event.
_SLICE_OPS_PER_EVENT = 0.5

#: Serving one candidate event at the Dema local node.
_SERVE_OPS_PER_EVENT = 0.5

#: Identification work per synopsis at the Dema root.
_IDENTIFY_OPS_PER_SYNOPSIS = 4.0

#: Per-event digesting cost of the sketch systems (matches the operators).
_TDIGEST_OPS_PER_EVENT = 8.0
_QDIGEST_OPS_PER_EVENT = 6.0

#: Typical serialized sketch sizes per node per window (weakly dependent on
#: the data; calibrated to the implementations' steady state).
_TDIGEST_CENTROIDS = 70
_QDIGEST_NODES = 700


@dataclass(frozen=True, slots=True)
class ThroughputPrediction:
    """Predicted sustainable throughput and its binding resource."""

    system: str
    per_node_rate: float
    bottleneck: str  # "local" or "root"

    @property
    def aggregate_rate(self) -> float:
        """Events/second across all local nodes."""
        return self.per_node_rate  # overwritten by SystemModel.predict


@dataclass(frozen=True, slots=True)
class SystemModel:
    """Deployment parameters shared by all predictions.

    Attributes:
        n_local_nodes: Edge node count.
        node_ops_per_second: CPU budget of every node (identical hardware,
            as in the paper's cluster).
        window_length_s: Tumbling window length in seconds.
        gamma: Dema's slice factor.
        candidate_slices: Dema's expected candidate-slice count ``m``.
        batch_size: Events per forwarded batch (header amortization).
    """

    n_local_nodes: int = 2
    node_ops_per_second: float = 1e5
    window_length_s: float = 1.0
    gamma: int = 100
    candidate_slices: int = 3
    batch_size: int = 512

    def __post_init__(self) -> None:
        if self.n_local_nodes < 1:
            raise ConfigurationError("need at least one local node")
        if self.gamma < 2:
            raise ConfigurationError(f"gamma must be >= 2, got {self.gamma}")

    # ------------------------------------------------------------------
    # Network cost (bytes over all channels for a fixed event volume).
    # ------------------------------------------------------------------

    def network_bytes(
        self, system: str, events_per_node_window: int, n_windows: int
    ) -> float:
        """Predicted total bytes for a fixed workload."""
        n, l, w = self.n_local_nodes, events_per_node_window, n_windows
        if system in ("scotty", "desis"):
            event_bytes = n * l * w * EVENT_WIRE_BYTES
            batches = n * w * math.ceil(l / self.batch_size)
            # Each batch pays the frame header plus its u32 event count.
            headers = batches * (MESSAGE_HEADER_BYTES + 4)
            if system == "scotty":
                # Watermark message per node per window.
                headers += n * w * (MESSAGE_HEADER_BYTES + 8)
            return event_bytes + headers
        if system == "dema":
            slices_per_node = math.ceil(l / self.gamma)
            synopsis_bytes = n * w * (
                slices_per_node * SYNOPSIS_WIRE_BYTES
                + 12
                + MESSAGE_HEADER_BYTES
            )
            m = self.candidate_slices
            # One request per node per window (header + u32 count) plus a
            # u32 slice index for each of the m requested candidates.
            request_bytes = w * (n * (MESSAGE_HEADER_BYTES + 4) + m * 4)
            candidate_bytes = w * m * (
                MESSAGE_HEADER_BYTES + 8 + self.gamma * EVENT_WIRE_BYTES
            )
            return synopsis_bytes + request_bytes + candidate_bytes
        if system == "tdigest":
            return self.n_local_nodes * n_windows * (
                MESSAGE_HEADER_BYTES + 4 + _TDIGEST_CENTROIDS * 16
            )
        if system == "qdigest":
            return self.n_local_nodes * n_windows * (
                MESSAGE_HEADER_BYTES + 12 + _QDIGEST_NODES * 16
            )
        raise ConfigurationError(f"unknown system {system!r}")

    # ------------------------------------------------------------------
    # Throughput capacity.
    # ------------------------------------------------------------------

    def _local_ops_per_event(self, system: str, local_window: float) -> float:
        log_term = math.log2(max(local_window, 2.0))
        if system == "scotty":
            return INGEST_OPS
        if system == "desis":
            return INGEST_OPS + log_term
        if system == "dema":
            return INGEST_OPS + log_term + _SLICE_OPS_PER_EVENT
        if system == "tdigest":
            return INGEST_OPS + _TDIGEST_OPS_PER_EVENT
        if system == "qdigest":
            return INGEST_OPS + _QDIGEST_OPS_PER_EVENT
        raise ConfigurationError(f"unknown system {system!r}")

    def _root_ops_per_window(self, system: str, per_node_rate: float) -> float:
        n = self.n_local_nodes
        global_window = n * per_node_rate * self.window_length_s
        receive_event = RECEIVE_OPS_PER_BYTE * EVENT_WIRE_BYTES
        if system == "scotty":
            per_event = receive_event + INGEST_OPS + SORT_OPS_PER_CMP * (
                math.log2(max(global_window, 2.0))
            )
            return global_window * per_event
        if system == "desis":
            per_event = receive_event + MERGE_OPS_PER_CMP * math.log2(max(n, 2))
            return global_window * per_event + n * RECEIVE_OPS_BASE
        if system == "dema":
            slices = global_window / self.gamma
            synopsis_receive = (
                RECEIVE_OPS_PER_BYTE * slices * SYNOPSIS_WIRE_BYTES
                + n * RECEIVE_OPS_BASE
            )
            identify = _IDENTIFY_OPS_PER_SYNOPSIS * slices * max(
                1.0, math.log2(max(slices, 2.0))
            )
            # Candidate transfer cannot exceed the window itself (a huge γ
            # fetches at most every event once).
            candidates = min(
                self.candidate_slices * self.gamma, global_window
            )
            candidate_cost = candidates * (
                receive_event
                + MERGE_OPS_PER_CMP
                * math.log2(max(self.candidate_slices, 2))
            )
            return synopsis_receive + identify + candidate_cost
        if system == "tdigest":
            per_node = (
                RECEIVE_OPS_PER_BYTE * (_TDIGEST_CENTROIDS * 16 + 4)
                + RECEIVE_OPS_BASE
                + 16.0 * _TDIGEST_CENTROIDS
            )
            return n * per_node
        if system == "qdigest":
            per_node = (
                RECEIVE_OPS_PER_BYTE * (_QDIGEST_NODES * 16 + 12)
                + RECEIVE_OPS_BASE
                + 8.0 * _QDIGEST_NODES
            )
            return n * per_node
        raise ConfigurationError(f"unknown system {system!r}")

    def local_capacity(self, system: str) -> float:
        """Max per-node rate the local node sustains (fixed point)."""
        budget = self.node_ops_per_second * self.window_length_s
        rate = budget / 10.0
        for _ in range(30):
            window = rate * self.window_length_s
            per_event = self._local_ops_per_event(system, window)
            new_rate = budget / (per_event * self.window_length_s)
            if abs(new_rate - rate) < 1e-6 * max(rate, 1.0):
                rate = new_rate
                break
            rate = new_rate
        return rate

    def root_capacity(self, system: str) -> float:
        """Max per-node rate the root sustains (fixed point)."""
        budget = self.node_ops_per_second * self.window_length_s
        rate = budget / (10.0 * self.n_local_nodes)
        for _ in range(60):
            ops = self._root_ops_per_window(system, rate)
            if ops <= 0:
                return float("inf")
            scale = budget / ops
            new_rate = rate * scale
            if abs(new_rate - rate) < 1e-6 * max(rate, 1.0):
                rate = new_rate
                break
            # Damped update keeps the iteration stable when the cost has a
            # rate-independent component (Dema's candidate term).
            rate = 0.5 * rate + 0.5 * new_rate
        return rate

    def throughput(self, system: str) -> ThroughputPrediction:
        """Predicted sustainable per-node rate and its bottleneck."""
        local = self.local_capacity(system)
        root = self.root_capacity(system)
        if local <= root:
            return ThroughputPrediction(system, local, "local")
        return ThroughputPrediction(system, root, "root")

    def aggregate_throughput(self, system: str) -> float:
        """Predicted events/second across all local nodes."""
        return self.throughput(system).per_node_rate * self.n_local_nodes


def predict(
    system: str,
    *,
    n_local_nodes: int = 2,
    node_ops_per_second: float = 1e5,
    gamma: int = 100,
    candidate_slices: int = 3,
) -> ThroughputPrediction:
    """Convenience wrapper: one system's throughput prediction."""
    model = SystemModel(
        n_local_nodes=n_local_nodes,
        node_ops_per_second=node_ops_per_second,
        gamma=gamma,
        candidate_slices=candidate_slices,
    )
    return model.throughput(system)
