"""Hot-path microbenchmarks: the perf-regression harness.

Every PR is supposed to make a hot path measurably faster (ROADMAP north
star); this module is the ruler.  It times the five paths a live event
actually crosses — local ingest + sort, window cut + γ-slicing, t-digest
merging, wire codec round trips, and the end-to-end live cluster — and
writes ``BENCH_hotpath.json`` with the numbers next to the committed
pre-optimization baseline, so a regression shows up as an artifact diff
*and* as a nonzero exit from ``python -m repro perf --smoke``.

Benchmark boundaries are chosen to stay comparable across refactors:

``ingest_sort``
    N shuffled events through :class:`SortedLocalWindow` (add + seal),
    i.e. everything between "event arrives" and "sorted run exists",
    regardless of where an implementation chooses to pay the sort.
``cut_slice``
    γ-slicing an already sorted run into synopses.
``tdigest_merge``
    Root-style :meth:`TDigest.merge_all` over pre-built digests.
``codec_roundtrip``
    ``encode_frame`` + ``decode_frame`` of full event batches.
``live``
    The live asyncio cluster, same configuration as ``BENCH_live.json``.

All rates are events (or merges) per second of wall clock, best of
``repeats`` runs so background noise biases every comparison the same
direction (down).
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable

from repro.core.slicing import slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow
from repro.network.messages import EventBatchMessage
from repro.runtime.codec import decode_frame, encode_frame
from repro.sketches.tdigest import TDigest
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = [
    "DEFAULT_HOTPATH_PATH",
    "FULL",
    "SMOKE",
    "HotpathConfig",
    "REGRESSION_TOLERANCE",
    "baseline_key",
    "check_regressions",
    "run_hotpath",
    "write_hotpath",
]

DEFAULT_HOTPATH_PATH = "BENCH_hotpath.json"

#: A current metric may fall this far below its committed baseline before
#: the smoke check fails the build (machines differ; optimizations should
#: clear the pre-optimization numbers by far more than this).
REGRESSION_TOLERANCE = 0.25


@dataclass(frozen=True)
class HotpathConfig:
    """Sizes for one harness run; ``SMOKE`` shrinks them for CI."""

    ingest_events: int = 200_000
    slice_events: int = 200_000
    gamma: int = 100
    merge_digests: int = 200
    merge_values_per_digest: int = 1_000
    codec_batch: int = 512
    codec_rounds: int = 200
    live_rate: float = 20_000.0
    live_duration_s: float = 3.0
    live_transport: str = "tcp"
    repeats: int = 3
    seed: int = 42


FULL = HotpathConfig()

#: CI-sized configuration.  Only the expensive end-to-end live benchmark
#: is shrunk; the microbenchmarks keep their full sizes because they cost
#: seconds anyway and sub-millisecond timed regions are too noisy to gate
#: a build on (a 20k-event slice pass varies 2× run to run; the 200k one
#: is stable within a few percent).
SMOKE = HotpathConfig(
    live_rate=4_000.0,
    live_duration_s=2.0,
    repeats=2,
)


def _best_of(fn: Callable[[], int], repeats: int) -> float:
    """Best observed rate over ``repeats`` runs of ``fn``.

    ``fn`` performs one full benchmark run and returns the number of items
    it processed; the rate is items per wall second.

    Garbage left behind by *earlier* benchmarks must not be collected
    inside a later benchmark's timed region (it halves the measured rate
    of the sub-millisecond ones), so each run collects first and then
    times with the collector disabled — the same hygiene :mod:`timeit`
    applies.
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            items = fn()
            elapsed = time.perf_counter() - t0
        finally:
            if was_enabled:
                gc.enable()
        if elapsed > 0:
            best = max(best, items / elapsed)
    return best


def _shuffled_events(n: int, seed: int) -> list[Event]:
    rng = random.Random(f"hotpath:{seed}")
    return [
        Event(value=rng.random() * 1000.0, timestamp=i % 1000,
              node_id=1, seq=i)
        for i in range(n)
    ]


def bench_ingest_sort(config: HotpathConfig) -> float:
    """Events/s through SortedLocalWindow add + seal (arrival → sorted run)."""
    events = _shuffled_events(config.ingest_events, config.seed)

    def run() -> int:
        window = SortedLocalWindow()
        add = window.add
        for event in events:
            add(event)
        window.seal()
        return len(events)

    return _best_of(run, config.repeats)


def bench_cut_slice(config: HotpathConfig) -> float:
    """Events/s through γ-slicing of an already sorted run."""
    events = sorted(
        _shuffled_events(config.slice_events, config.seed + 1)
    )

    def run() -> int:
        slice_sorted_events(events, config.gamma, node_id=1)
        return len(events)

    return _best_of(run, config.repeats)


def bench_tdigest_merge(config: HotpathConfig) -> float:
    """Digest merges/s through TDigest.merge_all (root-side aggregation)."""
    rng = random.Random(f"hotpath-digest:{config.seed}")
    digests = []
    for _ in range(config.merge_digests):
        digest = TDigest()
        digest.add_all(
            rng.random() * 100.0
            for _ in range(config.merge_values_per_digest)
        )
        digest.centroids()  # flush buffers outside the timed region
        digests.append(digest)

    def run() -> int:
        TDigest.merge_all(digests)
        return len(digests)

    return _best_of(run, config.repeats)


def bench_codec_roundtrip(config: HotpathConfig) -> float:
    """Events/s through encode_frame + decode_frame of full event batches."""
    events = tuple(_shuffled_events(config.codec_batch, config.seed + 2))
    message = EventBatchMessage(
        sender=1, window=Window(0, 1000), events=events
    )

    def run() -> int:
        for _ in range(config.codec_rounds):
            decode_frame(encode_frame(message))
        return config.codec_rounds * len(events)

    return _best_of(run, config.repeats)


def bench_ingest_columnar(config: HotpathConfig) -> float:
    """Events/s through columnar batch ingest (add_all + seal on arrays).

    Same arrival → sorted-run boundary as ``ingest_sort``, but fed the
    way the live path feeds it: batches of :class:`EventColumns`.
    """
    events = EventColumns.from_events(
        _shuffled_events(config.ingest_events, config.seed)
    )
    batch = max(1, config.codec_batch)
    chunks = [events[i:i + batch] for i in range(0, len(events), batch)]

    def run() -> int:
        window = SortedLocalWindow()
        for chunk in chunks:
            window.add_all(chunk)
        window.seal()
        return len(events)

    return _best_of(run, config.repeats)


def bench_codec_columnar(config: HotpathConfig) -> float:
    """Events/s through encode + decode of *columnar* event batches —
    the wire path live streams actually take (no object materialization
    on either side)."""
    events = EventColumns.from_events(
        _shuffled_events(config.codec_batch, config.seed + 2)
    )
    message = EventBatchMessage(
        sender=1, window=Window(0, 1000), events=events
    )

    def run() -> int:
        for _ in range(config.codec_rounds):
            decode_frame(encode_frame(message))
        return config.codec_rounds * len(events)

    return _best_of(run, config.repeats)


def bench_live(config: HotpathConfig) -> float:
    """Events/s through the live asyncio cluster (BENCH_live configuration)."""
    from repro.bench.live import live_benchmark

    best = 0.0
    for _ in range(max(1, min(2, config.repeats))):
        _, report = live_benchmark(
            rate=config.live_rate,
            duration_s=config.live_duration_s,
            transport=config.live_transport,
            seed=config.seed,
        )
        best = max(best, report.events_per_second)
    return best


#: Metric name → benchmark callable; iteration order is report order.
BENCHMARKS: dict[str, Callable[[HotpathConfig], float]] = {
    "ingest_sort_events_per_s": bench_ingest_sort,
    "ingest_columnar_events_per_s": bench_ingest_columnar,
    "cut_slice_events_per_s": bench_cut_slice,
    "tdigest_merges_per_s": bench_tdigest_merge,
    "codec_roundtrip_events_per_s": bench_codec_roundtrip,
    "codec_columnar_events_per_s": bench_codec_columnar,
    "live_events_per_s": bench_live,
}


def run_hotpath(
    config: HotpathConfig = FULL,
    *,
    include_live: bool = True,
    progress: Callable[[str, float], None] | None = None,
) -> dict[str, float]:
    """Run every hot-path benchmark; returns metric name → rate."""
    metrics: dict[str, float] = {}
    for name, bench in BENCHMARKS.items():
        if name == "live_events_per_s" and not include_live:
            continue
        rate = bench(config)
        metrics[name] = rate
        if progress is not None:
            progress(name, rate)
    return metrics


def check_regressions(
    current: dict[str, float],
    baseline: dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Metrics that regressed more than ``tolerance`` below ``baseline``.

    Metrics missing from either side are skipped — a new benchmark must
    not fail the build before its baseline lands.
    """
    failures = []
    for name, reference in baseline.items():
        measured = current.get(name)
        if measured is None or reference <= 0:
            continue
        if measured < (1.0 - tolerance) * reference:
            failures.append(
                f"{name}: {measured:,.0f}/s is "
                f"{1.0 - measured / reference:.1%} below the committed "
                f"baseline {reference:,.0f}/s (tolerance {tolerance:.0%})"
            )
    return failures


def load_artifact(path: str) -> dict[str, Any] | None:
    """Read a previously written ``BENCH_hotpath.json``; ``None`` if absent."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def baseline_key(mode: str) -> str:
    """The artifact key holding ``mode``'s committed baseline numbers.

    Smoke runs shrink the live benchmark, so their numbers live under
    ``baseline_smoke`` and are only ever compared against smoke runs;
    full runs compare against ``baseline``.  Comparing across modes is
    exactly the bug this split exists to prevent.
    """
    return "baseline_smoke" if mode == "smoke" else "baseline"


def write_hotpath(
    path: str,
    config: HotpathConfig,
    current: dict[str, float],
    baselines: "dict[str, dict[str, float]] | None",
    *,
    mode: str = "full",
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the benchmark artifact; returns the written dict.

    ``baselines`` maps artifact key (``"baseline"``, ``"baseline_smoke"``)
    to that mode's committed pre-optimization numbers.  **Both** keys are
    always written back, so a smoke run can never clobber the full-mode
    baseline (or vice versa); ``speedup`` is current/baseline against the
    *running* mode's own baseline only.
    """
    baselines = baselines or {}
    own = baselines.get(baseline_key(mode)) or {}
    payload: dict[str, Any] = {
        "benchmark": "hotpath",
        "mode": mode,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": asdict(config),
        "baseline": baselines.get("baseline") or {},
        "baseline_smoke": baselines.get("baseline_smoke") or {},
        "current": current,
        "speedup": {
            name: current[name] / own[name]
            for name in current
            if own.get(name)
        },
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def smoke_config() -> HotpathConfig:
    """The CI-sized configuration (exported for tests)."""
    return replace(SMOKE)
