"""Synthetic DEBS-2013-style sensor stream generator.

The paper's generators replay the DEBS 2013 soccer-monitoring dataset from
per-node offsets and expose two knobs (Section 4, "Generators"):

* **scale rate** — multiplies event values, shifting a node's distribution;
  identical scale rates → overlapping distributions (more compound slices),
  very different scale rates → disjoint distributions.
* **event rate** — events per second, which drives local window sizes.

The stand-in process is a reflected mean-reverting random walk: values are
autocorrelated (like positions/velocities of tracked players), bounded below
by zero (so scaled streams still overlap near the origin, which is what
makes the paper's Dema #2 / #10 configurations "denser on the left"), and
span roughly ``[0, 2·mean]``.  Replay offsets are emulated by seeding each
node's walk independently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from repro.errors import GeneratorError
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event

__all__ = [
    "GeneratorConfig",
    "SensorStreamGenerator",
    "workload",
    "workload_columns",
]


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Parameters of one node's synthetic sensor stream.

    Attributes:
        event_rate: Events per second; must be > 0.
        duration_s: Stream duration in seconds; must be > 0.
        scale_rate: Multiplier applied to every value (the paper's knob).
        seed: Base RNG seed; combined with node id and replay offset.
        replay_offset: Emulates replaying the dataset from a different
            position — different offsets give independent value walks.
        mean: Long-run mean of the (unscaled) value process.
        reversion: Mean-reversion strength per step, in ``(0, 1]``.
        volatility: Per-step noise standard deviation.
        max_arrival_delay_ms: Upper bound on the per-event network delay
            between event time and arrival at the local node.  Non-zero
            values produce out-of-order arrival streams (events arrive in
            arrival order, not event-time order).
    """

    event_rate: float
    duration_s: float
    scale_rate: float = 1.0
    seed: int = 42
    replay_offset: int = 0
    mean: float = 40.0
    reversion: float = 0.02
    volatility: float = 6.0
    max_arrival_delay_ms: int = 0

    def __post_init__(self) -> None:
        if self.event_rate <= 0:
            raise GeneratorError(f"event_rate must be > 0, got {self.event_rate}")
        if self.duration_s <= 0:
            raise GeneratorError(f"duration_s must be > 0, got {self.duration_s}")
        if self.scale_rate <= 0:
            raise GeneratorError(f"scale_rate must be > 0, got {self.scale_rate}")
        if not 0.0 < self.reversion <= 1.0:
            raise GeneratorError(
                f"reversion must be in (0, 1], got {self.reversion}"
            )
        if self.volatility < 0:
            raise GeneratorError(
                f"volatility must be >= 0, got {self.volatility}"
            )
        if self.max_arrival_delay_ms < 0:
            raise GeneratorError(
                f"max_arrival_delay_ms must be >= 0, got "
                f"{self.max_arrival_delay_ms}"
            )

    @property
    def n_events(self) -> int:
        """Number of events the stream will contain."""
        return max(1, int(round(self.event_rate * self.duration_s)))


class SensorStreamGenerator:
    """Generates one node's deterministic event stream."""

    def __init__(self, config: GeneratorConfig) -> None:
        self._config = config

    @property
    def config(self) -> GeneratorConfig:
        """The generator parameters."""
        return self._config

    def values(self, node_id: int) -> np.ndarray:
        """The raw (scaled) value series for ``node_id``."""
        from scipy.signal import lfilter

        cfg = self._config
        rng = np.random.default_rng((cfg.seed, node_id, cfg.replay_offset))
        n = cfg.n_events
        noise = rng.normal(0.0, cfg.volatility, size=n)
        noise[0] += rng.normal(0.0, cfg.volatility * 4)
        # AR(1) deviation process x_i = (1 - reversion) * x_{i-1} + noise_i,
        # vectorized as an IIR filter; reflecting at zero keeps every stream
        # anchored at the origin so scaled streams still overlap there.
        deviations = lfilter([1.0], [1.0, -(1.0 - cfg.reversion)], noise)
        values = np.abs(cfg.mean + deviations)
        return values * cfg.scale_rate

    def timestamps(self, node_id: int) -> np.ndarray:
        """Event-time timestamps in milliseconds, evenly spread with jitter."""
        cfg = self._config
        rng = np.random.default_rng(
            (cfg.seed + 1_000_003, node_id, cfg.replay_offset)
        )
        n = cfg.n_events
        span_ms = cfg.duration_s * 1000.0
        base = np.linspace(0.0, span_ms, num=n, endpoint=False)
        jitter = rng.uniform(0.0, span_ms / n, size=n)
        stamps = np.floor(base + jitter).astype(np.int64)
        np.maximum.accumulate(stamps, out=stamps)
        return stamps

    def generate(self, node_id: int) -> list[Event]:
        """Build the node's full event stream in timestamp order."""
        values = self.values(node_id)
        stamps = self.timestamps(node_id)
        return [
            Event(
                value=float(values[i]),
                timestamp=int(stamps[i]),
                node_id=node_id,
                seq=i,
            )
            for i in range(len(values))
        ]

    def generate_columns(self, node_id: int) -> EventColumns:
        """The node's stream as one columnar batch — no per-event objects.

        Bit-identical to :meth:`generate`: the float64 values and int64
        timestamps land in the wire columns through the same conversions
        (f64 bits preserved; timestamps are non-negative and in u32
        range for any realistic duration).
        """
        return EventColumns.from_arrays(
            self.values(node_id), self.timestamps(node_id), node_id
        )

    def arrival_times(self, node_id: int) -> np.ndarray:
        """Per-event arrival timestamps (event time + random network delay)."""
        cfg = self._config
        stamps = self.timestamps(node_id)
        if cfg.max_arrival_delay_ms == 0:
            return stamps
        rng = np.random.default_rng(
            (cfg.seed + 7_777_777, node_id, cfg.replay_offset)
        )
        delays = rng.integers(
            0, cfg.max_arrival_delay_ms + 1, size=len(stamps)
        )
        return stamps + delays

    def generate_with_arrivals(
        self, node_id: int
    ) -> list[tuple[Event, int]]:
        """Build ``(event, arrival_ms)`` pairs in event-time order."""
        events = self.generate(node_id)
        arrivals = self.arrival_times(node_id)
        return [(event, int(arrivals[i])) for i, event in enumerate(events)]


def workload(
    node_ids: list[int] | range,
    base_config: GeneratorConfig,
    *,
    scale_rates: Mapping[int, float] | None = None,
    event_rates: Mapping[int, float] | None = None,
) -> dict[int, list[Event]]:
    """Generate streams for many nodes with per-node overrides.

    Args:
        node_ids: The local-node ids to generate for.
        base_config: Shared parameters; each node replays from its own
            offset (derived from its id).
        scale_rates: Optional per-node scale-rate overrides.
        event_rates: Optional per-node event-rate overrides.

    Returns:
        Event streams keyed by node id, each in timestamp order.
    """
    streams: dict[int, list[Event]] = {}
    for node_id in node_ids:
        config = _node_config(
            base_config, node_id, scale_rates, event_rates
        )
        streams[node_id] = SensorStreamGenerator(config).generate(node_id)
    return streams


def workload_columns(
    node_ids: list[int] | range,
    base_config: GeneratorConfig,
    *,
    scale_rates: Mapping[int, float] | None = None,
    event_rates: Mapping[int, float] | None = None,
) -> dict[int, EventColumns]:
    """:func:`workload`, emitted as columnar batches (the live fast path).

    Same streams event for event; only the container differs.
    """
    streams: dict[int, EventColumns] = {}
    for node_id in node_ids:
        config = _node_config(
            base_config, node_id, scale_rates, event_rates
        )
        streams[node_id] = SensorStreamGenerator(config).generate_columns(
            node_id
        )
    return streams


def _node_config(
    base_config: GeneratorConfig,
    node_id: int,
    scale_rates: Mapping[int, float] | None,
    event_rates: Mapping[int, float] | None,
) -> GeneratorConfig:
    config = replace(
        base_config, replay_offset=base_config.replay_offset + node_id
    )
    if scale_rates is not None and node_id in scale_rates:
        config = replace(config, scale_rate=scale_rates[node_id])
    if event_rates is not None and node_id in event_rates:
        config = replace(config, event_rate=event_rates[node_id])
    return config
