"""Regenerates every figure of the paper's evaluation section.

Each ``exp_*`` function reproduces one figure and returns structured data;
``main`` runs a selection and prints the tables recorded in EXPERIMENTS.md.

Usage::

    python -m repro.bench.runner --all          # every experiment (slow)
    python -m repro.bench.runner fig5a fig7b    # a selection
    python -m repro.bench.runner --quick        # scaled-down smoke pass
"""

from __future__ import annotations

import argparse
import sys
from typing import Mapping

from repro.network.metrics import LatencyStats
from repro.bench.accuracy import accuracy_vs_ground_truth
from repro.bench.charts import bar_chart, series_chart
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import (
    ThroughputResult,
    capacity_estimate,
    measure_latency,
    run_workload,
    sustainable_throughput,
)
from repro.bench.reporting import (
    format_bytes,
    format_rate,
    format_seconds,
    format_table,
)
from repro.bench.workloads import BENCH_GAMMA, bench_topology, median_query

__all__ = [
    "exp_fig5a",
    "exp_fig5b",
    "exp_fig6a",
    "exp_fig6b",
    "exp_fig7a",
    "exp_fig7b",
    "exp_fig8a",
    "exp_fig8b",
    "exp_ablation_window_cut",
    "exp_ablation_adaptive_gamma",
    "exp_ablation_bandwidth",
    "main",
]

_FIG5_SYSTEMS = ("dema", "scotty", "desis", "tdigest")


def exp_fig5a(*, iterations: int = 8, seed: int = 42) -> dict[str, ThroughputResult]:
    """Figure 5a: maximum sustainable throughput, 1 root + 2 locals."""
    topology = bench_topology(2)
    query = median_query(BENCH_GAMMA)
    return {
        system: sustainable_throughput(
            system, query, topology, iterations=iterations, seed=seed
        )
        for system in _FIG5_SYSTEMS
    }


def exp_fig5b(
    throughputs: Mapping[str, ThroughputResult] | None = None,
    *,
    seed: int = 42,
) -> dict[str, LatencyStats]:
    """Figure 5b: latency under a common load every system sustains.

    The paper reports latency "under the same topology and conditions as the
    throughput experiment"; with identical inputs required for a fair
    latency comparison, the common rate is 90 % of the *slowest* system's
    sustainable rate.
    """
    topology = bench_topology(2)
    query = median_query(BENCH_GAMMA)
    if throughputs is None:
        throughputs = {
            system: capacity_estimate(system, query, topology, seed=seed)
            for system in _FIG5_SYSTEMS
        }
    common_rate = 0.9 * min(t.per_node_rate for t in throughputs.values())
    return {
        system: measure_latency(
            system, query, topology, common_rate, seed=seed
        )
        for system in _FIG5_SYSTEMS
    }


def _scaled_gamma(expected_global_window: float) -> int:
    """γ sized for the expected window via the paper's cost model.

    The paper's γ=10 000 is chosen for its ~10⁶-event windows; at other
    window sizes the comparable choice is the Section 3.3 optimum with a
    typical candidate count of a few slices.
    """
    from repro.core.adaptive import optimal_gamma

    return optimal_gamma(max(int(expected_global_window), 1), 4)


def exp_fig6a(
    *, per_node_rate: float = 50_000.0, n_windows: int = 3, seed: int = 42
) -> dict[str, dict[str, float]]:
    """Figure 6a: network utilization on a fixed event volume, 2 locals.

    Network cost is byte-exact and independent of CPU budgets, so this runs
    a larger volume than the throughput probes.  γ is set near the cost
    model's optimum for the window size (see :func:`_scaled_gamma`).
    """
    topology = bench_topology(2)
    query = median_query(_scaled_gamma(2 * per_node_rate))
    config = GeneratorConfig(
        event_rate=per_node_rate, duration_s=float(n_windows), seed=seed
    )
    streams = workload(range(1, 3), config)
    results: dict[str, dict[str, float]] = {}
    scotty_bytes: float | None = None
    for system in ("scotty", "desis", "dema", "tdigest"):
        report = run_workload(system, query, topology, streams)
        total = float(report.network.total_bytes)
        if system == "scotty":
            scotty_bytes = total
        assert scotty_bytes is not None
        results[system] = {
            "bytes": total,
            "reduction_vs_scotty": 1.0 - total / scotty_bytes,
        }
    return results


def exp_fig6b(
    *,
    node_counts: tuple[int, ...] = (2, 4, 6, 8),
    per_node_rate: float = 5_000.0,
    n_windows: int = 3,
    seed: int = 42,
) -> dict[str, dict[int, float]]:
    """Figure 6b: total network cost as local nodes are added."""
    results: dict[str, dict[int, float]] = {
        s: {} for s in ("scotty", "desis", "dema")
    }
    for n_nodes in node_counts:
        query = median_query(_scaled_gamma(n_nodes * per_node_rate))
        topology = bench_topology(n_nodes)
        config = GeneratorConfig(
            event_rate=per_node_rate, duration_s=float(n_windows), seed=seed
        )
        streams = workload(range(1, n_nodes + 1), config)
        for system in results:
            report = run_workload(system, query, topology, streams)
            results[system][n_nodes] = float(report.network.total_bytes)
    return results


def exp_fig7a(
    *,
    node_counts: tuple[int, ...] = (2, 4, 6, 8),
    seed: int = 42,
) -> dict[str, dict[int, float]]:
    """Figure 7a: aggregate throughput scalability with node count."""
    query = median_query(BENCH_GAMMA)
    results: dict[str, dict[int, float]] = {
        s: {} for s in ("dema", "desis", "scotty")
    }
    for n_nodes in node_counts:
        topology = bench_topology(n_nodes)
        for system in results:
            estimate = capacity_estimate(
                system, query, topology, seed=seed
            )
            results[system][n_nodes] = estimate.aggregate_rate
    return results


def exp_fig7b(
    *, per_node_rate: float = 3_000.0, n_windows: int = 8, seed: int = 42
) -> dict[str, float]:
    """Figure 7b: accuracy (1 − MPE) against Scotty's exact results."""
    topology = bench_topology(2)
    query = median_query(BENCH_GAMMA)
    config = GeneratorConfig(
        event_rate=per_node_rate, duration_s=float(n_windows), seed=seed
    )
    streams = workload(range(1, 3), config)
    truths_by_window = {
        record.window: record.value
        for record in run_workload("scotty", query, topology, streams).outcomes
        if record.value is not None
    }
    results: dict[str, float] = {"scotty": 1.0}
    for system in ("dema", "tdigest"):
        report = run_workload(system, query, topology, streams)
        estimates, truths = [], []
        for record in report.outcomes:
            truth = truths_by_window.get(record.window)
            if record.value is not None and truth is not None:
                estimates.append(record.value)
                truths.append(truth)
        results[system] = accuracy_vs_ground_truth(estimates, truths)
    return results


def exp_fig8a(
    *, quantiles: tuple[float, ...] = (0.25, 0.5, 0.75), iterations: int = 7,
    seed: int = 42,
) -> dict[float, ThroughputResult]:
    """Figure 8a: Dema throughput across quantile functions."""
    topology = bench_topology(2)
    return {
        q: sustainable_throughput(
            "dema",
            median_query(BENCH_GAMMA, q=q),
            topology,
            iterations=iterations,
            seed=seed,
        )
        for q in quantiles
    }


def exp_fig8b(
    *,
    gammas: tuple[int, ...] = (2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000),
    seed: int = 42,
) -> dict[str, dict[int, float]]:
    """Figure 8b: Dema throughput vs γ for three scale-rate configs, q=30%.

    Dema #1 runs both locals at scale rate 1, #2 at (1, 2) and #10 at
    (1, 10); skewed configs put the 30 % quantile on the denser side.
    """
    topology = bench_topology(2)
    configs = {
        "dema#1": {1: 1.0, 2: 1.0},
        "dema#2": {1: 1.0, 2: 2.0},
        "dema#10": {1: 1.0, 2: 10.0},
    }
    results: dict[str, dict[int, float]] = {}
    for label, scale_rates in configs.items():
        series: dict[int, float] = {}
        for gamma in gammas:
            estimate = capacity_estimate(
                "dema",
                median_query(gamma, q=0.3),
                topology,
                seed=seed,
                scale_rates=scale_rates,
            )
            series[gamma] = estimate.aggregate_rate
        results[label] = series
    return results


def exp_ablation_window_cut(
    *, per_node_rate: float = 5_000.0, n_windows: int = 4, seed: int = 42
) -> dict[str, float]:
    """Ablation A1: candidate events with and without window-cut pruning.

    Without pruning, the whole overlap unit containing the quantile rank is
    fetched; window-cut keeps only members whose rank bounds reach the rank.
    """
    from repro.streaming.windows import TumblingWindows
    from repro.core.slicing import slice_sorted_events
    from repro.core.units import build_units
    from repro.core.window_cut import window_cut

    config = GeneratorConfig(
        event_rate=per_node_rate, duration_s=float(n_windows), seed=seed
    )
    streams = workload(range(1, 3), config)
    assigner = TumblingWindows(1000)
    per_window: dict = {}
    for node_id, events in streams.items():
        for event in events:
            per_window.setdefault(
                assigner.window_for(event.timestamp), {}
            ).setdefault(node_id, []).append(event)

    cut_total = 0
    unit_total = 0
    window_total = 0
    for window_events in per_window.values():
        synopses = []
        for node_id, events in window_events.items():
            sliced = slice_sorted_events(
                sorted(events, key=lambda e: e.key), BENCH_GAMMA, node_id
            )
            synopses.extend(sliced.synopses)
        total = sum(s.count for s in synopses)
        rank = (total + 1) // 2
        cut = window_cut(synopses, rank)
        cut_total += cut.candidate_events
        for unit in build_units(synopses):
            if unit.contains_rank(rank):
                unit_total += unit.size
        window_total += total
    return {
        "candidate_events_with_cut": float(cut_total),
        "candidate_events_without_cut": float(unit_total),
        "total_events": float(window_total),
    }


def exp_ablation_adaptive_gamma(
    *, n_windows: int = 10, seed: int = 42
) -> dict[str, float]:
    """Ablation A2: adaptive γ vs fixed extremes under a drifting rate."""
    import numpy as np

    from repro.streaming.events import Event

    topology = bench_topology(2)
    rng = np.random.default_rng(seed)
    streams: dict[int, list[Event]] = {}
    for node_id in (1, 2):
        events = []
        seq = 0
        for window_index in range(n_windows):
            rate = int(1_500 * (1.0 + 0.8 * np.sin(window_index / 2.0)))
            config = GeneratorConfig(
                event_rate=rate, duration_s=1.0,
                seed=seed + window_index, replay_offset=node_id,
            )
            from repro.bench.generator import SensorStreamGenerator

            for event in SensorStreamGenerator(config).generate(node_id):
                events.append(
                    Event(
                        value=event.value,
                        timestamp=event.timestamp + window_index * 1000,
                        node_id=node_id,
                        seq=seq,
                    )
                )
                seq += 1
        streams[node_id] = events

    results: dict[str, float] = {}
    for label, gamma, adaptive in (
        ("fixed γ=2", 2, False),
        ("fixed γ=50", 50, False),
        ("fixed γ=2000", 2000, False),
        ("adaptive", 50, True),
    ):
        query = median_query(gamma, adaptive=adaptive)
        report = run_workload("dema", query, topology, streams)
        results[label] = float(report.network.total_bytes)
    return results


def exp_ablation_bandwidth() -> dict[str, dict[str, float]]:
    """Ablation A3: latency under constrained (500 kbit/s) uplinks."""
    import importlib.util
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "..",
        "benchmarks", "bench_ablation_bandwidth.py",
    )
    path = os.path.normpath(path)
    if not os.path.exists(path):  # installed without the benchmarks tree
        from repro.bench.generator import GeneratorConfig, workload as _workload
        from repro.bench.harness import run_workload as _run

        def latencies(bps):
            query = median_query(gamma=100)
            topology = bench_topology(2, uplink_bandwidth_bps=bps)
            streams = _workload(
                [1, 2],
                GeneratorConfig(event_rate=700.0, duration_s=6.0, seed=31),
            )
            return {
                system: _run(system, query, topology, streams).latency.p50
                for system in ("dema", "scotty", "desis", "tdigest")
            }

        return {
            "datacenter": latencies(25e9 / 8),
            "constrained": latencies(5e5 / 8),
        }
    spec = importlib.util.spec_from_file_location("bench_a3", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = module.run_experiment()
    return {
        "datacenter": results["datacenter"],
        "constrained": results["wifi"],
    }


def _print_ablation_bandwidth(results: dict[str, dict[str, float]]) -> None:
    datacenter, constrained = results["datacenter"], results["constrained"]
    rows = [
        [
            system,
            format_seconds(datacenter[system]),
            format_seconds(constrained[system]),
            f"{constrained[system] / datacenter[system]:.2f}x",
        ]
        for system in datacenter
    ]
    print(format_table(
        ["system", "25 Gbit/s p50", "500 kbit/s p50", "slowdown"], rows,
        title="Ablation A3 — latency under constrained uplinks",
    ))


def _print_fig5a(results: dict[str, ThroughputResult]) -> None:
    ordered = sorted(results.items(), key=lambda kv: -kv[1].aggregate_rate)
    rows = [
        [system, format_rate(r.per_node_rate), format_rate(r.aggregate_rate)]
        for system, r in ordered
    ]
    print(format_table(
        ["system", "per-node", "aggregate"], rows,
        title="Figure 5a — maximum sustainable throughput (2 local nodes)",
    ))
    print(bar_chart(
        [system for system, _ in ordered],
        [r.aggregate_rate for _, r in ordered],
        fmt=format_rate,
    ))


def _print_fig5b(results: dict[str, LatencyStats]) -> None:
    ordered = sorted(results.items(), key=lambda kv: kv[1].p50)
    rows = [
        [system, format_seconds(lat.p50), format_seconds(lat.p95)]
        for system, lat in ordered
    ]
    print(format_table(
        ["system", "latency p50", "latency p95"], rows,
        title="Figure 5b — latency at a common sustainable rate",
    ))
    print(bar_chart(
        [system for system, _ in ordered],
        [lat.p50 for _, lat in ordered],
        fmt=format_seconds,
    ))


def _print_fig6a(results: dict[str, dict[str, float]]) -> None:
    rows = [
        [
            system,
            format_bytes(data["bytes"]),
            f"{data['reduction_vs_scotty']:.1%}",
        ]
        for system, data in results.items()
    ]
    print(format_table(
        ["system", "network bytes", "reduction vs Scotty"], rows,
        title="Figure 6a — network utilization (fixed volume, 2 locals)",
    ))


def _print_series(
    title: str,
    results: dict[str, dict[int, float]],
    *,
    x_label: str,
    fmt=format_bytes,
) -> None:
    xs = sorted(next(iter(results.values())))
    headers = [x_label] + list(results)
    rows = [
        [str(x)] + [fmt(results[system][x]) for system in results]
        for x in xs
    ]
    print(format_table(headers, rows, title=title))
    print(series_chart(
        xs,
        {system: [results[system][x] for x in xs] for system in results},
        fmt=fmt,
    ))


def _print_fig7b(results: dict[str, float]) -> None:
    rows = [[system, f"{accuracy:.4%}"] for system, accuracy in results.items()]
    print(format_table(
        ["system", "accuracy (1-MPE)"], rows,
        title="Figure 7b — accuracy vs Scotty ground truth",
    ))


def _print_fig8a(results: dict[float, ThroughputResult]) -> None:
    rows = [
        [f"{q:.0%}", format_rate(r.aggregate_rate)]
        for q, r in sorted(results.items())
    ]
    print(format_table(
        ["quantile", "aggregate throughput"], rows,
        title="Figure 8a — Dema throughput across quantile functions",
    ))


def _print_ablation_window_cut(results: dict[str, float]) -> None:
    rows = [[key, f"{value:,.0f}"] for key, value in results.items()]
    print(format_table(
        ["metric", "events"], rows,
        title="Ablation A1 — window-cut pruning",
    ))


def _print_ablation_adaptive(results: dict[str, float]) -> None:
    rows = [[key, format_bytes(value)] for key, value in results.items()]
    print(format_table(
        ["policy", "network bytes"], rows,
        title="Ablation A2 — adaptive γ under drifting rates",
    ))


def _serialize(value):
    """Convert experiment results into JSON-compatible structures."""
    if isinstance(value, ThroughputResult):
        return {
            "system": value.system,
            "per_node_rate": value.per_node_rate,
            "aggregate_rate": value.aggregate_rate,
        }
    if isinstance(value, LatencyStats):
        return {"p50": value.p50, "p95": value.p95, "mean": value.mean}
    if isinstance(value, dict):
        return {str(key): _serialize(item) for key, item in value.items()}
    return value


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints the tables recorded in EXPERIMENTS.md."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="fig5a fig5b ... or empty")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down pass (fewer iterations, smaller volumes)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured series to a JSON file",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="run one traced Dema deployment under the benchmark workload "
        "and write a Chrome trace_event file to PATH",
    )
    args = parser.parse_args(argv)
    collected: dict = {}

    if args.trace is not None:
        from repro.obs import RecordingTracer
        from repro.obs.export import write_chrome_trace

        tracer = RecordingTracer()
        run_workload(
            "dema",
            median_query(BENCH_GAMMA),
            bench_topology(2),
            workload(
                [1, 2],
                GeneratorConfig(event_rate=2_000.0, duration_s=4.0, seed=42),
            ),
            tracer=tracer,
        )
        n_events = write_chrome_trace(args.trace, tracer)
        print(f"wrote {args.trace} ({n_events} trace events)")
        if not (args.all or args.quick or args.experiments):
            return 0

    selected = set(args.experiments)
    if args.all or (not selected and not args.quick):
        selected = {
            "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
            "fig8a", "fig8b", "ablation_window_cut",
            "ablation_adaptive_gamma", "ablation_bandwidth",
        }
    if args.quick and not selected:
        selected = {"fig5a", "fig6a", "fig7b"}

    iterations = 5 if args.quick else 8
    fig5a_results = None
    if "fig5a" in selected:
        fig5a_results = exp_fig5a(iterations=iterations)
        collected["fig5a"] = fig5a_results
        _print_fig5a(fig5a_results)
        print()
    if "fig5b" in selected:
        results = exp_fig5b(fig5a_results)
        collected["fig5b"] = results
        _print_fig5b(results)
        print()
    if "fig6a" in selected:
        rate = 10_000.0 if args.quick else 50_000.0
        results = exp_fig6a(per_node_rate=rate)
        collected["fig6a"] = results
        _print_fig6a(results)
        print()
    if "fig6b" in selected:
        results = exp_fig6b()
        collected["fig6b"] = results
        _print_series(
            "Figure 6b — network cost vs local node count",
            results, x_label="nodes",
        )
        print()
    if "fig7a" in selected:
        results = exp_fig7a()
        collected["fig7a"] = results
        _print_series(
            "Figure 7a — aggregate throughput vs local node count",
            results, x_label="nodes", fmt=format_rate,
        )
        print()
    if "fig7b" in selected:
        results = exp_fig7b()
        collected["fig7b"] = results
        _print_fig7b(results)
        print()
    if "fig8a" in selected:
        results = exp_fig8a(iterations=5 if args.quick else 7)
        collected["fig8a"] = results
        _print_fig8a(results)
        print()
    if "fig8b" in selected:
        results = exp_fig8b()
        collected["fig8b"] = results
        _print_series(
            "Figure 8b — Dema throughput vs γ (q=30%)",
            results, x_label="gamma", fmt=format_rate,
        )
        print()
    if "ablation_window_cut" in selected:
        results = exp_ablation_window_cut()
        collected["ablation_window_cut"] = results
        _print_ablation_window_cut(results)
        print()
    if "ablation_adaptive_gamma" in selected:
        results = exp_ablation_adaptive_gamma()
        collected["ablation_adaptive_gamma"] = results
        _print_ablation_adaptive(results)
        print()
    if "ablation_bandwidth" in selected:
        results = exp_ablation_bandwidth()
        collected["ablation_bandwidth"] = results
        _print_ablation_bandwidth(results)
        print()
    if args.json is not None:
        import json

        with open(args.json, "w") as handle:
            json.dump(_serialize(collected), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
