"""Throughput-vs-locals scaling curve for the live cluster.

The mesh work (ROADMAP item 1) scales the cluster *out* and the columnar
work (item 3) scales each node *up*; this curve is where both are
measured together.  It replays the same aggregate workload through
clusters of increasing local-node counts and records the wall-clock
events/second of each point, so a change that speeds one node but
serializes the fan-in (or vice versa) is visible as a bent curve rather
than a single lucky number.

Written as ``BENCH_scaling.json`` by ``python -m repro perf --curve``
and uploaded by the CI perf job next to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any, Callable, Sequence

from repro.bench.live import live_benchmark

__all__ = [
    "DEFAULT_SCALING_PATH",
    "FULL_LOCALS",
    "SMOKE_LOCALS",
    "scaling_curve",
    "write_scaling",
]

DEFAULT_SCALING_PATH = "BENCH_scaling.json"

#: Local-node counts measured by a full curve.
FULL_LOCALS = (1, 2, 4, 8)

#: CI-sized curve: fewer and smaller points.
SMOKE_LOCALS = (1, 2, 4)


def scaling_curve(
    *,
    locals_counts: Sequence[int] = FULL_LOCALS,
    rate: float = 20_000.0,
    duration_s: float = 3.0,
    transport: str = "tcp",
    streams_per_local: int = 2,
    seed: int = 42,
    columnar: bool = True,
    progress: "Callable[[int, float], None] | None" = None,
) -> list[dict[str, Any]]:
    """One curve point per entry of ``locals_counts``.

    ``rate`` is the *aggregate* event rate, held constant across points —
    every cluster size moves the same total workload, so the curve shows
    how adding locals redistributes a fixed load rather than growing it.
    """
    points: list[dict[str, Any]] = []
    for n_locals in locals_counts:
        config, report = live_benchmark(
            n_locals=n_locals,
            streams_per_local=streams_per_local,
            rate=rate,
            duration_s=duration_s,
            transport=transport,
            seed=seed,
            columnar=columnar,
        )
        point = {
            "n_locals": n_locals,
            "streams_per_local": streams_per_local,
            "events_sent": report.events_sent,
            "wall_seconds": report.wall_seconds,
            "events_per_second": report.events_per_second,
            "windows": report.windows,
            "total_bytes": report.total_bytes,
        }
        points.append(point)
        if progress is not None:
            progress(n_locals, report.events_per_second)
    return points


def write_scaling(
    path: str,
    points: list[dict[str, Any]],
    *,
    mode: str = "full",
    transport: str = "tcp",
    rate: float = 20_000.0,
    columnar: bool = True,
) -> dict[str, Any]:
    """Write the curve artifact; returns the written dict."""
    payload: dict[str, Any] = {
        "benchmark": "scaling_curve",
        "mode": mode,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "transport": transport,
            "aggregate_rate": rate,
            "columnar": columnar,
        },
        "points": points,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
