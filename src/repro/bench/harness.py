"""Measurement harness: sustainable throughput, latency, network cost.

Throughput follows Karimov et al.'s *maximum sustainable throughput*: the
highest ingestion rate a system can serve without falling behind.  In the
simulator "falling behind" is visible as per-window result latency that
drifts upward window over window; a rate is sustainable when latencies stay
bounded by a budget across a multi-window run.  The harness binary-searches
the rate, running each probe on a fresh deployment fed by the deterministic
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import HarnessError
from repro.network.driver import MS_PER_SECOND
from repro.network.topology import TopologyConfig
from repro.streaming.events import Event
from repro.core.query import QuantileQuery
from repro.baselines.base import build_system
from repro.bench.generator import GeneratorConfig, workload

__all__ = [
    "ThroughputResult",
    "probe_rate",
    "sustainable_throughput",
    "capacity_estimate",
    "measure_latency",
    "run_workload",
]

#: A probe is sustainable when no window's latency exceeds this multiple of
#: the window length and latency does not keep growing across windows.
LATENCY_BUDGET_WINDOWS = 1.5

#: Windows simulated per probe; the first is warm-up.
PROBE_WINDOWS = 6


@dataclass(frozen=True, slots=True)
class ThroughputResult:
    """Outcome of a sustainable-throughput search."""

    system: str
    per_node_rate: float
    n_local_nodes: int
    probes: int

    @property
    def aggregate_rate(self) -> float:
        """Events per second across all local nodes — the paper's metric."""
        return self.per_node_rate * self.n_local_nodes


def _build_streams(
    rate: float,
    n_nodes: int,
    n_windows: int,
    *,
    seed: int,
    scale_rates: Mapping[int, float] | None,
) -> dict[int, list[Event]]:
    config = GeneratorConfig(
        event_rate=rate, duration_s=float(n_windows), seed=seed
    )
    return workload(
        range(1, n_nodes + 1), config, scale_rates=scale_rates
    )


def probe_rate(
    system: str,
    query: QuantileQuery,
    topology: TopologyConfig,
    rate: float,
    *,
    n_windows: int = PROBE_WINDOWS,
    seed: int = 42,
    scale_rates: Mapping[int, float] | None = None,
) -> tuple[bool, list[float]]:
    """Run one deployment at ``rate`` events/s/node; judge sustainability.

    Returns:
        ``(sustainable, per_window_latencies)`` with warm-up included in the
        latency list but excluded from the judgement.
    """
    streams = _build_streams(
        rate, topology.n_local_nodes, n_windows,
        seed=seed, scale_rates=scale_rates,
    )
    engine = build_system(system, query, topology)
    report = engine.run(streams)

    expected = n_windows * MS_PER_SECOND / query.window_length_ms
    if len(report.outcomes) < expected:
        return False, []

    latencies = [
        outcome.result_time - outcome.window.end / MS_PER_SECOND
        for outcome in sorted(report.outcomes, key=lambda o: o.window)
    ]
    steady = latencies[1:]
    budget = LATENCY_BUDGET_WINDOWS * query.window_length_ms / MS_PER_SECOND
    if max(steady) > budget:
        return False, latencies
    # Reject monotone drift even under the budget: the backlog would keep
    # growing on a longer run.
    drift = steady[-1] - steady[0]
    if len(steady) >= 3 and drift > 0.25 * budget and steady[-1] > steady[-2] > steady[-3]:
        return False, latencies
    return True, latencies


def sustainable_throughput(
    system: str,
    query: QuantileQuery,
    topology: TopologyConfig,
    *,
    rate_lo: float = 100.0,
    rate_hi: float = 50_000.0,
    iterations: int = 9,
    n_windows: int = PROBE_WINDOWS,
    seed: int = 42,
    scale_rates: Mapping[int, float] | None = None,
) -> ThroughputResult:
    """Binary-search the maximum sustainable per-node event rate.

    Raises:
        HarnessError: If even ``rate_lo`` is unsustainable.
    """
    ok, _ = probe_rate(
        system, query, topology, rate_lo,
        n_windows=n_windows, seed=seed, scale_rates=scale_rates,
    )
    if not ok:
        raise HarnessError(
            f"{system} cannot sustain even {rate_lo} events/s/node"
        )
    probes = 1
    lo, hi = rate_lo, rate_hi
    ok_hi, _ = probe_rate(
        system, query, topology, rate_hi,
        n_windows=n_windows, seed=seed, scale_rates=scale_rates,
    )
    probes += 1
    if ok_hi:
        lo = rate_hi
    else:
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            ok, _ = probe_rate(
                system, query, topology, mid,
                n_windows=n_windows, seed=seed, scale_rates=scale_rates,
            )
            probes += 1
            if ok:
                lo = mid
            else:
                hi = mid
    return ThroughputResult(
        system=system,
        per_node_rate=lo,
        n_local_nodes=topology.n_local_nodes,
        probes=probes,
    )


def measure_latency(
    system: str,
    query: QuantileQuery,
    topology: TopologyConfig,
    per_node_rate: float,
    *,
    n_windows: int = 10,
    seed: int = 42,
    scale_rates: Mapping[int, float] | None = None,
    tracer=None,
):
    """Latency statistics at a fixed rate (use ~90 % of the sustainable one)."""
    streams = _build_streams(
        per_node_rate, topology.n_local_nodes, n_windows,
        seed=seed, scale_rates=scale_rates,
    )
    engine = build_system(system, query, topology, tracer=tracer)
    report = engine.run(streams)
    return report.latency


def run_workload(
    system: str,
    query: QuantileQuery,
    topology: TopologyConfig,
    streams: Mapping[int, Sequence[Event]],
    *,
    tracer=None,
):
    """Run one deployment over explicit streams; returns the full report.

    Pass a :class:`~repro.obs.tracer.RecordingTracer` to capture the run's
    spans, messages and metrics alongside the report.
    """
    engine = build_system(system, query, topology, tracer=tracer)
    return engine.run(streams)


def capacity_estimate(
    system: str,
    query: QuantileQuery,
    topology: TopologyConfig,
    *,
    probe_per_node_rate: float = 1_000.0,
    n_windows: int = 4,
    refinements: int = 2,
    seed: int = 42,
    scale_rates: Mapping[int, float] | None = None,
) -> ThroughputResult:
    """Estimate sustainable throughput from CPU utilization at a probe rate.

    Runs a deployment at a probe rate, reads every node's accepted CPU
    work, and extrapolates: the sustainable per-node rate is roughly
    ``probe_rate / max_node_utilization``.  Because some costs are fixed per
    window rather than proportional to the rate (e.g. Dema's candidate
    transfer is ~``m·γ`` events regardless of window size), the estimate is
    refined by re-probing at each new estimate until it stabilizes — a
    fixed-point iteration that converges in 1–2 rounds.  A handful of runs
    instead of a binary search's ~10 makes large parameter sweeps (Fig. 7a's
    node scaling, Fig. 8b's γ sweep) tractable.
    """
    duration = float(n_windows) * query.window_length_ms / MS_PER_SECOND

    def utilization_at(rate: float) -> float:
        streams = _build_streams(
            rate, topology.n_local_nodes, n_windows,
            seed=seed, scale_rates=scale_rates,
        )
        engine = build_system(system, query, topology)
        engine.run(streams)
        utilization = 0.0
        for node in engine.simulator.nodes.values():
            budget = node.cpu.ops_per_second * duration
            utilization = max(utilization, node.cpu.total_ops / budget)
        if utilization <= 0:
            raise HarnessError(
                f"{system} reported zero CPU work; cannot extrapolate"
            )
        return utilization

    probes = 0
    rate = probe_per_node_rate
    estimate = rate / utilization_at(rate)
    probes += 1
    for _ in range(refinements):
        rate = estimate
        new_estimate = rate / utilization_at(rate)
        probes += 1
        if abs(new_estimate - estimate) <= 0.02 * estimate:
            estimate = new_estimate
            break
        estimate = new_estimate
    return ThroughputResult(
        system=system,
        per_node_rate=estimate,
        n_local_nodes=topology.n_local_nodes,
        probes=probes,
    )
