"""Scale-out benchmark: the mesh runtime from 2 to 100+ locals.

For each point on the locals curve the benchmark runs the same workload
twice — flat (every local dials every shard) and relayed (fan-in-F
relays combine frames) — asserts both are bit-identical to the
single-root engine oracle, and records wall-clock throughput, per-layer
byte/latency breakdowns and root ingress.  The headline numbers are the
throughput-vs-locals curve and the relay tier's root-ingress savings
(bytes and, more dramatically, frames: ingress frames drop from one per
local to one per relay per window phase).

The result is written as ``BENCH_scale.json`` so scaling regressions
show up as artifact diffs in CI.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any

from repro.bench.generator import GeneratorConfig, workload
from repro.core.query import QuantileQuery
from repro.errors import HarnessError
from repro.mesh import (
    MeshConfig,
    MeshRunReport,
    classify_outcomes,
    mesh_oracle,
    run_mesh,
)
from repro.network.metrics import LatencyStats

__all__ = ["scale_benchmark", "write_scale_bench", "DEFAULT_SCALE_PATH"]

DEFAULT_SCALE_PATH = "BENCH_scale.json"

#: Locals-curve points; the top end is the 100-local acceptance run.
DEFAULT_CURVE = (2, 10, 50, 100)


def _latency_dict(stats: LatencyStats) -> "dict[str, float]":
    if stats.count == 0:
        return {"count": 0}
    return {
        "count": stats.count,
        "mean_ms": stats.mean * 1e3,
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
        "max_ms": stats.max * 1e3,
    }


def _run_dict(report: MeshRunReport) -> "dict[str, Any]":
    ingress_frames = sum(
        count
        for layer, count in report.messages_by_layer.items()
        if layer in ("local_root", "relay_root")
    )
    return {
        "wall_seconds": report.wall_seconds,
        "events_per_second": report.events_per_second,
        "bytes_by_layer": report.bytes_by_layer,
        "messages_by_layer": report.messages_by_layer,
        "total_bytes": report.total_bytes,
        "root_ingress_bytes": report.root_ingress_bytes,
        "root_link_frames": ingress_frames,
        "seal_to_result": _latency_dict(report.seal_to_result),
        "relay_frames_combined": report.relay_frames_combined,
        "relay_sections_combined": report.relay_sections_combined,
    }


def scale_benchmark(
    *,
    curve: "tuple[int, ...]" = DEFAULT_CURVE,
    streams_per_local: int = 1,
    n_shards: int = 4,
    relay_fanin: int = 8,
    event_rate: int = 60,
    duration_s: int = 3,
    q: float = 0.5,
    gamma: int = 10_000,
    seed: int = 42,
    transport: str = "memory",
    timeout_s: float = 300.0,
) -> "dict[str, Any]":
    """Run the locals curve, flat vs relayed, and return the summary.

    Every run is checked against the single-root oracle: any window that
    is not bit-identical fails the benchmark with a
    :class:`~repro.errors.HarnessError` — the scale numbers are only
    worth reporting for a correct mesh.
    """
    query = QuantileQuery(q=q, gamma=gamma)
    points: "list[dict[str, Any]]" = []
    for n_locals in curve:
        local_ids = list(range(1, n_locals + 1))
        streams = workload(
            local_ids,
            GeneratorConfig(
                event_rate=event_rate, duration_s=duration_s, seed=seed
            ),
        )
        shards = min(n_shards, n_locals)
        flat_config = MeshConfig(
            n_locals=n_locals,
            streams_per_local=streams_per_local,
            n_shards=shards,
            query=query,
            transport=transport,
            timeout_s=timeout_s,
        )
        truth = mesh_oracle(streams, flat_config)
        flat = run_mesh(flat_config, streams)
        _require_identical("flat", n_locals, truth, flat)

        relay_config = MeshConfig(
            n_locals=n_locals,
            streams_per_local=streams_per_local,
            n_shards=shards,
            relay_fanin=relay_fanin,
            query=query,
            transport=transport,
            timeout_s=timeout_s,
        )
        relayed = run_mesh(relay_config, streams)
        _require_identical("relay", n_locals, truth, relayed)

        flat_dict = _run_dict(flat)
        relay_dict = _run_dict(relayed)
        ingress_saved = 1.0 - (
            relayed.root_ingress_bytes / flat.root_ingress_bytes
            if flat.root_ingress_bytes
            else 1.0
        )
        frames_saved = 1.0 - (
            relay_dict["root_link_frames"] / flat_dict["root_link_frames"]
            if flat_dict["root_link_frames"]
            else 1.0
        )
        points.append({
            "n_locals": n_locals,
            "n_shards": shards,
            "relay_fanin": relay_fanin,
            "windows": flat.windows,
            "events_sent": flat.events_sent,
            "flat": flat_dict,
            "relay": relay_dict,
            "relay_ingress_savings": ingress_saved,
            "relay_frame_savings": frames_saved,
        })
    return {
        "benchmark": "mesh_scale",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "streams_per_local": streams_per_local,
            "relay_fanin": relay_fanin,
            "event_rate": event_rate,
            "duration_s": duration_s,
            "q": q,
            "gamma": gamma,
            "seed": seed,
            "transport": transport,
        },
        "curve": points,
    }


def _require_identical(
    mode: str, n_locals: int, truth, report: MeshRunReport
) -> None:
    classes = classify_outcomes(truth, report.outcomes)
    if classes["recovered"] != len(truth) or classes["mismatch"]:
        raise HarnessError(
            f"{mode} mesh run at {n_locals} locals is not bit-identical "
            f"to the single-root oracle: {classes}"
        )


def write_scale_bench(
    path: str = DEFAULT_SCALE_PATH, **kwargs: Any
) -> "dict[str, Any]":
    """Run :func:`scale_benchmark` and write the JSON artifact."""
    result = scale_benchmark(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return result
