"""Accuracy metrics: mean percentage error and the paper's 1 − MPE.

The accuracy experiment (Fig. 7b) feeds identical inputs to every system,
takes Scotty's exact answers as ground truth, computes the mean percentage
error of each system's per-window results, and reports accuracy = 1 − MPE.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import HarnessError

__all__ = ["mean_percentage_error", "accuracy_vs_ground_truth"]


def mean_percentage_error(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """Mean of ``|estimate - truth| / |truth|`` over paired windows.

    Raises:
        HarnessError: On length mismatch, empty input, or a zero truth
            (percentage error undefined).
    """
    if len(estimates) != len(truths):
        raise HarnessError(
            f"got {len(estimates)} estimates for {len(truths)} ground truths"
        )
    if not truths:
        raise HarnessError("cannot compute MPE over zero windows")
    total = 0.0
    for estimate, truth in zip(estimates, truths):
        if truth == 0:
            raise HarnessError("ground truth of 0 makes percentage error undefined")
        total += abs(estimate - truth) / abs(truth)
    return total / len(truths)


def accuracy_vs_ground_truth(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """The paper's accuracy metric: ``1 - MPE``, floored at 0."""
    return max(0.0, 1.0 - mean_percentage_error(estimates, truths))
