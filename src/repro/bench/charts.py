"""Terminal charts: horizontal bars and sparklines for experiment output.

The runner prints each figure as a table plus a small chart so the *shape*
the paper plots — orderings, linear growth, the γ inverted-U — is visible
directly in the terminal log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["bar_chart", "sparkline", "series_chart"]

#: Eight-level block characters for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    fmt: Callable[[float], str] = lambda v: f"{v:,.0f}",
    title: str = "",
) -> str:
    """Render horizontal bars scaled to the largest value.

    Args:
        labels: One label per bar.
        values: Non-negative values, parallel to ``labels``.
        width: Character width of the longest bar.
        fmt: Value formatter appended after each bar.
        title: Optional heading line.

    Raises:
        ConfigurationError: On mismatched lengths, no data, or negatives.
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not values:
        raise ConfigurationError("cannot chart zero bars")
    if any(value < 0 for value in values):
        raise ConfigurationError("bar values must be non-negative")

    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else round(width * value / peak)
        if value > 0:
            length = max(length, 1)
        bar = "█" * length
        lines.append(f"{label.ljust(label_width)}  {bar} {fmt(value)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Render a series as one line of block characters.

    Values are scaled to the series' own min/max; a flat series renders at
    mid height.

    Raises:
        ConfigurationError: On empty input.
    """
    if not values:
        raise ConfigurationError("cannot sparkline an empty series")
    low, high = min(values), max(values)
    if high == low:
        return _BLOCKS[3] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[index])
    return "".join(chars)


def series_chart(
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    fmt: Callable[[float], str] = lambda v: f"{v:,.0f}",
    title: str = "",
) -> str:
    """Render several series as labelled sparklines with end values.

    Args:
        xs: The shared x-axis (shown as a range annotation).
        series: Named y-series, each parallel to ``xs``.
        fmt: Formatter for the first/last values shown beside each line.
        title: Optional heading line.

    Raises:
        ConfigurationError: On empty input or length mismatches.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )
    name_width = max(len(name) for name in series)
    lines = [title] if title else []
    for name, values in series.items():
        lines.append(
            f"{name.ljust(name_width)}  {sparkline(values)}  "
            f"{fmt(values[0])} → {fmt(values[-1])}"
        )
    lines.append(
        f"{'x'.ljust(name_width)}  {xs[0]} … {xs[-1]} ({len(xs)} points)"
    )
    return "\n".join(lines)
