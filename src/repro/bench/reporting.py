"""Plain-text table rendering for experiment results.

The runner prints the same rows the paper's figures plot; EXPERIMENTS.md
records these tables next to the paper's qualitative claims.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_rate", "format_bytes", "format_seconds"]


def format_rate(events_per_second: float) -> str:
    """Human-readable events/second."""
    if events_per_second >= 1e6:
        return f"{events_per_second / 1e6:.2f}M ev/s"
    if events_per_second >= 1e3:
        return f"{events_per_second / 1e3:.1f}k ev/s"
    return f"{events_per_second:.0f} ev/s"


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count."""
    for unit, factor in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if n_bytes >= factor:
            return f"{n_bytes / factor:.2f} {unit}"
    return f"{n_bytes:.0f} B"


def format_seconds(seconds: float) -> str:
    """Human-readable duration."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} µs"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], *, title: str = ""
) -> str:
    """Render a monospaced table with aligned columns."""
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)
