"""Wall-clock benchmark of the live asyncio runtime.

Unlike every other benchmark in :mod:`repro.bench`, which measures a
*simulated* clock, this one measures the real one: how many events per
second the live cluster actually moves through real serialization and a
real transport, and how long a sealed window takes to come back as a
quantile.  The result is written as ``BENCH_live.json`` so regressions in
the runtime path show up as artifact diffs.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any

from repro.bench.generator import (
    GeneratorConfig,
    workload,
    workload_columns,
)
from repro.core.query import QuantileQuery
from repro.network.metrics import LatencyStats
from repro.obs.live.config import TelemetryConfig
from repro.runtime.cluster import LiveClusterConfig, LiveRunReport, run_live

__all__ = ["live_benchmark", "write_live_bench", "DEFAULT_BENCH_PATH"]

DEFAULT_BENCH_PATH = "BENCH_live.json"


def _latency_dict(stats: LatencyStats) -> dict[str, float]:
    if stats.count == 0:
        return {"count": 0}
    return {
        "count": stats.count,
        "mean_ms": stats.mean * 1e3,
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
        "max_ms": stats.max * 1e3,
    }


def report_dict(
    config: LiveClusterConfig, report: LiveRunReport, *, seed: int
) -> dict[str, Any]:
    """JSON-serializable summary of one live run."""
    completed = [o for o in report.outcomes if o.value is not None]
    return {
        "benchmark": "live_runtime",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "n_locals": config.n_locals,
            "streams_per_local": config.streams_per_local,
            "transport": config.transport,
            "batch_size": config.batch_size,
            "time_scale": config.time_scale,
            "q": config.query.q,
            "gamma": config.query.gamma,
            "window_length_ms": config.query.window_length_ms,
            "seed": seed,
        },
        "windows": report.windows,
        "windows_with_results": len(completed),
        "events_sent": report.events_sent,
        "wall_seconds": report.wall_seconds,
        "events_per_second": report.events_per_second,
        "seal_to_result": _latency_dict(report.seal_to_result),
        "bytes_by_layer": report.bytes_by_layer,
        "messages_by_layer": report.messages_by_layer,
        "total_bytes": report.total_bytes,
        "reconnects": report.reconnects,
        "heartbeat_misses": report.heartbeat_misses,
        "degraded_windows": report.degraded_windows,
        "dropped_sends": report.dropped_sends,
        "telemetry": report.telemetry,
    }


def live_benchmark(
    *,
    n_locals: int = 2,
    streams_per_local: int = 2,
    rate: float = 20_000.0,
    duration_s: float = 3.0,
    transport: str = "tcp",
    time_scale: float = 0.0,
    gamma: int = 100,
    q: float = 0.5,
    seed: int = 42,
    telemetry: "TelemetryConfig | None" = None,
    columnar: bool = True,
) -> tuple[LiveClusterConfig, LiveRunReport]:
    """Generate a workload, run the live cluster once, return both halves.

    ``rate`` is the target aggregate events/second: the generator produces
    ``rate / n_locals`` events per second of event time per local node, so
    a ``time_scale`` of 1.0 replays at exactly that wall-clock rate and
    0.0 measures the runtime's ceiling.  ``telemetry`` turns the live
    telemetry plane on for the benchmarked run; the report's
    ``telemetry`` section carries what it measured.  ``columnar`` feeds
    the cluster columnar batches (the production fast path); ``False``
    replays the same events as per-event objects — results are
    bit-identical either way, only the wall clock differs.
    """
    query = QuantileQuery(q=q, gamma=gamma)
    config = LiveClusterConfig(
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        query=query,
        transport=transport,
        time_scale=time_scale,
        telemetry=telemetry,
    )
    make_workload = workload_columns if columnar else workload
    streams = make_workload(
        list(range(1, n_locals + 1)),
        GeneratorConfig(
            event_rate=max(1.0, rate / n_locals),
            duration_s=duration_s,
            seed=seed,
        ),
    )
    report = run_live(config, streams)
    return config, report


def write_live_bench(
    path: str, config: LiveClusterConfig, report: LiveRunReport, *, seed: int
) -> dict[str, Any]:
    """Write the benchmark artifact; returns the written dict."""
    payload = report_dict(config, report, seed=seed)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
