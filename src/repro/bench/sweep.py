"""Generic parameter sweeps over any system and metric.

A thin orchestration layer over the harness: pick a parameter (γ, node
count, event rate, quantile, loss rate), a value list, systems, and a
metric (throughput, network bytes, latency), and get back a tidy result
table with CSV export.  Exposed on the CLI as ``python -m repro sweep``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.core.query import QuantileQuery
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import capacity_estimate, measure_latency, run_workload
from repro.bench.reporting import format_table
from repro.bench.workloads import bench_topology

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]

#: Parameters a sweep may vary.
PARAMETERS = ("gamma", "n_local_nodes", "event_rate", "q", "loss_rate")

#: Metrics a sweep may measure.
METRICS = ("throughput", "network_bytes", "latency_p50")


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one sweep.

    Attributes:
        parameter: Which knob to vary (one of :data:`PARAMETERS`).
        values: The values to sweep, in presentation order.
        metric: What to measure at each point (one of :data:`METRICS`).
        systems: Systems to measure, each producing one series.
        n_local_nodes: Fixed node count (unless swept).
        gamma: Fixed slice factor (unless swept).
        q: Fixed quantile (unless swept).
        event_rate: Fixed per-node event rate for workload-based metrics
            (unless swept).
        duration_s: Workload length for workload-based metrics.
        seed: Workload seed.
    """

    parameter: str
    values: tuple
    metric: str = "throughput"
    systems: tuple[str, ...] = ("dema",)
    n_local_nodes: int = 2
    gamma: int = 100
    q: float = 0.5
    event_rate: float = 2_000.0
    duration_s: float = 3.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.parameter not in PARAMETERS:
            raise ConfigurationError(
                f"unknown sweep parameter {self.parameter!r}; "
                f"known: {PARAMETERS}"
            )
        if self.metric not in METRICS:
            raise ConfigurationError(
                f"unknown sweep metric {self.metric!r}; known: {METRICS}"
            )
        if not self.values:
            raise ConfigurationError("sweep needs at least one value")
        if not self.systems:
            raise ConfigurationError("sweep needs at least one system")


@dataclass
class SweepResult:
    """Measured series, one per system."""

    spec: SweepSpec
    series: dict[str, list[float]] = field(default_factory=dict)

    def to_csv(self) -> str:
        """Render as CSV with the swept parameter as the first column."""
        buffer = io.StringIO()
        buffer.write(
            ",".join([self.spec.parameter] + list(self.series)) + "\n"
        )
        for index, value in enumerate(self.spec.values):
            row = [str(value)] + [
                repr(self.series[system][index]) for system in self.series
            ]
            buffer.write(",".join(row) + "\n")
        return buffer.getvalue()

    def to_table(self) -> str:
        """Render as an aligned text table."""
        headers = [self.spec.parameter] + list(self.series)
        rows = [
            [str(value)]
            + [f"{self.series[system][index]:,.1f}" for system in self.series]
            for index, value in enumerate(self.spec.values)
        ]
        title = (
            f"{self.spec.metric} vs {self.spec.parameter} "
            f"({', '.join(self.series)})"
        )
        return format_table(headers, rows, title=title)


def _configure(spec: SweepSpec, value):
    """Resolve (query, topology, event_rate) for one sweep point."""
    gamma = spec.gamma
    q = spec.q
    n_nodes = spec.n_local_nodes
    event_rate = spec.event_rate
    loss_rate = 0.0
    if spec.parameter == "gamma":
        gamma = int(value)
    elif spec.parameter == "q":
        q = float(value)
    elif spec.parameter == "n_local_nodes":
        n_nodes = int(value)
    elif spec.parameter == "event_rate":
        event_rate = float(value)
    elif spec.parameter == "loss_rate":
        loss_rate = float(value)
    query = QuantileQuery(q=q, window_length_ms=1000, gamma=gamma)
    topology = replace(bench_topology(n_nodes), loss_rate=loss_rate)
    return query, topology, event_rate


def _measure(spec: SweepSpec, system: str, value) -> float:
    query, topology, event_rate = _configure(spec, value)
    if spec.metric == "throughput":
        return capacity_estimate(
            system, query, topology, seed=spec.seed
        ).aggregate_rate
    if spec.metric == "latency_p50":
        return measure_latency(
            system, query, topology, event_rate,
            n_windows=max(int(spec.duration_s), 2), seed=spec.seed,
        ).p50
    streams = workload(
        range(1, topology.n_local_nodes + 1),
        GeneratorConfig(
            event_rate=event_rate, duration_s=spec.duration_s, seed=spec.seed
        ),
    )
    report = run_workload(system, query, topology, streams)
    return float(report.network.total_bytes)


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute every (system, value) point of the sweep."""
    result = SweepResult(spec=spec)
    for system in spec.systems:
        result.series[system] = [
            _measure(spec, system, value) for value in spec.values
        ]
    return result
