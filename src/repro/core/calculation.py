"""Dema's calculation step (Section 3.1).

The root has fetched the candidate slices' events — each slice arrives as a
run that is already sorted, because the local node sorted its window before
slicing.  The root therefore never re-sorts: it k-way merges the runs and
selects the element at local rank ``k − n_below``.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.errors import CalculationError
from repro.streaming.events import Event, event_key
from repro.core.window_cut import CutResult

__all__ = ["merge_candidate_runs", "calculate_quantile"]


def merge_candidate_runs(runs: Iterable[Sequence[Event]]) -> list[Event]:
    """K-way merge of pre-sorted candidate runs into one sorted list.

    Raises:
        CalculationError: If any run is not sorted by event key — that would
            mean a local node violated the protocol.
    """
    materialized = [list(run) for run in runs]
    for run in materialized:
        for left, right in zip(run, run[1:]):
            if left.key > right.key:
                raise CalculationError(
                    "candidate run is not sorted; local node violated the "
                    f"protocol near event {right}"
                )
    return list(heapq.merge(*materialized, key=event_key))


def calculate_quantile(
    cut: CutResult, runs: Iterable[Sequence[Event]]
) -> Event:
    """Select the quantile event from the fetched candidate runs.

    Args:
        cut: The window-cut result that produced the fetch plan.
        runs: The candidate slices' event runs, in any order.

    Returns:
        The event whose global rank is ``cut.rank``.

    Raises:
        CalculationError: If the runs do not match the cut (wrong total
            count, or the local rank falls outside the merged events).
    """
    merged = merge_candidate_runs(runs)
    if len(merged) != cut.candidate_events:
        raise CalculationError(
            f"expected {cut.candidate_events} candidate events, "
            f"received {len(merged)}"
        )
    local_rank = cut.local_rank
    if not 1 <= local_rank <= len(merged):
        raise CalculationError(
            f"local rank {local_rank} outside the {len(merged)} fetched "
            "events; identification and calculation disagree"
        )
    return merged[local_rank - 1]
