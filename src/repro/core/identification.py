"""Dema's identification step (Section 3.1).

The root node has received one synopsis batch per local node for a global
window.  Identification computes the quantile rank from the global window
size, runs window-cut to select the candidate slices, and emits a fetch plan
— which slice indices to request from which node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import IdentificationError
from repro.streaming.aggregates import quantile_rank
from repro.core.synopsis import SliceSynopsis
from repro.core.window_cut import CutResult, window_cut, window_cut_multi

__all__ = ["IdentificationResult", "MultiIdentificationResult", "identify",
           "identify_multi"]


@dataclass(frozen=True, slots=True)
class IdentificationResult:
    """Fetch plan produced by the identification step.

    Attributes:
        q: The requested quantile in ``(0, 1]``.
        global_window_size: Total events across all local windows.
        cut: The window-cut outcome (candidates, rank, ``n_below``).
        requests: Slice indices to fetch, keyed by local node id.  Nodes
            owning no candidate slices do not appear.
    """

    q: float
    global_window_size: int
    cut: CutResult
    requests: Mapping[int, tuple[int, ...]]

    @property
    def rank(self) -> int:
        """The global rank ``Pos(q) = ceil(q * l_G)``."""
        return self.cut.rank

    @property
    def candidate_events(self) -> int:
        """Events the calculation step will pull over the network."""
        return self.cut.candidate_events


@dataclass(frozen=True, slots=True)
class MultiIdentificationResult:
    """Shared fetch plan for several quantiles over one global window.

    Attributes:
        qs: The requested quantiles, ascending and deduplicated.
        global_window_size: Total events across all local windows.
        cuts: One :class:`~repro.core.window_cut.CutResult` per quantile,
            each identical to what :func:`identify` alone would produce.
        requests: The **union** of every cut's candidate slice indices,
            keyed by local node id — a slice two quantiles both need is
            fetched once.
    """

    qs: tuple[float, ...]
    global_window_size: int
    cuts: Mapping[float, CutResult]
    requests: Mapping[int, tuple[int, ...]]

    @property
    def candidate_events(self) -> int:
        """Events the shared calculation step pulls over the network."""
        ids: set[tuple[int, int]] = set()
        total = 0
        for cut in self.cuts.values():
            for synopsis in cut.candidates:
                if synopsis.slice_id not in ids:
                    ids.add(synopsis.slice_id)
                    total += synopsis.count
        return total


def _validate_batches(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
    window_sizes: Mapping[int, int],
) -> int:
    """Cross-check batches against reported sizes; return the global size."""
    if set(synopses_by_node) != set(window_sizes):
        raise IdentificationError(
            "synopsis batches and window sizes cover different node sets: "
            f"{sorted(synopses_by_node)} vs {sorted(window_sizes)}"
        )
    for node_id, batch in synopses_by_node.items():
        covered = sum(synopsis.count for synopsis in batch)
        if covered != window_sizes[node_id]:
            raise IdentificationError(
                f"node {node_id} reports window size {window_sizes[node_id]} "
                f"but its synopses cover {covered} events"
            )
    global_window_size = sum(window_sizes.values())
    if global_window_size == 0:
        raise IdentificationError("global window is empty")
    return global_window_size


def identify_multi(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
    window_sizes: Mapping[int, int],
    qs: Sequence[float],
) -> MultiIdentificationResult:
    """Run one shared identification pass for several quantiles.

    The synopsis sweep happens once (:func:`window_cut_multi`), and the
    fetch plan is the union of every quantile's candidates — the
    amortization the multi-query plane's shared-cut execution rests on.

    Args:
        synopses_by_node: Synopsis batches keyed by local node id.
        window_sizes: Reported local window sizes keyed by node id.
        qs: The quantiles, each in ``(0, 1]``; duplicates collapse.

    Raises:
        IdentificationError: Same contract as :func:`identify`, plus an
            empty ``qs``.
    """
    unique_qs = tuple(sorted(set(qs)))
    if not unique_qs:
        raise IdentificationError("need at least one quantile to identify")
    global_window_size = _validate_batches(synopses_by_node, window_sizes)
    ranks = {q: quantile_rank(q, global_window_size) for q in unique_qs}
    all_synopses = _flatten(synopses_by_node)
    cuts_by_rank = window_cut_multi(
        all_synopses, sorted(set(ranks.values())),
        global_window_size=global_window_size,
    )
    cuts = {q: cuts_by_rank[rank] for q, rank in ranks.items()}
    requests: dict[int, set[int]] = {}
    for cut in cuts_by_rank.values():
        for synopsis in cut.candidates:
            requests.setdefault(synopsis.node_id, set()).add(
                synopsis.slice_index
            )
    frozen = {
        node_id: tuple(sorted(indices))
        for node_id, indices in requests.items()
    }
    return MultiIdentificationResult(
        qs=unique_qs,
        global_window_size=global_window_size,
        cuts=cuts,
        requests=frozen,
    )


def identify(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
    window_sizes: Mapping[int, int],
    q: float,
) -> IdentificationResult:
    """Run the identification step over one global window.

    Args:
        synopses_by_node: Synopsis batches keyed by local node id.  A node
            with an empty local window contributes an empty batch.
        window_sizes: Reported local window sizes keyed by node id; must be
            consistent with the synopses.
        q: The quantile in ``(0, 1]``.

    Returns:
        The fetch plan.

    Raises:
        IdentificationError: If the reported sizes disagree with the
            synopses, node sets mismatch, or the global window is empty.
    """
    global_window_size = _validate_batches(synopses_by_node, window_sizes)
    rank = quantile_rank(q, global_window_size)
    all_synopses = _flatten(synopses_by_node)
    cut = window_cut(all_synopses, rank, global_window_size=global_window_size)

    requests: dict[int, list[int]] = {}
    for synopsis in cut.candidates:
        requests.setdefault(synopsis.node_id, []).append(synopsis.slice_index)
    frozen = {
        node_id: tuple(sorted(indices))
        for node_id, indices in requests.items()
    }
    return IdentificationResult(
        q=q,
        global_window_size=global_window_size,
        cut=cut,
        requests=frozen,
    )


def _flatten(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
) -> list[SliceSynopsis]:
    flat: list[SliceSynopsis] = []
    for batch in synopses_by_node.values():
        flat.extend(batch)
    return flat
