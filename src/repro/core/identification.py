"""Dema's identification step (Section 3.1).

The root node has received one synopsis batch per local node for a global
window.  Identification computes the quantile rank from the global window
size, runs window-cut to select the candidate slices, and emits a fetch plan
— which slice indices to request from which node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import IdentificationError
from repro.streaming.aggregates import quantile_rank
from repro.core.synopsis import SliceSynopsis
from repro.core.window_cut import CutResult, window_cut

__all__ = ["IdentificationResult", "identify"]


@dataclass(frozen=True, slots=True)
class IdentificationResult:
    """Fetch plan produced by the identification step.

    Attributes:
        q: The requested quantile in ``(0, 1]``.
        global_window_size: Total events across all local windows.
        cut: The window-cut outcome (candidates, rank, ``n_below``).
        requests: Slice indices to fetch, keyed by local node id.  Nodes
            owning no candidate slices do not appear.
    """

    q: float
    global_window_size: int
    cut: CutResult
    requests: Mapping[int, tuple[int, ...]]

    @property
    def rank(self) -> int:
        """The global rank ``Pos(q) = ceil(q * l_G)``."""
        return self.cut.rank

    @property
    def candidate_events(self) -> int:
        """Events the calculation step will pull over the network."""
        return self.cut.candidate_events


def identify(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
    window_sizes: Mapping[int, int],
    q: float,
) -> IdentificationResult:
    """Run the identification step over one global window.

    Args:
        synopses_by_node: Synopsis batches keyed by local node id.  A node
            with an empty local window contributes an empty batch.
        window_sizes: Reported local window sizes keyed by node id; must be
            consistent with the synopses.
        q: The quantile in ``(0, 1]``.

    Returns:
        The fetch plan.

    Raises:
        IdentificationError: If the reported sizes disagree with the
            synopses, node sets mismatch, or the global window is empty.
    """
    if set(synopses_by_node) != set(window_sizes):
        raise IdentificationError(
            "synopsis batches and window sizes cover different node sets: "
            f"{sorted(synopses_by_node)} vs {sorted(window_sizes)}"
        )
    for node_id, batch in synopses_by_node.items():
        covered = sum(synopsis.count for synopsis in batch)
        if covered != window_sizes[node_id]:
            raise IdentificationError(
                f"node {node_id} reports window size {window_sizes[node_id]} "
                f"but its synopses cover {covered} events"
            )

    global_window_size = sum(window_sizes.values())
    if global_window_size == 0:
        raise IdentificationError("global window is empty")

    rank = quantile_rank(q, global_window_size)
    all_synopses = _flatten(synopses_by_node)
    cut = window_cut(all_synopses, rank, global_window_size=global_window_size)

    requests: dict[int, list[int]] = {}
    for synopsis in cut.candidates:
        requests.setdefault(synopsis.node_id, []).append(synopsis.slice_index)
    frozen = {
        node_id: tuple(sorted(indices))
        for node_id, indices in requests.items()
    }
    return IdentificationResult(
        q=q,
        global_window_size=global_window_size,
        cut=cut,
        requests=frozen,
    )


def _flatten(
    synopses_by_node: Mapping[int, Sequence[SliceSynopsis]],
) -> list[SliceSynopsis]:
    flat: list[SliceSynopsis] = []
    for batch in synopses_by_node.values():
        flat.extend(batch)
    return flat
