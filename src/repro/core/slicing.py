"""γ-slicing of sorted local windows.

When a local window ends, the node cuts the sorted run into consecutive
slices of ``γ`` events (the final slice may be shorter) and produces one
synopsis per slice.  The paper requires every slice to contain at least two
events because a synopsis needs a distinct first and last event; the slicer
enforces this by folding a trailing 1-event remainder into the previous
slice.  A window with a single event yields one 1-event slice — its synopsis
*is* the event, so the requirement is moot.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

from repro.errors import SliceError
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event
from repro.core.synopsis import SliceSynopsis

# Hot-path module: a columnar window slices into columnar runs — keys are
# read straight off the arrays, and no per-event ``Event`` objects are
# built here (enforced by tests/test_hotpath_lint.py).

__all__ = ["SlicedWindow", "slice_sorted_events", "MIN_GAMMA"]

#: Every slice must hold at least two events (Section 3.1), hence γ ≥ 2.
MIN_GAMMA = 2


@dataclass(frozen=True, slots=True)
class SlicedWindow:
    """A local window cut into slices, ready for the identification step.

    Attributes:
        node_id: Owner of the window.
        runs: Per-slice sorted event runs; ``runs[i]`` backs ``synopses[i]``.
            Each run is a tuple of events or a columnar batch view,
            depending on how the window was fed — both are immutable
            event sequences with identical contents.
        synopses: One synopsis per slice, in value order.
    """

    node_id: int
    runs: tuple[Sequence[Event], ...]
    synopses: tuple[SliceSynopsis, ...]

    @property
    def window_size(self) -> int:
        """Total number of events in the local window."""
        return sum(len(run) for run in self.runs)

    @property
    def n_slices(self) -> int:
        """Number of slices the window was cut into."""
        return len(self.runs)

    def run_for(self, slice_index: int) -> Sequence[Event]:
        """The sorted event run backing slice ``slice_index``.

        Raises:
            SliceError: If the index is out of range.
        """
        if not 0 <= slice_index < len(self.runs):
            raise SliceError(
                f"slice index {slice_index} out of range "
                f"(window has {len(self.runs)} slices)"
            )
        return self.runs[slice_index]


def slice_sorted_events(
    sorted_events: Sequence[Event], gamma: int, node_id: int
) -> SlicedWindow:
    """Cut a sorted local window into γ-sized slices with synopses.

    Args:
        sorted_events: The window's events in ascending key order.  Order is
            validated in a debug assertion only; callers are the sorted
            window and tests.
        gamma: Target slice size; must be ≥ 2.
        node_id: Owner stamped into every synopsis.

    Returns:
        The sliced window.  Empty input yields a window with zero slices.

    Raises:
        SliceError: If ``gamma < 2``.
    """
    if gamma < MIN_GAMMA:
        raise SliceError(f"gamma must be >= {MIN_GAMMA}, got {gamma}")
    n = len(sorted_events)
    if n == 0:
        return SlicedWindow(node_id=node_id, runs=(), synopses=())

    boundaries = list(range(0, n, gamma))
    # A trailing 1-event slice cannot form a synopsis with two distinct
    # events; merge it into the previous slice (only possible when n > 1).
    if len(boundaries) > 1 and n - boundaries[-1] == 1:
        boundaries.pop()

    columnar = isinstance(sorted_events, EventColumns)
    runs = []
    for b, start in enumerate(boundaries):
        end = boundaries[b + 1] if b + 1 < len(boundaries) else n
        # Columnar runs are zero-copy views into the window's arrays.
        run = sorted_events[start:end]
        runs.append(run if columnar else tuple(run))

    n_slices = len(runs)
    synopses = tuple(
        SliceSynopsis(
            first_key=run.key_at(0) if columnar else run[0].key,
            last_key=run.key_at(-1) if columnar else run[-1].key,
            count=len(run),
            node_id=node_id,
            slice_index=index,
            n_slices=n_slices,
        )
        for index, run in enumerate(runs)
    )
    return SlicedWindow(node_id=node_id, runs=tuple(runs), synopses=synopses)
