"""Quantile query descriptions.

A query names the quantile, the tumbling-window length, and the slice-factor
policy (fixed γ or adaptive).  The same query object configures Dema and
every baseline so benchmark comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.streaming.windows import SlidingWindows, TumblingWindows, WindowAssigner
from repro.core.slicing import MIN_GAMMA

__all__ = ["QuantileQuery"]


@dataclass(frozen=True, slots=True)
class QuantileQuery:
    """A continuous quantile query over time-based tumbling windows.

    Attributes:
        q: The quantile in ``(0, 1]``; 0.5 is the median.
        window_length_ms: Window length in event-time milliseconds (the
            paper evaluates one-second windows, i.e. 1000).
        window_step_ms: Optional step for *sliding* windows (an extension
            beyond the paper's tumbling focus); ``None`` or a value equal
            to the length gives tumbling windows.
        gamma: Fixed slice factor; ignored when ``adaptive`` is true.
        adaptive: Whether the root re-optimizes γ each window (Section 3.3).
        per_node_gamma: With ``adaptive``, optimize a separate γ per local
            node (the paper's Section 3.3 extension for heterogeneous
            workloads) instead of one global factor.
    """

    q: float = 0.5
    window_length_ms: int = 1000
    window_step_ms: int | None = None
    gamma: int = 10_000
    adaptive: bool = False
    per_node_gamma: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.q <= 1.0:
            raise ConfigurationError(f"quantile q must be in (0, 1], got {self.q}")
        if self.window_length_ms <= 0:
            raise ConfigurationError(
                f"window length must be > 0 ms, got {self.window_length_ms}"
            )
        if self.gamma < MIN_GAMMA:
            raise ConfigurationError(
                f"gamma must be >= {MIN_GAMMA}, got {self.gamma}"
            )
        if self.per_node_gamma and not self.adaptive:
            raise ConfigurationError(
                "per_node_gamma requires adaptive=True; a fixed per-node "
                "factor has no information to differ by node"
            )
        if self.window_step_ms is not None and not (
            0 < self.window_step_ms <= self.window_length_ms
        ):
            raise ConfigurationError(
                f"window step must be in (0, length], got "
                f"{self.window_step_ms} for length {self.window_length_ms}"
            )

    @property
    def is_sliding(self) -> bool:
        """Whether consecutive windows overlap."""
        return (
            self.window_step_ms is not None
            and self.window_step_ms != self.window_length_ms
        )

    def assigner(self) -> WindowAssigner:
        """The window assigner this query runs over."""
        if self.is_sliding:
            return SlidingWindows(self.window_length_ms, self.window_step_ms)
        return TumblingWindows(self.window_length_ms)

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        policy = "adaptive" if self.adaptive else f"γ={self.gamma}"
        if self.is_sliding:
            shape = (
                f"{self.window_length_ms} ms sliding windows every "
                f"{self.window_step_ms} ms"
            )
        else:
            shape = f"{self.window_length_ms} ms tumbling windows"
        return f"{self.q:.0%} quantile over {shape} ({policy})"
