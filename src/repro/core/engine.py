"""Dema entry points: pure algorithm and full simulated deployment.

:func:`dema_quantile` runs identification + calculation in-process over
already-collected local windows — no simulator, no messages.  It is the
algorithmic heart of the paper in one call, used by tests, examples and the
accuracy experiment.

:class:`DemaEngine` deploys Dema operators on the simulated three-layer
network, drives per-node workloads through it, and reports results together
with network and latency metrics.  The benchmark harness builds every Dema
datapoint through this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.network.driver import MS_PER_SECOND, BatchSourceDriver
from repro.network.metrics import LatencyStats, NetworkMetrics
from repro.network.simulator import Simulator
from repro.obs.tracer import NOOP_TRACER
from repro.network.topology import Topology, TopologyConfig
from repro.streaming.events import Event
from repro.core.calculation import calculate_quantile
from repro.core.identification import identify
from repro.core.local_node import DemaLocalNode
from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode, WindowOutcome
from repro.core.slicing import slice_sorted_events
from repro.core.window_cut import CutResult

__all__ = ["DemaResult", "DemaRunReport", "dema_quantile", "DemaEngine"]


@dataclass(frozen=True, slots=True)
class DemaResult:
    """Outcome of one in-memory Dema computation.

    Attributes:
        value: The exact quantile value.
        rank: Global rank ``Pos(q)`` that was located.
        global_window_size: Total events across the local windows.
        candidate_events: Events a deployment would transfer in the
            calculation step.
        candidate_slices: Number of candidate slices selected.
        synopses: Number of synopses a deployment would transfer in the
            identification step.
        transfer_events: Synopsis-equivalent plus candidate events — the
            paper's network cost model evaluated on this window.
    """

    value: float
    rank: int
    global_window_size: int
    candidate_events: int
    candidate_slices: int
    synopses: int

    @property
    def transfer_events(self) -> int:
        """Events-on-the-wire cost: two per synopsis plus candidates."""
        return 2 * self.synopses + self.candidate_events


def dema_quantile(
    local_windows: Mapping[int, Sequence[Event]],
    q: float,
    gamma: int,
) -> DemaResult:
    """Compute an exact quantile the Dema way, in memory.

    Each entry of ``local_windows`` plays the role of one local node's
    window: it is sorted locally, sliced with ``gamma``, reduced to
    synopses, and only candidate slices are "transferred" to the
    calculation step.

    Args:
        local_windows: Per-node event collections (any order within a node).
        q: The quantile in ``(0, 1]``.
        gamma: The slice factor, ≥ 2.

    Returns:
        The result with transfer-cost accounting.

    Raises:
        ConfigurationError: If no nodes are given.
        IdentificationError: If all windows are empty.
    """
    if not local_windows:
        raise ConfigurationError("need at least one local window")

    sliced = {
        node_id: slice_sorted_events(
            sorted(events, key=lambda e: e.key), gamma, node_id
        )
        for node_id, events in local_windows.items()
    }
    synopses_by_node = {n: s.synopses for n, s in sliced.items()}
    sizes = {n: s.window_size for n, s in sliced.items()}
    identification = identify(synopses_by_node, sizes, q)

    runs = [
        sliced[node_id].run_for(index)
        for node_id, indices in identification.requests.items()
        for index in indices
    ]
    answer = calculate_quantile(identification.cut, runs)
    return DemaResult(
        value=answer.value,
        rank=identification.rank,
        global_window_size=identification.global_window_size,
        candidate_events=identification.candidate_events,
        candidate_slices=len(identification.cut.candidates),
        synopses=sum(len(batch) for batch in synopses_by_node.values()),
    )


@dataclass
class DemaRunReport:
    """Everything a benchmark needs from one simulated Dema run."""

    outcomes: list[WindowOutcome]
    network: NetworkMetrics
    latency: LatencyStats
    final_time: float
    events_ingested: int

    @property
    def values(self) -> list[float | None]:
        """Per-window quantile values in completion order."""
        return [outcome.value for outcome in self.outcomes]


class DemaEngine:
    """A Dema deployment on the simulated three-layer network."""

    def __init__(
        self,
        query: QuantileQuery,
        topology_config: TopologyConfig,
        *,
        batch_size: int = 512,
        reliability=None,
        degrade_after_retries: bool = False,
        trace=None,
        tracer=None,
    ) -> None:
        self._query = query
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._simulator = Simulator(trace=trace, tracer=self._tracer)
        self._root: DemaRootNode | None = None

        local_ids = list(
            range(1, topology_config.n_local_nodes + 1)
        )

        def root_factory(node_id: int, ops: float) -> DemaRootNode:
            self._root = DemaRootNode(
                node_id,
                local_ids=local_ids,
                query=query,
                ops_per_second=ops,
                reliability=reliability,
                degrade_after_retries=degrade_after_retries,
            )
            return self._root

        def local_factory(node_id: int, ops: float) -> DemaLocalNode:
            return DemaLocalNode(
                node_id,
                root_id=0,
                query=query,
                ops_per_second=ops,
                reliability=reliability,
            )

        def stream_factory(node_id: int, ops: float, local_id: int):
            from repro.network.sources import StreamSensorNode

            return StreamSensorNode(
                node_id,
                local_id=local_id,
                ops_per_second=ops,
                batch_size=batch_size,
            )

        self._topology = Topology.build(
            self._simulator,
            topology_config,
            root_factory=root_factory,
            local_factory=local_factory,
            stream_factory=stream_factory,
        )
        self._driver = BatchSourceDriver(self._simulator, batch_size=batch_size)
        if self._tracer.enabled:
            for node in self._simulator.nodes.values():
                node.set_tracer(self._tracer)

    @property
    def tracer(self):
        """The run's span tracer (the shared no-op tracer by default)."""
        return self._tracer

    @property
    def simulator(self) -> Simulator:
        """The underlying discrete-event engine."""
        return self._simulator

    @property
    def topology(self) -> Topology:
        """The wired deployment."""
        return self._topology

    @property
    def root(self) -> DemaRootNode:
        """The root operator."""
        assert self._root is not None
        return self._root

    def run(self, streams: Mapping[int, Sequence[Event]]) -> DemaRunReport:
        """Feed per-local-node streams through the deployment and drain it.

        Args:
            streams: Event streams keyed by *local node id* (the ids in
                ``topology.local_ids``); missing nodes receive no events.

        Returns:
            The run report with per-window outcomes and metrics.

        Raises:
            ConfigurationError: If a stream targets an unknown node.
        """
        unknown = set(streams) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        assigner = self._query.assigner()
        all_windows: set = set()
        for local_id in self._topology.local_ids:
            events = streams.get(local_id, ())
            operator = self._simulator.nodes[local_id]
            all_windows.update(self._driver.feed(operator, events, assigner))
        return self._finish(all_windows, allowed_lateness_ms=0)

    def run_unordered(
        self,
        arrivals: Mapping[int, Sequence[tuple[Event, int]]],
        *,
        allowed_lateness_ms: int = 0,
    ) -> DemaRunReport:
        """Like :meth:`run`, but events arrive with per-event delays.

        Args:
            arrivals: ``(event, arrival_ms)`` pairs keyed by local node id
                (see :meth:`SensorStreamGenerator.generate_with_arrivals`).
            allowed_lateness_ms: How long past its event-time end each
                window stays open.  Arrivals later than this are dropped by
                the local nodes and counted in their ``late_events``.
        """
        unknown = set(arrivals) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        assigner = self._query.assigner()
        all_windows: set = set()
        for local_id in self._topology.local_ids:
            pairs = arrivals.get(local_id, ())
            operator = self._simulator.nodes[local_id]
            all_windows.update(
                self._driver.feed_unordered(operator, pairs, assigner)
            )
        return self._finish(
            all_windows, allowed_lateness_ms=allowed_lateness_ms
        )

    def run_via_sensors(
        self,
        streams: Mapping[int, Sequence[Event]],
        *,
        allowed_lateness_ms: int | None = None,
    ) -> DemaRunReport:
        """Run the full three-tier deployment: sensors → locals → root.

        Requires a topology built with ``streams_per_local > 0``.  Streams
        are keyed by *local node id* and distributed round-robin over that
        node's sensors; events then cross a real channel before reaching the
        local operator, paying bytes, latency and CPU at both ends.

        Args:
            streams: Per-local-node event streams in timestamp order.
            allowed_lateness_ms: Window grace to absorb the sensor→local
                link delay.  Defaults to a bound derived from the link
                latency, so no event is dropped as late.

        Raises:
            ConfigurationError: If the topology has no sensor tier or a
                stream targets an unknown local node.
        """
        if not any(self._topology.stream_ids.values()):
            raise ConfigurationError(
                "run_via_sensors requires TopologyConfig.streams_per_local > 0"
            )
        unknown = set(streams) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        if allowed_lateness_ms is None:
            # The sensor may hold a reading for up to its batch-age bound,
            # plus link latency and a transfer allowance.
            from repro.network.sources import StreamSensorNode

            first_sensor_id = next(
                sid for sids in self._topology.stream_ids.values() for sid in sids
            )
            sensor = self._simulator.nodes[first_sensor_id]
            assert isinstance(sensor, StreamSensorNode)
            allowed_lateness_ms = (
                sensor.max_batch_delay_ms
                + int(self._topology.config.link_latency_s * 1000 * 4)
                + 2
            )
        assigner = self._query.assigner()
        all_windows: set = set()
        for local_id in self._topology.local_ids:
            events = streams.get(local_id, ())
            sensors = self._topology.stream_ids[local_id]
            shares: list[list[Event]] = [[] for _ in sensors]
            for index, event in enumerate(events):
                shares[index % len(sensors)].append(event)
            for sensor_id, share in zip(sensors, shares):
                sensor = self._simulator.nodes[sensor_id]
                sensor.load(share)
            for event in events:
                all_windows.update(assigner.assign(event.timestamp))
            self._driver.account_external_events(len(events))
        return self._finish(
            all_windows, allowed_lateness_ms=allowed_lateness_ms
        )

    def _finish(
        self, all_windows: set, *, allowed_lateness_ms: int
    ) -> DemaRunReport:
        ordered = sorted(all_windows)
        for local_id in self._topology.local_ids:
            operator = self._simulator.nodes[local_id]
            self._driver.announce_windows(
                operator, ordered, allowed_lateness_ms=allowed_lateness_ms
            )

        final_time = self._simulator.run()
        outcomes = self.root.outcomes
        latency = LatencyStats()
        for outcome in outcomes:
            window_end_s = outcome.window.end / MS_PER_SECOND
            latency.add(outcome.result_time - window_end_s)
        if self._tracer.enabled:
            registry = self._tracer.registry
            registry.counter(
                "windows_completed_total", "Windows that produced a result."
            ).inc(len(outcomes))
            for outcome in outcomes:
                registry.counter(
                    "candidate_events_total",
                    "Candidate events fetched for calculation.",
                ).inc(outcome.candidate_events)
            self._tracer.finalize(self._simulator, final_time)
        return DemaRunReport(
            outcomes=outcomes,
            network=NetworkMetrics.capture(self._simulator),
            latency=latency,
            final_time=final_time,
            events_ingested=self._driver.scheduled_events,
        )
