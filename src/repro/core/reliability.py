"""Reliability configuration for the Dema protocol over lossy links.

The paper's cluster network is effectively reliable; real edge deployments
(Wi-Fi, LTE) are not.  This extension makes the Dema protocol tolerate
message loss with a timeout-and-retransmit scheme driven entirely by the
root:

* **Synopsis phase** — when the first synopsis batch of a window arrives,
  the root arms a completeness timer.  If it fires before every local node
  reported, the root sends :class:`~repro.network.messages.SynopsisRequestMessage`
  to the missing nodes and re-arms, up to ``max_retries`` times.
* **Calculation phase** — after sending candidate requests, the root arms a
  timer; on expiry it re-requests exactly the runs that have not arrived.
* **State retention** — local nodes retain sealed windows until the root's
  :class:`~repro.network.messages.WindowReleaseMessage` confirms the window
  is answered, so any retransmission can be served from local state.
* **Idempotence** — duplicate synopsis batches and candidate runs (caused
  by retransmitted requests whose original answer was merely delayed) are
  ignored rather than rejected.

With ``reliability=None`` (the default) the protocol behaves exactly as the
paper describes — one-shot messages, duplicates are protocol errors — and
carries zero overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ReliabilityConfig"]


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Timeout/retry parameters for the lossy-network protocol.

    Attributes:
        timeout_s: How long the root waits for a phase to complete before
            retransmitting requests.  Should comfortably exceed one
            round-trip plus processing (default 50 ms).
        max_retries: Retransmission attempts per phase before the root
            gives up on a window and emits no result for it.
    """

    timeout_s: float = 0.05
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
