"""Dema: the paper's contribution.

Decentralized window aggregation for non-decomposable quantile functions.
Local nodes keep their windows incrementally sorted, cut them into γ-sized
slices and ship only *synopses* (first event, last event, count) to the root.
The root runs the window-cut algorithm to identify the few candidate slices
that can contain the requested quantile rank, fetches exactly those events,
and selects the answer — bit-exact, at a fraction of the network cost of
centralized aggregation.

Two entry points:

* :func:`repro.core.engine.dema_quantile` — pure in-memory algorithm (no
  simulator), the easiest way to use or study Dema;
* :class:`repro.core.engine.DemaEngine` — full decentralized deployment on
  the simulated network, used by the benchmarks.
"""

from repro.core.synopsis import SliceSynopsis
from repro.core.sorted_window import SortedLocalWindow
from repro.core.slicing import SlicedWindow, slice_sorted_events
from repro.core.units import SliceKind, SliceUnit, build_units, classify_slice
from repro.core.window_cut import CutResult, rank_bound_candidates, window_cut
from repro.core.identification import IdentificationResult, identify
from repro.core.calculation import calculate_quantile, merge_candidate_runs
from repro.core.adaptive import (
    AdaptiveGammaController,
    NodeGammaController,
    optimal_gamma,
    transfer_cost,
)
from repro.core.multi import MultiQuantileResult, dema_quantiles
from repro.core.reliability import ReliabilityConfig
from repro.core.concurrent import (
    ConcurrentDemaEngine,
    ConcurrentOutcome,
    QueryGroup,
    group_queries,
)
from repro.core.query import QuantileQuery
from repro.core.local_node import DemaLocalNode
from repro.core.root_node import DemaRootNode
from repro.core.engine import DemaEngine, dema_quantile

__all__ = [
    "SliceSynopsis",
    "SortedLocalWindow",
    "SlicedWindow",
    "slice_sorted_events",
    "SliceKind",
    "SliceUnit",
    "build_units",
    "classify_slice",
    "CutResult",
    "rank_bound_candidates",
    "window_cut",
    "IdentificationResult",
    "identify",
    "calculate_quantile",
    "merge_candidate_runs",
    "AdaptiveGammaController",
    "NodeGammaController",
    "optimal_gamma",
    "transfer_cost",
    "MultiQuantileResult",
    "dema_quantiles",
    "ReliabilityConfig",
    "ConcurrentDemaEngine",
    "ConcurrentOutcome",
    "QueryGroup",
    "group_queries",
    "QuantileQuery",
    "DemaLocalNode",
    "DemaRootNode",
    "DemaEngine",
    "dema_quantile",
]
