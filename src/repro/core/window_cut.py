"""The window-cut algorithm (Section 3.2, Algorithm 1).

Given all slice synopses of a global window and the quantile rank
``k = Pos(q)``, window-cut selects the minimal set of **candidate slices**
whose events must be fetched to answer the quantile exactly, plus the exact
number of events that rank below every candidate (``n_below``) so the
calculation step can select the right element from the merged candidates.

Two implementations are provided:

* :func:`rank_bound_candidates` — the reference: computes per-slice rank
  bounds for every slice and keeps those whose bound interval contains
  ``k``.  Obviously correct, O(total²) in the worst case within a unit.
* :func:`window_cut` — the paper's algorithm: a sweep in ascending position
  order that stops as soon as the unit containing ``k`` has been processed
  (the "scan from the edges toward the quantile position, then break" of
  Algorithm 1), and prunes inside that unit with the same rank bounds.
  Cover-slices enclosed by a candidate are kept whenever their bound
  interval can reach ``k``, exactly as Section 3.2 prescribes.

Both return identical results (property-tested); ``window_cut`` simply does
asymptotically less work when the quantile's unit sits early in the order.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import IdentificationError
from repro.core.synopsis import SliceSynopsis
from repro.core.units import SliceKind, SliceUnit, build_units, classify_slice

__all__ = [
    "CutResult",
    "rank_bound_candidates",
    "window_cut",
    "window_cut_multi",
]


@dataclass(frozen=True, slots=True)
class CutResult:
    """Outcome of candidate-slice selection for one quantile rank.

    Attributes:
        rank: The global rank ``k`` being located.
        candidates: Candidate synopses, ascending ``first_key`` order.
        n_below: Events guaranteed to rank strictly below rank ``k`` that are
            *not* part of any candidate slice.  The answer is the element at
            local rank ``rank - n_below`` of the merged candidate events.
        units_scanned: How many units the algorithm examined (work metric).
        kinds: Taxonomy census of the candidate slices.
    """

    rank: int
    candidates: tuple[SliceSynopsis, ...]
    n_below: int
    units_scanned: int = 0
    kinds: dict = field(default_factory=dict)

    @property
    def candidate_events(self) -> int:
        """Total events that the calculation step will transfer."""
        return sum(synopsis.count for synopsis in self.candidates)

    @property
    def candidate_ids(self) -> set[tuple[int, int]]:
        """The ``(node_id, slice_index)`` ids of all candidates."""
        return {synopsis.slice_id for synopsis in self.candidates}

    @property
    def local_rank(self) -> int:
        """Rank of the answer within the merged candidate events (1-based)."""
        return self.rank - self.n_below


def _validate_rank(rank: int, total: int) -> None:
    if total <= 0:
        raise IdentificationError("cannot cut an empty global window")
    if not 1 <= rank <= total:
        raise IdentificationError(
            f"rank {rank} outside the global window of {total} events"
        )


def _cut_unit(unit: SliceUnit, rank: int) -> tuple[list[SliceSynopsis], int]:
    """Select candidates within the unit containing ``rank``.

    Returns the candidate members (ascending key order) and the number of
    certainly-below events contributed by pruned members of this unit.
    """
    members = unit.members
    offset = unit.offset
    n = len(members)
    if n == 1:
        # A singleton's rank bounds are exact: offset+1 .. offset+count.
        member = members[0]
        if offset + member.count < rank:
            return [], member.count
        if offset + 1 <= rank:
            return [member], 0
        return [], 0
    # Rank bounds for all members are computed together: one sorted pass
    # plus two bisects per member replaces the O(members²) pairwise
    # certainly-above/-below scans of :meth:`SliceUnit.min_rank` /
    # :meth:`SliceUnit.max_rank`, with identical results.  Members arrive
    # in ascending ``first_key`` order (``build_units`` sorts), so the
    # slices certainly above a member — ``first_key > member.last_key`` —
    # form a suffix of that order; ``cum[i]`` holds the events in
    # ``members[:i]``.
    counts = [member.count for member in members]
    first_keys = [member.first_key for member in members]
    cum = [0] * (n + 1)
    for i, count in enumerate(counts):
        cum[i + 1] = cum[i] + count
    size = cum[n]
    # Certainly below — ``last_key < member.first_key`` — needs the same
    # prefix trick in ascending ``last_key`` order.
    by_last = sorted(zip((member.last_key for member in members), counts))
    last_keys = [key for key, _ in by_last]
    below_cum = [0] * (n + 1)
    for i, (_, count) in enumerate(by_last):
        below_cum[i + 1] = below_cum[i] + count
    candidates = []
    below_in_unit = 0
    for member in members:
        min_rank = (
            offset
            + below_cum[bisect.bisect_left(last_keys, member.first_key)]
            + 1
        )
        max_rank = offset + cum[
            bisect.bisect_right(first_keys, member.last_key)
        ]
        if min_rank <= rank <= max_rank:
            candidates.append(member)
        elif max_rank < rank:
            below_in_unit += member.count
    return candidates, below_in_unit


def rank_bound_candidates(
    synopses: Iterable[SliceSynopsis], rank: int
) -> CutResult:
    """Reference candidate selection via exhaustive rank bounds.

    Args:
        synopses: All slice synopses of the global window.
        rank: The 1-based global rank ``k = Pos(q)`` to locate.

    Raises:
        IdentificationError: If the window is empty or ``rank`` is out of
            range.
    """
    units = build_units(synopses)
    total = sum(unit.size for unit in units)
    _validate_rank(rank, total)

    candidates: list[SliceSynopsis] = []
    n_below = 0
    for unit in units:
        if not unit.contains_rank(rank):
            if unit.pos_end < rank:
                n_below += unit.size
            continue
        unit_candidates, below_in_unit = _cut_unit(unit, rank)
        candidates.extend(unit_candidates)
        n_below += below_in_unit
    return CutResult(
        rank=rank,
        candidates=tuple(candidates),
        n_below=n_below,
        units_scanned=len(units),
        kinds=_census(units, candidates),
    )


def window_cut(
    synopses: Iterable[SliceSynopsis],
    rank: int,
    *,
    global_window_size: int | None = None,
) -> CutResult:
    """Window-cut per Algorithm 1: sweep toward the quantile, then break.

    Slices are visited in ascending position order (ascending ``first_key``
    after unit grouping).  Units entirely left of ``rank`` only contribute
    their sizes to ``n_below``; the sweep stops right after processing the
    unit whose exact rank interval contains ``rank`` — the early exits of
    lines 7 and 14 in Algorithm 1.  Within that unit, compound members are
    kept when their rank-bound interval can reach ``rank`` and cover-slices
    enclosed by a candidate are kept under the same test (Section 3.2's
    cover-slice rule).

    Args:
        synopses: All slice synopses of the global window.
        rank: The 1-based global rank to locate.
        global_window_size: Optional cross-check; when provided it must equal
            the sum of synopsis counts.

    Raises:
        IdentificationError: On an empty window, an out-of-range rank, or a
            ``global_window_size`` mismatch.
    """
    ordered = sorted(synopses, key=lambda s: (s.first_key, s.last_key))
    total = sum(synopsis.count for synopsis in ordered)
    if global_window_size is not None and global_window_size != total:
        raise IdentificationError(
            f"synopses cover {total} events but the global window reports "
            f"{global_window_size}"
        )
    _validate_rank(rank, total)

    # Sweep units lazily in ascending position order and stop at the first
    # unit whose rank interval reaches ``rank`` — the early exit of
    # Algorithm 1.  Units after it are never materialized.
    n_below = 0
    scanned = 0
    index = 0
    while index < len(ordered):
        scanned += 1
        members = [ordered[index]]
        current_max = ordered[index].last_key
        index += 1
        while index < len(ordered) and ordered[index].first_key <= current_max:
            members.append(ordered[index])
            if ordered[index].last_key > current_max:
                current_max = ordered[index].last_key
            index += 1
        unit = SliceUnit(members=tuple(members), offset=n_below)
        if unit.pos_end < rank:
            n_below += unit.size
            continue
        candidates, below_in_unit = _cut_unit(unit, rank)
        return CutResult(
            rank=rank,
            candidates=tuple(candidates),
            n_below=n_below + below_in_unit,
            units_scanned=scanned,
            kinds=_census([unit], candidates),
        )
    raise IdentificationError(
        f"no unit contains rank {rank}; synopses are inconsistent"
    )  # pragma: no cover - unreachable after _validate_rank


def window_cut_multi(
    synopses: Iterable[SliceSynopsis],
    ranks: Sequence[int],
    *,
    global_window_size: int | None = None,
) -> dict[int, CutResult]:
    """Resolve several ranks from **one** sweep over the synopses.

    The multi-query plane's workhorse: N queries sharing a (key, window)
    need N ranks from the same synopsis set, and a single ascending sweep
    resolves each rank the moment its containing unit is materialized.
    Every returned :class:`CutResult` is exactly what
    :func:`window_cut` would produce for that rank alone — same
    candidates, same ``n_below``, same ``units_scanned``, same kinds
    census (property-tested) — the sweep is simply not repeated per rank.

    Args:
        synopses: All slice synopses of the global window.
        ranks: The 1-based global ranks to locate; duplicates collapse.
        global_window_size: Optional cross-check against the synopsis sum.

    Returns:
        A :class:`CutResult` per distinct rank, keyed by rank.

    Raises:
        IdentificationError: On an empty window, no ranks, an out-of-range
            rank, or a ``global_window_size`` mismatch.
    """
    if not ranks:
        raise IdentificationError("need at least one rank to cut for")
    ordered = sorted(synopses, key=lambda s: (s.first_key, s.last_key))
    total = sum(synopsis.count for synopsis in ordered)
    if global_window_size is not None and global_window_size != total:
        raise IdentificationError(
            f"synopses cover {total} events but the global window reports "
            f"{global_window_size}"
        )
    pending = sorted(set(ranks))
    for rank in pending:
        _validate_rank(rank, total)

    cuts: dict[int, CutResult] = {}
    n_below = 0
    scanned = 0
    index = 0
    next_rank = 0  # index into ``pending``
    while index < len(ordered) and next_rank < len(pending):
        scanned += 1
        members = [ordered[index]]
        current_max = ordered[index].last_key
        index += 1
        while index < len(ordered) and ordered[index].first_key <= current_max:
            members.append(ordered[index])
            if ordered[index].last_key > current_max:
                current_max = ordered[index].last_key
            index += 1
        unit = SliceUnit(members=tuple(members), offset=n_below)
        while (
            next_rank < len(pending)
            and pending[next_rank] <= unit.pos_end
        ):
            rank = pending[next_rank]
            candidates, below_in_unit = _cut_unit(unit, rank)
            cuts[rank] = CutResult(
                rank=rank,
                candidates=tuple(candidates),
                n_below=n_below + below_in_unit,
                units_scanned=scanned,
                kinds=_census([unit], candidates),
            )
            next_rank += 1
        n_below += unit.size
    if next_rank < len(pending):
        raise IdentificationError(
            f"no unit contains rank {pending[next_rank]}; synopses are "
            "inconsistent"
        )  # pragma: no cover - unreachable after _validate_rank
    return cuts


def _census(
    units: Sequence[SliceUnit], candidates: Sequence[SliceSynopsis]
) -> dict:
    """Count candidate slices by taxonomy kind."""
    chosen = {synopsis.slice_id for synopsis in candidates}
    counts = {kind.value: 0 for kind in SliceKind}
    for unit in units:
        for member in unit.members:
            if member.slice_id in chosen:
                counts[classify_slice(unit, member).value] += 1
    return counts
