"""Concurrent continuous queries over one Dema deployment.

The systems Dema builds on (Scotty, Desis) are fundamentally about serving
*many* windowed queries at once.  This module brings that capability to
Dema: any number of continuous quantile queries — different quantiles,
different window lengths or steps — run over the same event streams on the
same physical nodes.

Sharing structure.  Queries are partitioned into **groups** by their window
shape and slice factor.  Within a group the expensive local work happens
once: one sorted window, one slicing pass, one synopsis batch on the wire.
The root answers every quantile of the group from those synopses, fetching
the *union* of the candidate slices (the same sharing as
:func:`repro.core.multi.dema_quantiles`).  Groups with different window
shapes share only the physical substrate — ingestion CPU, channels and
their contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, IdentificationError, SliceError
from repro.network.driver import MS_PER_SECOND
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    Message,
    SynopsisMessage,
)
from repro.network.metrics import LatencyStats, NetworkMetrics
from repro.network.simulator import (
    INGEST_OPS,
    SimulatedNode,
    Simulator,
    merge_cost,
    receive_ops,
)
from repro.network.topology import Topology, TopologyConfig
from repro.obs.tracer import NOOP_TRACER
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.calculation import calculate_quantile
from repro.core.query import QuantileQuery
from repro.core.slicing import SlicedWindow, slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow
from repro.core.synopsis import SliceSynopsis
from repro.core.window_cut import CutResult, window_cut_multi

import math

__all__ = [
    "QueryGroup",
    "group_queries",
    "ConcurrentOutcome",
    "ConcurrentDemaLocalNode",
    "ConcurrentDemaRootNode",
    "ConcurrentDemaEngine",
]

#: Abstract ops for the slicing pass (per event), as in the single-query node.
_SLICE_OPS_PER_EVENT = 0.5

#: Abstract ops for serving one candidate event.
_SERVE_OPS_PER_EVENT = 0.5

#: Abstract ops per synopsis during identification.
_IDENTIFY_OPS_PER_SYNOPSIS = 4.0


@dataclass(frozen=True)
class QueryGroup:
    """Queries sharing window shape and slice factor.

    Attributes:
        group_id: Index used to multiplex protocol messages.
        queries: ``(query_index, query)`` pairs; the index refers to the
            caller's original query list.
    """

    group_id: int
    queries: tuple[tuple[int, QuantileQuery], ...]

    @property
    def shape(self) -> tuple[int, int | None, int]:
        """The shared ``(length, step, gamma)`` signature."""
        query = self.queries[0][1]
        return (query.window_length_ms, query.window_step_ms, query.gamma)

    @property
    def prototype(self) -> QuantileQuery:
        """A representative query (window shape and γ are shared)."""
        return self.queries[0][1]

    @property
    def quantiles(self) -> tuple[tuple[int, float], ...]:
        """``(query_index, q)`` pairs answered by this group."""
        return tuple(
            (index, query.q) for index, query in self.queries
        )


def group_queries(queries: Sequence[QuantileQuery]) -> list[QueryGroup]:
    """Partition queries into sharing groups by window shape and γ.

    Raises:
        ConfigurationError: If no queries are given or any query is
            adaptive (concurrent deployments use fixed per-group γ; the
            adaptive controller assumes a single query per root).
    """
    if not queries:
        raise ConfigurationError("need at least one query")
    for query in queries:
        if query.adaptive:
            raise ConfigurationError(
                "concurrent deployments require fixed-γ queries"
            )
    by_shape: dict[tuple, list[tuple[int, QuantileQuery]]] = {}
    for index, query in enumerate(queries):
        shape = (query.window_length_ms, query.window_step_ms, query.gamma)
        by_shape.setdefault(shape, []).append((index, query))
    return [
        QueryGroup(group_id=group_id, queries=tuple(members))
        for group_id, members in enumerate(
            by_shape[shape] for shape in sorted(by_shape, key=str)
        )
    ]


@dataclass(frozen=True, slots=True)
class ConcurrentOutcome:
    """One query's result for one window in a concurrent deployment."""

    query_index: int
    q: float
    window: Window
    value: float | None
    global_window_size: int
    result_time: float


@dataclass
class _GroupLocalState:
    """Per-group window state on a local node."""

    open: dict[Window, SortedLocalWindow] = field(default_factory=dict)
    pending: dict[Window, SlicedWindow] = field(default_factory=dict)
    completed: set[Window] = field(default_factory=set)


class ConcurrentDemaLocalNode(SimulatedNode):
    """Edge operator serving every query group from shared ingestion."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        groups: Sequence[QueryGroup],
        ops_per_second: float = 1e8,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._groups = {group.group_id: group for group in groups}
        self._assigners = {
            group.group_id: group.prototype.assigner() for group in groups
        }
        self._state = {
            group.group_id: _GroupLocalState() for group in groups
        }
        self._events_ingested = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far (once, regardless of group count)."""
        return self._events_ingested

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Route each event into every group's open windows.

        Ingestion (parse + route) is paid once per event; the sorted insert
        is paid once per *group* per event because each group maintains its
        own sorted windows.
        """
        insert_ops = 0.0
        for event in events:
            for group_id, assigner in self._assigners.items():
                state = self._state[group_id]
                for window in assigner.assign_event(event):
                    if window in state.completed:
                        continue
                    sorted_window = state.open.setdefault(
                        window, SortedLocalWindow()
                    )
                    sorted_window.add(event)
                    insert_ops += math.log2(max(len(sorted_window), 2))
        self._events_ingested += len(events)
        return self.work(INGEST_OPS * len(events) + insert_ops, now)

    def on_group_window_complete(
        self, group_id: int, window: Window, now: float
    ) -> None:
        """Seal one group's window; slice once; ship one synopsis batch."""
        state = self._state[group_id]
        if window in state.completed:
            return
        state.completed.add(window)
        sorted_window = state.open.pop(window, SortedLocalWindow())
        events = sorted_window.seal()
        finish = self.work(_SLICE_OPS_PER_EVENT * len(events), now)
        gamma = self._groups[group_id].prototype.gamma
        sliced = slice_sorted_events(events, gamma, self.node_id)
        state.pending[window] = sliced
        message = SynopsisMessage(
            sender=self.node_id,
            window=window,
            group_id=group_id,
            synopses=sliced.synopses,
            local_window_size=sliced.window_size,
        )
        self.send(message, self._root_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        """Serve candidate requests for any group."""
        if not isinstance(message, CandidateRequestMessage):
            raise SliceError(
                f"concurrent local node cannot handle "
                f"{type(message).__name__}"
            )
        state = self._state[message.group_id]
        sliced = state.pending.pop(message.window, None)
        if sliced is None:
            raise SliceError(
                f"node {self.node_id} has no sealed window {message.window} "
                f"for group {message.group_id}"
            )
        send_at = self.work(receive_ops(message.payload_bytes), now)
        for slice_index in message.slice_indices:
            run = sliced.run_for(slice_index)
            send_at = self.work(_SERVE_OPS_PER_EVENT * len(run), send_at)
            reply = CandidateEventsMessage(
                sender=self.node_id,
                window=message.window,
                group_id=message.group_id,
                slice_index=slice_index,
                events=run,
            )
            self.send(reply, self._root_id, send_at)


@dataclass
class _GroupWindowState:
    """Root-side bookkeeping for one (group, window) pair."""

    synopses: dict[int, tuple[SliceSynopsis, ...]] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    cuts: dict[int, CutResult] = field(default_factory=dict)
    requests: dict[int, tuple[int, ...]] = field(default_factory=dict)
    runs: dict[tuple[int, int], tuple[Event, ...]] = field(default_factory=dict)
    expected_runs: int = 0


class ConcurrentDemaRootNode(SimulatedNode):
    """Root operator answering every group's quantiles from shared synopses."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        groups: Sequence[QueryGroup],
        ops_per_second: float = 2e8,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        if not local_ids:
            raise IdentificationError("root needs at least one local node")
        self._local_ids = tuple(local_ids)
        self._groups = {group.group_id: group for group in groups}
        self._states: dict[tuple[int, Window], _GroupWindowState] = {}
        self._outcomes: list[ConcurrentOutcome] = []

    @property
    def outcomes(self) -> list[ConcurrentOutcome]:
        """Per-query, per-window results in completion order."""
        return list(self._outcomes)

    @property
    def open_windows(self) -> int:
        """(group, window) pairs still in flight."""
        return len(self._states)

    def on_message(self, message: Message, now: float) -> None:
        """Dispatch synopsis batches and candidate runs by group."""
        if isinstance(message, SynopsisMessage):
            self._on_synopses(message, now)
        elif isinstance(message, CandidateEventsMessage):
            self._on_candidates(message, now)
        else:
            raise IdentificationError(
                f"concurrent root cannot handle {type(message).__name__}"
            )

    def _on_synopses(self, message: SynopsisMessage, now: float) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        key = (message.group_id, message.window)
        state = self._states.setdefault(key, _GroupWindowState())
        if message.sender in state.synopses:
            raise IdentificationError(
                f"duplicate synopsis batch from node {message.sender} for "
                f"group {message.group_id}, window {message.window}"
            )
        state.synopses[message.sender] = message.synopses
        state.sizes[message.sender] = message.local_window_size
        if len(state.synopses) == len(self._local_ids):
            self._identify(message.group_id, message.window, state, now)

    def _identify(
        self,
        group_id: int,
        window: Window,
        state: _GroupWindowState,
        now: float,
    ) -> None:
        group = self._groups[group_id]
        total = sum(state.sizes.values())
        if total == 0:
            self._states.pop((group_id, window))
            for query_index, q in group.quantiles:
                self._outcomes.append(
                    ConcurrentOutcome(
                        query_index=query_index,
                        q=q,
                        window=window,
                        value=None,
                        global_window_size=0,
                        result_time=now,
                    )
                )
            return

        all_synopses = [
            synopsis
            for batch in state.synopses.values()
            for synopsis in batch
        ]
        n_synopses = len(all_synopses)
        ops = _IDENTIFY_OPS_PER_SYNOPSIS * n_synopses * max(
            1.0, math.log2(max(n_synopses, 2))
        ) * len(group.quantiles)
        finish = self.work(ops, now)
        if self._tracer.enabled:
            self._tracer.record(
                "identification",
                self.node_id,
                now,
                finish,
                window=window,
                group=group_id,
                synopses=n_synopses,
                quantiles=len(group.quantiles),
            )

        ranks = {
            query_index: quantile_rank(q, total)
            for query_index, q in group.quantiles
        }
        cuts_by_rank = window_cut_multi(
            all_synopses, sorted(set(ranks.values())),
            global_window_size=total,
        )
        union: set[tuple[int, int]] = set()
        for query_index, _ in group.quantiles:
            cut = cuts_by_rank[ranks[query_index]]
            state.cuts[query_index] = cut
            union.update(cut.candidate_ids)

        requests: dict[int, list[int]] = {}
        for node_id, slice_index in union:
            requests.setdefault(node_id, []).append(slice_index)
        state.requests = {
            node_id: tuple(sorted(indices))
            for node_id, indices in requests.items()
        }
        state.expected_runs = len(union)
        for local_id in self._local_ids:
            request = CandidateRequestMessage(
                sender=self.node_id,
                window=window,
                group_id=group_id,
                slice_indices=state.requests.get(local_id, ()),
            )
            self.send(request, local_id, finish)

    def _on_candidates(
        self, message: CandidateEventsMessage, now: float
    ) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        key = (message.group_id, message.window)
        state = self._states.get(key)
        if state is None or not state.cuts:
            raise IdentificationError(
                f"unexpected candidate events for group {message.group_id}, "
                f"window {message.window}"
            )
        run_key = (message.sender, message.slice_index)
        if run_key in state.runs:
            raise IdentificationError(
                f"duplicate candidate run {run_key} for window {message.window}"
            )
        state.runs[run_key] = message.events
        if len(state.runs) == state.expected_runs:
            self._calculate(message.group_id, message.window, state, now)

    def _calculate(
        self,
        group_id: int,
        window: Window,
        state: _GroupWindowState,
        now: float,
    ) -> None:
        group = self._groups[group_id]
        total_fetched = sum(len(run) for run in state.runs.values())
        finish = self.work(
            merge_cost(total_fetched, max(len(state.runs), 1)), now
        )
        if self._tracer.enabled:
            self._tracer.record(
                "calculation",
                self.node_id,
                now,
                finish,
                window=window,
                group=group_id,
                candidate_events=total_fetched,
                runs=len(state.runs),
            )
        total = sum(state.sizes.values())
        self._states.pop((group_id, window))
        for query_index, q in group.quantiles:
            cut = state.cuts[query_index]
            runs = [
                state.runs[synopsis.slice_id] for synopsis in cut.candidates
            ]
            answer = calculate_quantile(cut, runs)
            self._outcomes.append(
                ConcurrentOutcome(
                    query_index=query_index,
                    q=q,
                    window=window,
                    value=answer.value,
                    global_window_size=total,
                    result_time=finish,
                )
            )


@dataclass
class ConcurrentRunReport:
    """Results of one concurrent-deployment run."""

    outcomes: list[ConcurrentOutcome]
    network: NetworkMetrics
    latency: LatencyStats
    final_time: float
    events_ingested: int

    def outcomes_for(self, query_index: int) -> list[ConcurrentOutcome]:
        """Chronological outcomes of one query."""
        return sorted(
            (o for o in self.outcomes if o.query_index == query_index),
            key=lambda o: o.window,
        )


class ConcurrentDemaEngine:
    """A multi-query Dema deployment on the simulated network."""

    def __init__(
        self,
        queries: Sequence[QuantileQuery],
        topology_config: TopologyConfig,
        *,
        batch_size: int = 512,
        tracer=None,
    ) -> None:
        self._queries = list(queries)
        self._groups = group_queries(queries)
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._simulator = Simulator(tracer=self._tracer)
        self._root: ConcurrentDemaRootNode | None = None
        local_ids = list(range(1, topology_config.n_local_nodes + 1))

        def root_factory(node_id: int, ops: float) -> ConcurrentDemaRootNode:
            self._root = ConcurrentDemaRootNode(
                node_id,
                local_ids=local_ids,
                groups=self._groups,
                ops_per_second=ops,
            )
            return self._root

        def local_factory(node_id: int, ops: float) -> ConcurrentDemaLocalNode:
            return ConcurrentDemaLocalNode(
                node_id,
                root_id=0,
                groups=self._groups,
                ops_per_second=ops,
            )

        self._topology = Topology.build(
            self._simulator,
            topology_config,
            root_factory=root_factory,
            local_factory=local_factory,
        )
        self._batch_size = batch_size
        self._events_ingested = 0
        if self._tracer.enabled:
            for node in self._simulator.nodes.values():
                node.set_tracer(self._tracer)

    @property
    def simulator(self) -> Simulator:
        """The underlying discrete-event engine."""
        return self._simulator

    @property
    def topology(self) -> Topology:
        """The wired deployment."""
        return self._topology

    @property
    def groups(self) -> list[QueryGroup]:
        """The sharing groups the queries were partitioned into."""
        return list(self._groups)

    @property
    def root(self) -> ConcurrentDemaRootNode:
        """The root operator."""
        assert self._root is not None
        return self._root

    def run(
        self, streams: Mapping[int, Sequence[Event]]
    ) -> ConcurrentRunReport:
        """Feed per-local-node streams through every query at once."""
        unknown = set(streams) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        group_windows: dict[int, set[Window]] = {
            group.group_id: set() for group in self._groups
        }
        for local_id in self._topology.local_ids:
            events = streams.get(local_id, ())
            self._feed(self._simulator.nodes[local_id], events)
            for group in self._groups:
                assigner = group.prototype.assigner()
                for event in events:
                    group_windows[group.group_id].update(
                        assigner.assign(event.timestamp)
                    )
        for local_id in self._topology.local_ids:
            operator = self._simulator.nodes[local_id]
            for group_id, windows in group_windows.items():
                for window in sorted(windows):
                    completion = window.end / MS_PER_SECOND + 1e-6
                    self._simulator.schedule(
                        completion,
                        lambda now, op=operator, g=group_id, w=window: (
                            op.on_group_window_complete(g, w, now)
                        ),
                    )

        final_time = self._simulator.run()
        outcomes = self.root.outcomes
        latency = LatencyStats()
        for outcome in outcomes:
            latency.add(
                outcome.result_time - outcome.window.end / MS_PER_SECOND
            )
        if self._tracer.enabled:
            self._tracer.registry.counter(
                "windows_completed_total", "Windows that produced a result."
            ).inc(len(outcomes))
            self._tracer.finalize(self._simulator, final_time)
        return ConcurrentRunReport(
            outcomes=outcomes,
            network=NetworkMetrics.capture(self._simulator),
            latency=latency,
            final_time=final_time,
            events_ingested=self._events_ingested,
        )

    def _feed(self, operator, events: Sequence[Event]) -> None:
        """Schedule ingestion batches; splits whenever any group's window
        assignment changes so arrivals stay within their windows."""
        assigners = [group.prototype.assigner() for group in self._groups]

        def signature(timestamp: int):
            return tuple(assigner.assign(timestamp) for assigner in assigners)

        batch: list[Event] = []
        last_timestamp: int | None = None
        for event in events:
            if last_timestamp is not None and event.timestamp < last_timestamp:
                raise ConfigurationError(
                    "event timestamps must be non-decreasing"
                )
            last_timestamp = event.timestamp
            if batch and (
                len(batch) >= self._batch_size
                or signature(batch[0].timestamp) != signature(event.timestamp)
            ):
                self._schedule_batch(operator, tuple(batch))
                batch = []
            batch.append(event)
        if batch:
            self._schedule_batch(operator, tuple(batch))

    def _schedule_batch(self, operator, batch: tuple[Event, ...]) -> None:
        arrival = batch[-1].timestamp / MS_PER_SECOND
        self._events_ingested += len(batch)
        self._simulator.schedule(
            arrival, lambda now, b=batch: operator.ingest(b, now)
        )
