"""Incrementally sorted local windows.

Dema "incrementally sorts arriving events into windows" (Section 3.1): when
the window ends, its events are already in key order, so slicing is a single
linear pass.  The implementation keeps an insertion buffer and merges it into
the sorted run whenever it grows past a bound — an adaptive strategy that is
O(n log n) total like a final sort, but spreads the work over the window's
lifetime the way the paper's local nodes do.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.errors import SliceError
from repro.streaming.events import Event, event_key

__all__ = ["SortedLocalWindow"]

#: The insertion buffer is merged once it exceeds this fraction of the run.
_BUFFER_FRACTION = 0.25

#: ...but never before it holds this many events.
_BUFFER_MIN = 64


class SortedLocalWindow:
    """Events of one local window, kept sorted by total-order key."""

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._run: list[Event] = sorted(events, key=event_key)
        self._buffer: list[Event] = []
        self._sealed = False

    def __len__(self) -> int:
        return len(self._run) + len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        """Iterate events in sorted order (compacts first)."""
        self._compact()
        return iter(self._run)

    @property
    def is_sealed(self) -> bool:
        """Whether the window has been closed to further inserts."""
        return self._sealed

    def add(self, event: Event) -> None:
        """Insert one event.

        Raises:
            SliceError: If the window was already sealed.
        """
        if self._sealed:
            raise SliceError("cannot add events to a sealed window")
        bisect.insort(self._buffer, event, key=event_key)
        threshold = max(_BUFFER_MIN, int(len(self._run) * _BUFFER_FRACTION))
        if len(self._buffer) > threshold:
            self._compact()

    def add_all(self, events: Iterable[Event]) -> None:
        """Insert a batch of events."""
        for event in events:
            self.add(event)

    def seal(self) -> list[Event]:
        """Close the window and return its events in sorted order.

        Sealing is idempotent; the returned list is owned by the window
        (callers slice it, they do not mutate it).
        """
        self._compact()
        self._sealed = True
        return self._run

    def sorted_events(self) -> list[Event]:
        """A snapshot of the events in sorted order (window stays open)."""
        self._compact()
        return list(self._run)

    def _compact(self) -> None:
        if not self._buffer:
            return
        merged: list[Event] = []
        run, buf = self._run, self._buffer
        i = j = 0
        while i < len(run) and j < len(buf):
            if run[i].key <= buf[j].key:
                merged.append(run[i])
                i += 1
            else:
                merged.append(buf[j])
                j += 1
        merged.extend(run[i:])
        merged.extend(buf[j:])
        self._run = merged
        self._buffer = []
