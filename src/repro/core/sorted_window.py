"""Batch-sorted local windows.

Dema "incrementally sorts arriving events into windows" (Section 3.1): when
the window ends, its events are already in key order, so slicing is a single
linear pass.  The implementation buffers arrivals in a plain appendable list
and pays for order exactly once, at the window cut: one ``list.sort`` of the
buffer (Timsort, which exploits the near-sorted runs real streams produce)
followed by a linear merge into the existing sorted run.  That is O(n log n)
total — the same bound as per-event ``insort`` — but with O(1) ingest cost
per event and none of the O(n) ``memmove`` traffic binary insertion pays on
large windows, which is what the hot-path benchmarks actually measure.

The observable contract is unchanged: :meth:`seal`, :meth:`sorted_events`
and iteration yield the identical sorted sequence the insertion-based
implementation produced (the total-order key is strict, so there is exactly
one sorted permutation).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SliceError
from repro.streaming.events import Event, event_key

__all__ = ["SortedLocalWindow"]


class SortedLocalWindow:
    """Events of one local window, kept sorted by total-order key."""

    __slots__ = ("_run", "_buffer", "_sealed")

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._run: list[Event] = sorted(events, key=event_key)
        self._buffer: list[Event] = []
        self._sealed = False

    def __len__(self) -> int:
        return len(self._run) + len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        """Iterate events in sorted order (compacts first)."""
        self._compact()
        return iter(self._run)

    @property
    def is_sealed(self) -> bool:
        """Whether the window has been closed to further inserts."""
        return self._sealed

    def add(self, event: Event) -> None:
        """Insert one event in O(1); ordering is deferred to the cut.

        Raises:
            SliceError: If the window was already sealed.
        """
        if self._sealed:
            raise SliceError("cannot add events to a sealed window")
        self._buffer.append(event)

    def add_all(self, events: Iterable[Event]) -> None:
        """Insert a batch of events in one extend.

        Raises:
            SliceError: If the window was already sealed.
        """
        if self._sealed:
            raise SliceError("cannot add events to a sealed window")
        self._buffer.extend(events)

    def seal(self) -> list[Event]:
        """Close the window and return its events in sorted order.

        Sealing is idempotent; the returned list is owned by the window
        (callers slice it, they do not mutate it).
        """
        self._compact()
        self._sealed = True
        return self._run

    def sorted_events(self) -> list[Event]:
        """A snapshot of the events in sorted order (window stays open)."""
        self._compact()
        return list(self._run)

    def _compact(self) -> None:
        buf = self._buffer
        if not buf:
            return
        buf.sort(key=event_key)
        run = self._run
        if not run:
            self._run = buf
            self._buffer = []
            return
        # Common cut-time case: the whole batch lands after (or before) the
        # existing run, so the merge degenerates to a concatenation.
        if run[-1].key <= buf[0].key:
            run.extend(buf)
            self._buffer = []
            return
        merged: list[Event] = []
        i = j = 0
        n_run, n_buf = len(run), len(buf)
        while i < n_run and j < n_buf:
            if run[i].key <= buf[j].key:
                merged.append(run[i])
                i += 1
            else:
                merged.append(buf[j])
                j += 1
        merged.extend(run[i:])
        merged.extend(buf[j:])
        self._run = merged
        self._buffer = []
