"""Batch-sorted local windows.

Dema "incrementally sorts arriving events into windows" (Section 3.1): when
the window ends, its events are already in key order, so slicing is a single
linear pass.  The implementation buffers arrivals and pays for order exactly
once, at the window cut.

Two ingest shapes share the class:

* **Object batches** (the simulator, the query plane): arrivals collect in
  a plain appendable list; compaction is one ``list.sort`` of the buffer
  (Timsort, which exploits the near-sorted runs real streams produce)
  followed by a linear merge into the existing sorted run.  That is
  O(n log n) total — the same bound as per-event ``insort`` — but with
  O(1) ingest cost per event and none of the O(n) ``memmove`` traffic
  binary insertion pays on large windows.
* **Columnar batches** (the live hot path): :class:`EventColumns` chunks
  collect unconverted; compaction concatenates them and sorts/merges on
  the parallel arrays via :func:`repro.streaming.columns.merge_runs`,
  never materializing per-event objects.  The run itself then *stays*
  columnar through :meth:`seal` into slicing.

The observable contract is identical either way: :meth:`seal`,
:meth:`sorted_events` and iteration yield the one sorted sequence the
insertion-based implementation produced (the total-order key is strict,
so there is exactly one sorted permutation; with NaN values the columnar
merge mirrors the object path's comparisons bit for bit).  A window fed a
*mix* of object and columnar batches degrades to the object algorithm
over the materialized union.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SliceError
from repro.streaming.columns import EventColumns, concat_columns, merge_runs
from repro.streaming.events import Event, event_key

# Hot-path module: events stay columnar through compaction; ``Event``
# objects only materialize on the mixed-mode degradation path, inside
# columns.py (enforced by tests/test_hotpath_lint.py).

__all__ = ["SortedLocalWindow"]


class SortedLocalWindow:
    """Events of one local window, kept sorted by total-order key."""

    __slots__ = ("_run", "_buffer", "_chunks", "_sealed")

    def __init__(self, events: Iterable[Event] = ()) -> None:
        # _run is list[Event] (object mode) or EventColumns (columnar).
        if isinstance(events, EventColumns):
            self._run: "list[Event] | EventColumns" = merge_runs(None, events)
        else:
            self._run = sorted(events, key=event_key)
        self._buffer: list[Event] = []
        self._chunks: list[EventColumns] = []
        self._sealed = False

    def __len__(self) -> int:
        return (
            len(self._run)
            + len(self._buffer)
            + sum(len(chunk) for chunk in self._chunks)
        )

    def __iter__(self) -> Iterator[Event]:
        """Iterate events in sorted order (compacts first)."""
        self._compact()
        return iter(self._run)

    @property
    def is_sealed(self) -> bool:
        """Whether the window has been closed to further inserts."""
        return self._sealed

    def add(self, event: Event) -> None:
        """Insert one event in O(1); ordering is deferred to the cut.

        Raises:
            SliceError: If the window was already sealed.
        """
        if self._sealed:
            raise SliceError("cannot add events to a sealed window")
        self._buffer.append(event)

    def add_all(self, events: Iterable[Event]) -> None:
        """Insert a batch of events in one extend.

        Columnar batches are kept columnar (no per-event work) and sorted
        on their arrays at the cut; anything else extends the object
        buffer.

        Raises:
            SliceError: If the window was already sealed.
        """
        if self._sealed:
            raise SliceError("cannot add events to a sealed window")
        if isinstance(events, EventColumns):
            if len(events):
                self._chunks.append(events)
        else:
            self._buffer.extend(events)

    def seal(self):
        """Close the window and return its events in sorted order.

        Sealing is idempotent; the returned sequence — a list or an
        :class:`EventColumns`, depending on how the window was fed — is
        owned by the window (callers slice it, they do not mutate it).
        """
        self._compact()
        self._sealed = True
        return self._run

    def sorted_events(self):
        """The events in sorted order, as a **read-only snapshot**.

        Returns the window's own compacted run without copying, so
        repeated mid-window cuts cost O(1) when nothing new arrived.
        The snapshot is only valid until the next ``add``/``add_all``
        plus compaction; callers that need to keep it across inserts
        must copy it themselves.
        """
        self._compact()
        return self._run

    def _compact(self) -> None:
        chunks = self._chunks
        buf = self._buffer
        if chunks:
            run = self._run
            if not buf and (isinstance(run, EventColumns) or not run):
                # Pure columnar: sort/merge on the parallel arrays.
                pending = concat_columns(chunks)
                self._run = merge_runs(
                    run if isinstance(run, EventColumns) else None, pending
                )
                self._chunks = []
                return
            # Mixed object/columnar feed: degrade to the object algorithm
            # over everything.  Chunk events join the pending buffer; a
            # columnar run rematerializes once.
            for chunk in chunks:
                buf.extend(chunk)
            self._chunks = []
            if isinstance(run, EventColumns):
                self._run = list(run)
        elif isinstance(self._run, EventColumns) and buf:
            # Object arrivals on a columnar run: same degradation.
            self._run = list(self._run)
        if not buf:
            return
        buf.sort(key=event_key)
        run = self._run
        if not run:
            self._run = buf
            self._buffer = []
            return
        # Common cut-time case: the whole batch lands after (or before) the
        # existing run, so the merge degenerates to a concatenation.
        if run[-1].key <= buf[0].key:
            run.extend(buf)
            self._buffer = []
            return
        merged: list[Event] = []
        i = j = 0
        n_run, n_buf = len(run), len(buf)
        while i < n_run and j < n_buf:
            if run[i].key <= buf[j].key:
                merged.append(run[i])
                i += 1
            else:
                merged.append(buf[j])
                j += 1
        merged.extend(run[i:])
        merged.extend(buf[j:])
        self._run = merged
        self._buffer = []
