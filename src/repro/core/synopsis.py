"""Slice synopses: the unit of information in Dema's identification step.

A synopsis describes one slice of a locally sorted window: its first and
last event keys, how many events it holds, which slice of how many it is, and
which node owns it.  The root node reasons about quantile ranks exclusively
through synopses; the events themselves stay at the local node until the
calculation step requests them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SliceError
from repro.streaming.events import EventKey

__all__ = ["SliceSynopsis"]


@dataclass(frozen=True, slots=True)
class SliceSynopsis:
    """Summary of one sorted slice of a local window.

    Attributes:
        first_key: Total-order key of the smallest event in the slice.
        last_key: Total-order key of the largest event in the slice.
        count: Number of events in the slice (≥ 1; ≥ 2 for non-final
            slices per the paper, enforced by the slicer, not here).
        node_id: Local node that owns the slice.
        slice_index: 0-based position of the slice within its window.
        n_slices: Total number of slices the window was cut into.
    """

    first_key: EventKey
    last_key: EventKey
    count: int
    node_id: int
    slice_index: int
    n_slices: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SliceError(f"slice count must be >= 1, got {self.count}")
        if self.first_key > self.last_key:
            raise SliceError(
                f"slice first_key {self.first_key} exceeds last_key "
                f"{self.last_key}"
            )
        if not 0 <= self.slice_index < self.n_slices:
            raise SliceError(
                f"slice_index {self.slice_index} out of range for "
                f"{self.n_slices} slices"
            )

    @property
    def slice_id(self) -> tuple[int, int]:
        """Globally unique id of the slice: ``(node_id, slice_index)``."""
        return (self.node_id, self.slice_index)

    @property
    def first_value(self) -> float:
        """Value component of the smallest event."""
        return self.first_key[0]

    @property
    def last_value(self) -> float:
        """Value component of the largest event."""
        return self.last_key[0]

    def overlaps(self, other: "SliceSynopsis") -> bool:
        """Whether the two inclusive key ranges share any key."""
        return (
            self.first_key <= other.last_key
            and other.first_key <= self.last_key
        )

    def encloses(self, other: "SliceSynopsis") -> bool:
        """Whether ``other``'s key range lies entirely within this one."""
        return (
            self.first_key <= other.first_key
            and other.last_key <= self.last_key
        )

    def certainly_below(self, other: "SliceSynopsis") -> bool:
        """Whether every event here is strictly smaller than all of ``other``."""
        return self.last_key < other.first_key

    def certainly_above(self, other: "SliceSynopsis") -> bool:
        """Whether every event here is strictly larger than all of ``other``."""
        return self.first_key > other.last_key
