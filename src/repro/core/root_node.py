"""Dema root-node operator (cloud server).

The root collects one synopsis batch per local node per global window.  Once
the batch set is complete it runs the identification step (window-cut),
requests exactly the candidate slices, merges the pre-sorted candidate runs
as they arrive, and emits the exact quantile.  With adaptivity enabled it
then re-optimizes γ from the observed window statistics and broadcasts the
new factor to every local node (Section 3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import IdentificationError
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    Message,
    SynopsisMessage,
    SynopsisRequestMessage,
    WindowReleaseMessage,
)
from repro.network.driver import MS_PER_SECOND
from repro.network.simulator import SimulatedNode, merge_cost, receive_ops
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.adaptive import AdaptiveGammaController, NodeGammaController
from repro.core.calculation import calculate_quantile
from repro.core.identification import IdentificationResult, identify
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.core.synopsis import SliceSynopsis

__all__ = ["WindowOutcome", "DemaRootNode"]

#: Abstract ops for sorting and sweeping s synopses during identification.
_IDENTIFY_OPS_PER_SYNOPSIS = 4.0


@dataclass(frozen=True, slots=True)
class WindowOutcome:
    """One global window's final result plus reproduction metrics."""

    window: Window
    value: float | None
    global_window_size: int
    result_time: float
    candidate_events: int
    candidate_slices: int
    synopses_received: int
    gamma_used: int
    #: Fraction of the configured locals whose data formed this answer.
    #: 1.0 is the normal case; < 1.0 marks a degraded answer computed
    #: without locals that were declared dead or gave up.
    completeness: float = 1.0

    @property
    def is_empty(self) -> bool:
        """Whether the global window held no events."""
        return self.global_window_size == 0

    @property
    def is_degraded(self) -> bool:
        """Whether some configured locals were missing from this answer."""
        return self.completeness < 1.0


@dataclass
class _WindowState:
    """Root-side bookkeeping for one in-flight global window."""

    synopses: dict[int, tuple[SliceSynopsis, ...]] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    identification: IdentificationResult | None = None
    runs: dict[tuple[int, int], tuple[Event, ...]] = field(default_factory=dict)
    expected_runs: int = 0
    gamma_used: int = 0
    retries: int = 0
    #: Locals whose synopses the current identification was computed over
    #: (set when identification runs; ``None`` before).
    participants: tuple[int, ...] | None = None
    #: Locals given up on for this window only (degradation).
    excluded: set[int] = field(default_factory=set)
    #: Tracing bookkeeping: the window's parent span id and the time the
    #: candidate requests went out (start of the candidate_fetch phase).
    window_span: int = 0
    fetch_started: float = 0.0


class DemaRootNode(SimulatedNode):
    """Cloud operator implementing Dema's root-node protocol."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
        reliability: ReliabilityConfig | None = None,
        degrade_after_retries: bool = False,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        if not local_ids:
            raise IdentificationError("root needs at least one local node")
        self._reliability = reliability
        self._degrade = degrade_after_retries
        self._aborted_windows = 0
        self._local_ids = tuple(local_ids)
        self._query = query
        self._gamma = query.gamma
        self._controller: AdaptiveGammaController | None = None
        self._node_controller: NodeGammaController | None = None
        if query.adaptive:
            if query.per_node_gamma:
                self._node_controller = NodeGammaController(query.gamma)
            else:
                self._controller = AdaptiveGammaController(gamma=query.gamma)
        self._states: dict[Window, _WindowState] = {}
        self._outcomes: list[WindowOutcome] = []
        #: Tombstones for released windows: a synopsis arriving for one of
        #: these means the local never saw the release (it was lost) and is
        #: resending; answering with a fresh release — instead of opening
        #: phantom window state — keeps the protocol convergent.  Entries
        #: expire once the local's own resend retries must have run out.
        self._released: dict[Window, float] = {}
        #: Locals the failure detector has declared dead (until revived).
        self._dead: set[int] = set()
        self._deaths_declared = 0
        #: Elastic membership: first window start a runtime joiner serves,
        #: and first window start a departed local no longer serves.  The
        #: constructor's locals carry no entries — they are eligible for
        #: every window — so a run without joins or leaves behaves (and
        #: answers) exactly as before.
        self._joined_from: dict[int, int] = {}
        self._left_at: dict[int, int] = {}
        self._membership_epoch = 0
        #: Windows answered or aborted, permanently.  Unlike the expiring
        #: tombstones above, this survives arbitrarily long outages: a
        #: local resuming after minutes still gets a release, never a
        #: phantom re-opened window.  One ``Window`` per grid window for
        #: the run's lifetime — cheap at reproduction scale.
        self._finalized: set[Window] = set()

    @property
    def outcomes(self) -> list[WindowOutcome]:
        """Completed global windows, in completion order."""
        return list(self._outcomes)

    @property
    def local_ids(self) -> tuple[int, ...]:
        """Configured local node ids, in constructor order."""
        return self._local_ids

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Locals currently declared dead by the failure detector."""
        return frozenset(self._dead)

    @property
    def deaths_declared(self) -> int:
        """Times :meth:`mark_dead` newly declared a local dead."""
        return self._deaths_declared

    @property
    def degraded_windows(self) -> int:
        """Completed windows answered without some configured locals."""
        return sum(1 for outcome in self._outcomes if outcome.is_degraded)

    @property
    def gamma(self) -> int:
        """Slice factor the root currently prescribes."""
        return self._gamma

    @property
    def node_gammas(self) -> dict[int, int]:
        """Per-node factors in force (empty unless ``per_node_gamma``)."""
        if self._node_controller is None:
            return {}
        return self._node_controller.gammas

    @property
    def open_windows(self) -> int:
        """Global windows still awaiting synopses or candidate events."""
        return len(self._states)

    @property
    def aborted_windows(self) -> int:
        """Windows abandoned after exhausting reliability retries."""
        return self._aborted_windows

    @property
    def membership_epoch(self) -> int:
        """Counts membership changes (joins + leaves) applied so far."""
        return self._membership_epoch

    @property
    def current_members(self) -> tuple[int, ...]:
        """Locals that have not announced a departure, in member order."""
        return tuple(
            local_id
            for local_id in self._local_ids
            if local_id not in self._left_at
        )

    def add_local(self, node_id: int, first_window_start: int) -> bool:
        """Admit a runtime joiner, eligible from ``first_window_start``.

        Idempotent; a re-join after a leave reopens eligibility from the
        new start.  Returns whether the membership view changed.
        """
        changed = False
        if node_id not in self._local_ids:
            self._local_ids = self._local_ids + (node_id,)
            changed = True
        if self._joined_from.get(node_id) != first_window_start:
            self._joined_from[node_id] = first_window_start
            changed = True
        if self._left_at.pop(node_id, None) is not None:
            changed = True
        self._dead.discard(node_id)
        if changed:
            self._membership_epoch += 1
        return changed

    def remove_local(
        self, node_id: int, effective_from: int, now: float
    ) -> bool:
        """Graceful leave: stop expecting ``node_id`` from
        ``effective_from`` on.

        Open windows at or past the boundary immediately re-evaluate
        without the leaver, so none of them can hang waiting on data the
        leaver will never send.  Windows before the boundary are
        untouched — the leaver still owes (and serves) them.
        """
        if node_id not in self._local_ids:
            return False
        if self._left_at.get(node_id) == effective_from:
            return False
        self._left_at[node_id] = effective_from
        self._membership_epoch += 1
        for window in sorted(self._states):
            if window.start < effective_from:
                continue
            state = self._states.get(window)
            if state is not None:
                self._give_up_on(window, state, {node_id}, now)
        return True

    def _eligible_locals(self, window: Window) -> tuple[int, ...]:
        """Locals that are members for ``window`` (joined, not yet left)."""
        return tuple(
            local_id
            for local_id in self._local_ids
            if self._joined_from.get(local_id, window.start) <= window.start
            and window.start < self._left_at.get(local_id, window.end)
        )

    def on_message(self, message: Message, now: float) -> None:
        """Dispatch local → root protocol messages."""
        if isinstance(message, SynopsisMessage):
            self._on_synopses(message, now)
        elif isinstance(message, CandidateEventsMessage):
            self._on_candidates(message, now)
        else:
            raise IdentificationError(
                f"root cannot handle {type(message).__name__}"
            )

    def _on_synopses(self, message: SynopsisMessage, now: float) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        if self._reliability is not None and self._was_released(
            message.window, now
        ):
            # The window is already answered; this synopsis is a local
            # resend, so the release we sent it must have been lost.
            self.send(
                WindowReleaseMessage(
                    sender=self.node_id, window=message.window
                ),
                message.sender,
                now,
            )
            return
        fresh = message.window not in self._states
        state = self._states.setdefault(message.window, _WindowState())
        if message.sender in state.synopses:
            if self._reliability is not None:
                return  # retransmission of a batch that did arrive
            raise IdentificationError(
                f"duplicate synopsis batch from node {message.sender} "
                f"for window {message.window}"
            )
        state.synopses[message.sender] = message.synopses
        state.sizes[message.sender] = message.local_window_size
        if fresh and self._tracer.enabled:
            # The window span covers the full end-to-end latency interval,
            # so it starts at the window's event-time end, not at arrival.
            state.window_span = self._tracer.begin(
                "window",
                self.node_id,
                message.window.end / MS_PER_SECOND,
                window=message.window,
            )
        if fresh and self._reliability is not None:
            self._arm_timer(message.window, now)
        if state.identification is None and self._synopses_complete(
            message.window, state
        ):
            self._identify(message.window, state, now)

    def _expected_locals(
        self, window: Window, state: _WindowState
    ) -> tuple[int, ...]:
        """Locals this window still expects data from (alive, not given up)."""
        return tuple(
            local_id
            for local_id in self._eligible_locals(window)
            if local_id not in self._dead and local_id not in state.excluded
        )

    def _synopses_complete(self, window: Window, state: _WindowState) -> bool:
        return set(self._expected_locals(window, state)) <= set(state.synopses)

    def _required_runs(self, state: _WindowState) -> set[tuple[int, int]]:
        """Run keys the current identification is waiting for."""
        assert state.identification is not None
        return {
            (local_id, index)
            for local_id, indices in state.identification.requests.items()
            for index in indices
        }

    def _runs_complete(self, state: _WindowState) -> bool:
        return self._required_runs(state) <= set(state.runs)

    def _stalled_locals(self, window: Window, state: _WindowState) -> set[int]:
        """Expected locals the current phase is still blocked on."""
        expected = set(self._expected_locals(window, state))
        if state.identification is None:
            return expected - set(state.synopses)
        stalled = set()
        for local_id, indices in state.identification.requests.items():
            if local_id not in expected:
                continue
            if any((local_id, index) not in state.runs for index in indices):
                stalled.add(local_id)
        return stalled

    def mark_dead(self, node_id: int, now: float) -> bool:
        """Failure-detector verdict: stop waiting on ``node_id`` anywhere.

        Every in-flight window immediately re-evaluates against the
        survivors, so windows blocked only on the dead local answer now —
        tagged with ``completeness < 1`` — instead of burning retries.
        Returns whether the node was newly declared dead.
        """
        if node_id not in self._local_ids or node_id in self._dead:
            return False
        self._dead.add(node_id)
        self._deaths_declared += 1
        for window in sorted(self._states):
            state = self._states.get(window)
            if state is not None:
                self._give_up_on(window, state, {node_id}, now)
        return True

    def mark_alive(self, node_id: int) -> bool:
        """Revive a local (reconnect): expect it again for future windows.

        Windows already re-planned without it are not re-opened — their
        answers stand; the revived local's replayed synopses for them get
        releases.  Returns whether the node was previously dead.
        """
        if node_id not in self._dead:
            return False
        self._dead.discard(node_id)
        return True

    def resume_release(self, local_id: int, resume_from: int, now: float) -> bool:
        """Session-resume fast path: cumulatively re-release old windows.

        A reconnecting local announces the end of the highest window it
        has seen released (``resume_from``, from the ``Hello`` preamble).
        Finalized windows past that cursor whose releases it evidently
        missed are re-acknowledged with one cumulative release — capped
        below the earliest still-open window, because a release frees
        everything at or below its end.  Returns whether one was sent.
        """
        if self._reliability is None:
            return False
        candidates = [w.end for w in self._finalized if w.end > resume_from]
        if not candidates:
            return False
        open_ends = [w.end for w in self._states]
        cap = min(open_ends) if open_ends else None
        safe = [end for end in candidates if cap is None or end < cap]
        if not safe:
            return False
        end = max(safe)
        self.send(
            WindowReleaseMessage(
                sender=self.node_id, window=Window(end - 1, end)
            ),
            local_id,
            now,
        )
        return True

    def inherit_finalized(self, windows) -> int:
        """Shard failover: adopt a dead predecessor's answered windows.

        The successor must never answer a window its predecessor already
        answered — locals replay *every* retained window on failover, and
        a duplicate answer would double-count the window in the shard's
        completion arithmetic.  Marking the predecessor's windows
        finalized makes replayed synopses for them get a fresh release
        (the convergent answered-window path) instead of opening phantom
        state.  Returns how many windows were newly inherited.
        """
        inherited = 0
        for window in windows:
            if window not in self._finalized:
                self._finalized.add(window)
                inherited += 1
        return inherited

    def _give_up_on(
        self, window: Window, state: _WindowState, gone: set[int], now: float
    ) -> None:
        """Progress one window without ``gone``: re-plan or answer degraded.

        Drops the departed locals' synopses (an identification over the
        survivors must not request candidates from a node that cannot
        answer) and, if the current candidate plan depended on them,
        rebuilds it from scratch over the surviving synopses.
        """
        for node_id in gone:
            state.synopses.pop(node_id, None)
            state.sizes.pop(node_id, None)
        if not self._expected_locals(window, state):
            self._abort(window, state, now)
            return
        if state.identification is not None:
            if not (set(state.participants or ()) & gone):
                # The plan never involved them; we may only have been
                # waiting for their (never-requested) data — check if the
                # surviving runs already complete the window.
                if self._runs_complete(state):
                    self._calculate(window, state, now)
                return
            state.identification = None
            state.participants = None
            state.runs.clear()
        if self._synopses_complete(window, state):
            self._identify(window, state, now)

    def _arm_timer(self, window: Window, now: float) -> None:
        assert self._reliability is not None
        self.call_later(
            self._reliability.timeout_s,
            lambda t, w=window: self._check_window(w, t),
            now,
        )

    def _check_window(self, window: Window, now: float) -> None:
        """Reliability timer: retransmit whatever is still missing."""
        state = self._states.get(window)
        if state is None:
            return  # window completed meanwhile
        assert self._reliability is not None
        if state.retries >= self._reliability.max_retries:
            if self._degrade:
                stalled = self._stalled_locals(window, state)
                expected = set(self._expected_locals(window, state))
                if stalled and stalled != expected:
                    # Some locals are responsive: give up on the stragglers
                    # for this window only and answer from the rest, with a
                    # fresh retry budget for the re-planned fetch.
                    state.retries = 0
                    state.excluded |= stalled
                    self._give_up_on(window, state, stalled, now)
                    if window in self._states:
                        self._arm_timer(window, now)
                    return
            self._abort(window, state, now)
            return
        state.retries += 1
        if state.identification is None:
            missing = set(
                self._expected_locals(window, state)
            ) - set(state.synopses)
            for local_id in sorted(missing):
                request = SynopsisRequestMessage(
                    sender=self.node_id, window=window
                )
                self.send(request, local_id, now)
        else:
            received = set(state.runs)
            for local_id, indices in state.identification.requests.items():
                outstanding = tuple(
                    index
                    for index in indices
                    if (local_id, index) not in received
                )
                if outstanding:
                    request = CandidateRequestMessage(
                        sender=self.node_id,
                        window=window,
                        slice_indices=outstanding,
                    )
                    self.send(request, local_id, now)
        self._arm_timer(window, now)

    def _abort(self, window: Window, state: _WindowState, now: float) -> None:
        """Abandon a window that exhausted its retries: release and move on."""
        self._states.pop(window, None)
        self._aborted_windows += 1
        self._finalized.add(window)
        if self._tracer.enabled:
            # Close out whichever phase the window died in, so aborted
            # windows still partition their (truncated) lifetime.
            if state.identification is None:
                self._tracer.record(
                    "synopsis_wait",
                    self.node_id,
                    window.end / MS_PER_SECOND,
                    now,
                    window=window,
                    parent=state.window_span,
                    aborted=1,
                )
            else:
                self._tracer.record(
                    "candidate_fetch",
                    self.node_id,
                    state.fetch_started,
                    now,
                    window=window,
                    parent=state.window_span,
                    runs=len(state.runs),
                    aborted=1,
                )
            self._tracer.end(state.window_span, now, aborted=1)
        if self._reliability is not None:
            self._release(window, now)

    def _was_released(self, window: Window, now: float) -> bool:
        """Whether ``window`` was already released (pruning stale tombstones)."""
        expired = [w for w, expiry in self._released.items() if expiry <= now]
        for stale in expired:
            del self._released[stale]
        return window in self._released or window in self._finalized

    def _release(self, window: Window, now: float) -> None:
        """Tell every local node to free its retained state for ``window``."""
        assert self._reliability is not None
        # A local that misses this release resends its synopsis every
        # timeout until its own retries run out; remember the window long
        # enough to answer every possible resend with a fresh release.
        horizon = (self._reliability.max_retries + 2) * self._reliability.timeout_s
        self._released[window] = now + horizon
        for local_id in self._eligible_locals(window):
            self.send(
                WindowReleaseMessage(sender=self.node_id, window=window),
                local_id,
                now,
            )

    def _identify(self, window: Window, state: _WindowState, now: float) -> None:
        state.gamma_used = self._gamma
        # Plan over the locals this window still expects; a straggler's
        # synopsis that arrived after its node was given up on must not
        # drag an unanswerable candidate request into the plan.
        expected = self._expected_locals(window, state)
        synopses = {i: state.synopses[i] for i in expected if i in state.synopses}
        sizes = {i: state.sizes[i] for i in expected if i in state.sizes}
        state.participants = tuple(sorted(synopses))
        eligible = max(len(self._eligible_locals(window)), 1)
        completeness = len(state.participants) / eligible
        total = sum(sizes.values())
        tracing = self._tracer.enabled
        if tracing:
            # synopsis_wait runs from the window's event-time end until the
            # last synopsis has been received and deserialized; the phases
            # recorded below are deliberately contiguous so that, per
            # window, their durations sum to the end-to-end latency.
            self._tracer.record(
                "synopsis_wait",
                self.node_id,
                window.end / MS_PER_SECOND,
                now,
                window=window,
                parent=state.window_span,
                synopses=sum(len(batch) for batch in state.synopses.values()),
            )
        if total == 0:
            self._states.pop(window)
            self._finalized.add(window)
            if self._reliability is not None:
                self._release(window, now)
            if tracing:
                self._tracer.end(state.window_span, now, empty=1)
            self._outcomes.append(
                WindowOutcome(
                    window=window,
                    value=None,
                    global_window_size=0,
                    result_time=now,
                    candidate_events=0,
                    candidate_slices=0,
                    synopses_received=0,
                    gamma_used=state.gamma_used,
                    completeness=completeness,
                )
            )
            return

        n_synopses = sum(len(batch) for batch in synopses.values())
        ops = _IDENTIFY_OPS_PER_SYNOPSIS * n_synopses * max(
            1.0, math.log2(max(n_synopses, 2))
        )
        finish = self.work(ops, now)
        state.identification = identify(synopses, sizes, self._query.q)
        if tracing:
            self._tracer.record(
                "identification",
                self.node_id,
                now,
                finish,
                window=window,
                parent=state.window_span,
                ops=ops,
                synopses=n_synopses,
                gamma=state.gamma_used,
                rank=state.identification.rank,
            )
            state.fetch_started = finish
        state.expected_runs = sum(
            len(indices) for indices in state.identification.requests.values()
        )
        # Every *expected* local gets a request — an empty index tuple for
        # non-candidates — which doubles as the acknowledgement that stops
        # its synopsis resend timer.  Dead locals get nothing.
        for local_id in expected:
            indices = state.identification.requests.get(local_id, ())
            request = CandidateRequestMessage(
                sender=self.node_id,
                window=window,
                slice_indices=tuple(indices),
            )
            self.send(request, local_id, finish)

    def _on_candidates(self, message: CandidateEventsMessage, now: float) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        state = self._states.get(message.window)
        if state is None or state.identification is None:
            if self._reliability is not None:
                return  # stale run for a window already answered or aborted
            raise IdentificationError(
                f"unexpected candidate events for window {message.window}"
            )
        key = (message.sender, message.slice_index)
        if key in state.runs:
            if self._reliability is not None:
                return  # retransmission of a run that did arrive
            raise IdentificationError(
                f"duplicate candidate run {key} for window {message.window}"
            )
        if self._reliability is not None and key not in self._required_runs(
            state
        ):
            # A run the *current* plan never asked for — typically a reply
            # to a request from a plan since rebuilt without its sender.
            # Mixing it into the merge would corrupt the rank arithmetic.
            return
        state.runs[key] = message.events
        if self._runs_complete(state):
            self._calculate(message.window, state, now)

    def _calculate(self, window: Window, state: _WindowState, now: float) -> None:
        identification = state.identification
        assert identification is not None
        cut = identification.cut
        n = cut.candidate_events
        finish = self.work(merge_cost(n, max(len(state.runs), 1)), now)
        answer = calculate_quantile(cut, state.runs.values())
        if self._tracer.enabled:
            self._tracer.record(
                "candidate_fetch",
                self.node_id,
                state.fetch_started,
                now,
                window=window,
                parent=state.window_span,
                runs=len(state.runs),
                candidate_events=n,
            )
            self._tracer.record(
                "calculation",
                self.node_id,
                now,
                finish,
                window=window,
                parent=state.window_span,
                candidate_events=n,
                value=answer.value,
            )
            self._tracer.end(
                state.window_span,
                finish,
                global_window_size=identification.global_window_size,
                candidate_events=n,
                gamma=state.gamma_used,
            )
        self._states.pop(window)
        self._finalized.add(window)
        if self._reliability is not None:
            self._release(window, finish)
        eligible = self._eligible_locals(window)
        participants = (
            state.participants
            if state.participants is not None
            else eligible
        )
        self._outcomes.append(
            WindowOutcome(
                window=window,
                value=answer.value,
                global_window_size=identification.global_window_size,
                result_time=finish,
                candidate_events=n,
                candidate_slices=len(cut.candidates),
                synopses_received=sum(
                    len(batch) for batch in state.synopses.values()
                ),
                gamma_used=state.gamma_used,
                completeness=len(participants) / max(len(eligible), 1),
            )
        )
        if self._controller is not None:
            new_gamma = self._controller.observe(
                identification.global_window_size, len(cut.candidates)
            )
            if new_gamma != self._gamma:
                self._gamma = new_gamma
                for local_id in self._local_ids:
                    update = GammaUpdateMessage(
                        sender=self.node_id,
                        window=window,
                        gamma=new_gamma,
                    )
                    self.send(update, local_id, finish)
        elif self._node_controller is not None:
            candidates_by_node: dict[int, int] = {}
            for synopsis in cut.candidates:
                candidates_by_node[synopsis.node_id] = (
                    candidates_by_node.get(synopsis.node_id, 0) + 1
                )
            previous = self._node_controller.gammas
            updated = self._node_controller.observe(
                dict(state.sizes), candidates_by_node
            )
            for local_id, gamma in updated.items():
                if previous.get(local_id) == gamma:
                    continue
                update = GammaUpdateMessage(
                    sender=self.node_id, window=window, gamma=gamma
                )
                self.send(update, local_id, finish)
