"""Dema root-node operator (cloud server).

The root collects one synopsis batch per local node per global window.  Once
the batch set is complete it runs the identification step (window-cut),
requests exactly the candidate slices, merges the pre-sorted candidate runs
as they arrive, and emits the exact quantile.  With adaptivity enabled it
then re-optimizes γ from the observed window statistics and broadcasts the
new factor to every local node (Section 3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import IdentificationError
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    Message,
    SynopsisMessage,
    SynopsisRequestMessage,
    WindowReleaseMessage,
)
from repro.network.driver import MS_PER_SECOND
from repro.network.simulator import SimulatedNode, merge_cost, receive_ops
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.adaptive import AdaptiveGammaController, NodeGammaController
from repro.core.calculation import calculate_quantile
from repro.core.identification import IdentificationResult, identify
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.core.synopsis import SliceSynopsis

__all__ = ["WindowOutcome", "DemaRootNode"]

#: Abstract ops for sorting and sweeping s synopses during identification.
_IDENTIFY_OPS_PER_SYNOPSIS = 4.0


@dataclass(frozen=True, slots=True)
class WindowOutcome:
    """One global window's final result plus reproduction metrics."""

    window: Window
    value: float | None
    global_window_size: int
    result_time: float
    candidate_events: int
    candidate_slices: int
    synopses_received: int
    gamma_used: int

    @property
    def is_empty(self) -> bool:
        """Whether the global window held no events."""
        return self.global_window_size == 0


@dataclass
class _WindowState:
    """Root-side bookkeeping for one in-flight global window."""

    synopses: dict[int, tuple[SliceSynopsis, ...]] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    identification: IdentificationResult | None = None
    runs: dict[tuple[int, int], tuple[Event, ...]] = field(default_factory=dict)
    expected_runs: int = 0
    gamma_used: int = 0
    retries: int = 0
    #: Tracing bookkeeping: the window's parent span id and the time the
    #: candidate requests went out (start of the candidate_fetch phase).
    window_span: int = 0
    fetch_started: float = 0.0


class DemaRootNode(SimulatedNode):
    """Cloud operator implementing Dema's root-node protocol."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        if not local_ids:
            raise IdentificationError("root needs at least one local node")
        self._reliability = reliability
        self._aborted_windows = 0
        self._local_ids = tuple(local_ids)
        self._query = query
        self._gamma = query.gamma
        self._controller: AdaptiveGammaController | None = None
        self._node_controller: NodeGammaController | None = None
        if query.adaptive:
            if query.per_node_gamma:
                self._node_controller = NodeGammaController(query.gamma)
            else:
                self._controller = AdaptiveGammaController(gamma=query.gamma)
        self._states: dict[Window, _WindowState] = {}
        self._outcomes: list[WindowOutcome] = []
        #: Tombstones for released windows: a synopsis arriving for one of
        #: these means the local never saw the release (it was lost) and is
        #: resending; answering with a fresh release — instead of opening
        #: phantom window state — keeps the protocol convergent.  Entries
        #: expire once the local's own resend retries must have run out.
        self._released: dict[Window, float] = {}

    @property
    def outcomes(self) -> list[WindowOutcome]:
        """Completed global windows, in completion order."""
        return list(self._outcomes)

    @property
    def gamma(self) -> int:
        """Slice factor the root currently prescribes."""
        return self._gamma

    @property
    def node_gammas(self) -> dict[int, int]:
        """Per-node factors in force (empty unless ``per_node_gamma``)."""
        if self._node_controller is None:
            return {}
        return self._node_controller.gammas

    @property
    def open_windows(self) -> int:
        """Global windows still awaiting synopses or candidate events."""
        return len(self._states)

    @property
    def aborted_windows(self) -> int:
        """Windows abandoned after exhausting reliability retries."""
        return self._aborted_windows

    def on_message(self, message: Message, now: float) -> None:
        """Dispatch local → root protocol messages."""
        if isinstance(message, SynopsisMessage):
            self._on_synopses(message, now)
        elif isinstance(message, CandidateEventsMessage):
            self._on_candidates(message, now)
        else:
            raise IdentificationError(
                f"root cannot handle {type(message).__name__}"
            )

    def _on_synopses(self, message: SynopsisMessage, now: float) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        if self._reliability is not None and self._was_released(
            message.window, now
        ):
            # The window is already answered; this synopsis is a local
            # resend, so the release we sent it must have been lost.
            self.send(
                WindowReleaseMessage(
                    sender=self.node_id, window=message.window
                ),
                message.sender,
                now,
            )
            return
        fresh = message.window not in self._states
        state = self._states.setdefault(message.window, _WindowState())
        if message.sender in state.synopses:
            if self._reliability is not None:
                return  # retransmission of a batch that did arrive
            raise IdentificationError(
                f"duplicate synopsis batch from node {message.sender} "
                f"for window {message.window}"
            )
        state.synopses[message.sender] = message.synopses
        state.sizes[message.sender] = message.local_window_size
        if fresh and self._tracer.enabled:
            # The window span covers the full end-to-end latency interval,
            # so it starts at the window's event-time end, not at arrival.
            state.window_span = self._tracer.begin(
                "window",
                self.node_id,
                message.window.end / MS_PER_SECOND,
                window=message.window,
            )
        if fresh and self._reliability is not None:
            self._arm_timer(message.window, now)
        if len(state.synopses) == len(self._local_ids):
            self._identify(message.window, state, now)

    def _arm_timer(self, window: Window, now: float) -> None:
        assert self._reliability is not None
        self.call_later(
            self._reliability.timeout_s,
            lambda t, w=window: self._check_window(w, t),
            now,
        )

    def _check_window(self, window: Window, now: float) -> None:
        """Reliability timer: retransmit whatever is still missing."""
        state = self._states.get(window)
        if state is None:
            return  # window completed meanwhile
        assert self._reliability is not None
        if state.retries >= self._reliability.max_retries:
            self._states.pop(window)
            self._aborted_windows += 1
            if self._tracer.enabled:
                # Close out whichever phase the window died in, so aborted
                # windows still partition their (truncated) lifetime.
                if state.identification is None:
                    self._tracer.record(
                        "synopsis_wait",
                        self.node_id,
                        window.end / MS_PER_SECOND,
                        now,
                        window=window,
                        parent=state.window_span,
                        aborted=1,
                    )
                else:
                    self._tracer.record(
                        "candidate_fetch",
                        self.node_id,
                        state.fetch_started,
                        now,
                        window=window,
                        parent=state.window_span,
                        runs=len(state.runs),
                        aborted=1,
                    )
                self._tracer.end(state.window_span, now, aborted=1)
            self._release(window, now)
            return
        state.retries += 1
        if state.identification is None:
            missing = set(self._local_ids) - set(state.synopses)
            for local_id in sorted(missing):
                request = SynopsisRequestMessage(
                    sender=self.node_id, window=window
                )
                self.send(request, local_id, now)
        else:
            received = set(state.runs)
            for local_id, indices in state.identification.requests.items():
                outstanding = tuple(
                    index
                    for index in indices
                    if (local_id, index) not in received
                )
                if outstanding:
                    request = CandidateRequestMessage(
                        sender=self.node_id,
                        window=window,
                        slice_indices=outstanding,
                    )
                    self.send(request, local_id, now)
        self._arm_timer(window, now)

    def _was_released(self, window: Window, now: float) -> bool:
        """Whether ``window`` was already released (pruning stale tombstones)."""
        expired = [w for w, expiry in self._released.items() if expiry <= now]
        for stale in expired:
            del self._released[stale]
        return window in self._released

    def _release(self, window: Window, now: float) -> None:
        """Tell every local node to free its retained state for ``window``."""
        assert self._reliability is not None
        # A local that misses this release resends its synopsis every
        # timeout until its own retries run out; remember the window long
        # enough to answer every possible resend with a fresh release.
        horizon = (self._reliability.max_retries + 2) * self._reliability.timeout_s
        self._released[window] = now + horizon
        for local_id in self._local_ids:
            self.send(
                WindowReleaseMessage(sender=self.node_id, window=window),
                local_id,
                now,
            )

    def _identify(self, window: Window, state: _WindowState, now: float) -> None:
        state.gamma_used = self._gamma
        total = sum(state.sizes.values())
        tracing = self._tracer.enabled
        if tracing:
            # synopsis_wait runs from the window's event-time end until the
            # last synopsis has been received and deserialized; the phases
            # recorded below are deliberately contiguous so that, per
            # window, their durations sum to the end-to-end latency.
            self._tracer.record(
                "synopsis_wait",
                self.node_id,
                window.end / MS_PER_SECOND,
                now,
                window=window,
                parent=state.window_span,
                synopses=sum(len(batch) for batch in state.synopses.values()),
            )
        if total == 0:
            self._states.pop(window)
            if self._reliability is not None:
                self._release(window, now)
            if tracing:
                self._tracer.end(state.window_span, now, empty=1)
            self._outcomes.append(
                WindowOutcome(
                    window=window,
                    value=None,
                    global_window_size=0,
                    result_time=now,
                    candidate_events=0,
                    candidate_slices=0,
                    synopses_received=0,
                    gamma_used=state.gamma_used,
                )
            )
            return

        n_synopses = sum(len(batch) for batch in state.synopses.values())
        ops = _IDENTIFY_OPS_PER_SYNOPSIS * n_synopses * max(
            1.0, math.log2(max(n_synopses, 2))
        )
        finish = self.work(ops, now)
        state.identification = identify(
            state.synopses, state.sizes, self._query.q
        )
        if tracing:
            self._tracer.record(
                "identification",
                self.node_id,
                now,
                finish,
                window=window,
                parent=state.window_span,
                ops=ops,
                synopses=n_synopses,
                gamma=state.gamma_used,
                rank=state.identification.rank,
            )
            state.fetch_started = finish
        state.expected_runs = sum(
            len(indices) for indices in state.identification.requests.values()
        )
        for local_id in self._local_ids:
            indices = state.identification.requests.get(local_id, ())
            request = CandidateRequestMessage(
                sender=self.node_id,
                window=window,
                slice_indices=tuple(indices),
            )
            self.send(request, local_id, finish)

    def _on_candidates(self, message: CandidateEventsMessage, now: float) -> None:
        now = self.work(receive_ops(message.payload_bytes), now)
        state = self._states.get(message.window)
        if state is None or state.identification is None:
            if self._reliability is not None:
                return  # stale run for a window already answered or aborted
            raise IdentificationError(
                f"unexpected candidate events for window {message.window}"
            )
        key = (message.sender, message.slice_index)
        if key in state.runs:
            if self._reliability is not None:
                return  # retransmission of a run that did arrive
            raise IdentificationError(
                f"duplicate candidate run {key} for window {message.window}"
            )
        state.runs[key] = message.events
        if len(state.runs) == state.expected_runs:
            self._calculate(message.window, state, now)

    def _calculate(self, window: Window, state: _WindowState, now: float) -> None:
        identification = state.identification
        assert identification is not None
        cut = identification.cut
        n = cut.candidate_events
        finish = self.work(merge_cost(n, max(len(state.runs), 1)), now)
        answer = calculate_quantile(cut, state.runs.values())
        if self._tracer.enabled:
            self._tracer.record(
                "candidate_fetch",
                self.node_id,
                state.fetch_started,
                now,
                window=window,
                parent=state.window_span,
                runs=len(state.runs),
                candidate_events=n,
            )
            self._tracer.record(
                "calculation",
                self.node_id,
                now,
                finish,
                window=window,
                parent=state.window_span,
                candidate_events=n,
                value=answer.value,
            )
            self._tracer.end(
                state.window_span,
                finish,
                global_window_size=identification.global_window_size,
                candidate_events=n,
                gamma=state.gamma_used,
            )
        self._states.pop(window)
        if self._reliability is not None:
            self._release(window, finish)
        self._outcomes.append(
            WindowOutcome(
                window=window,
                value=answer.value,
                global_window_size=identification.global_window_size,
                result_time=finish,
                candidate_events=n,
                candidate_slices=len(cut.candidates),
                synopses_received=sum(
                    len(batch) for batch in state.synopses.values()
                ),
                gamma_used=state.gamma_used,
            )
        )
        if self._controller is not None:
            new_gamma = self._controller.observe(
                identification.global_window_size, len(cut.candidates)
            )
            if new_gamma != self._gamma:
                self._gamma = new_gamma
                for local_id in self._local_ids:
                    update = GammaUpdateMessage(
                        sender=self.node_id,
                        window=window,
                        gamma=new_gamma,
                    )
                    self.send(update, local_id, finish)
        elif self._node_controller is not None:
            candidates_by_node: dict[int, int] = {}
            for synopsis in cut.candidates:
                candidates_by_node[synopsis.node_id] = (
                    candidates_by_node.get(synopsis.node_id, 0) + 1
                )
            previous = self._node_controller.gammas
            updated = self._node_controller.observe(
                dict(state.sizes), candidates_by_node
            )
            for local_id, gamma in updated.items():
                if previous.get(local_id) == gamma:
                    continue
                update = GammaUpdateMessage(
                    sender=self.node_id, window=window, gamma=gamma
                )
                self.send(update, local_id, finish)
