"""Adaptive slice factor (Section 3.3).

Dema's network cost per global window is

    Cost(γ) = 2·l_G / γ  +  m · (γ − 2)

where ``l_G`` is the global window size and ``m`` the number of candidate
slices: the first term counts the events inside all synopses (two per
slice), the second counts the candidate events shipped in the calculation
step beyond the two already known from each candidate's synopsis.  The cost
is convex in γ with closed-form minimizer ``γ* = sqrt(2·l_G / m)``.

The controller re-estimates γ after every window from the observed ``l_G``
and ``m``, exactly as the paper's root node does, and reuses the previous
optimum while conditions are stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.slicing import MIN_GAMMA

__all__ = [
    "transfer_cost",
    "optimal_gamma",
    "AdaptiveGammaController",
    "NodeGammaController",
]


def transfer_cost(gamma: int, global_window_size: int, n_candidates: int) -> float:
    """Events-on-the-wire cost model of Section 3.3.

    Args:
        gamma: Slice factor, ≥ 2.
        global_window_size: ``l_G``.
        n_candidates: ``m``, the number of candidate slices.

    Raises:
        ConfigurationError: On a gamma below the minimum or negative inputs.
    """
    if gamma < MIN_GAMMA:
        raise ConfigurationError(f"gamma must be >= {MIN_GAMMA}, got {gamma}")
    if global_window_size < 0 or n_candidates < 0:
        raise ConfigurationError("window size and candidate count must be >= 0")
    return 2.0 * global_window_size / gamma + n_candidates * (gamma - 2)


def optimal_gamma(
    global_window_size: int,
    n_candidates: int,
    *,
    max_gamma: int | None = None,
) -> int:
    """Integer γ minimizing :func:`transfer_cost`.

    The real-valued minimizer is ``sqrt(2·l_G/m)``; the two neighbouring
    integers are compared to pick the true integer optimum.  With no
    candidate slices observed (``m == 0``) the identification term dominates
    and the best γ is as large as allowed.

    Args:
        global_window_size: ``l_G`` from the previous window.
        n_candidates: ``m`` from the previous window.
        max_gamma: Optional clamp; defaults to ``l_G`` (a single slice per
            window is the coarsest useful cut).

    Returns:
        The optimal slice factor, always ≥ 2.
    """
    if global_window_size < 0 or n_candidates < 0:
        raise ConfigurationError("window size and candidate count must be >= 0")
    ceiling = max(max_gamma if max_gamma is not None else global_window_size,
                  MIN_GAMMA)
    if global_window_size == 0:
        return MIN_GAMMA
    if n_candidates == 0:
        return ceiling
    raw = math.sqrt(2.0 * global_window_size / n_candidates)
    lo = max(MIN_GAMMA, min(ceiling, math.floor(raw)))
    hi = max(MIN_GAMMA, min(ceiling, math.ceil(raw)))
    cost_lo = transfer_cost(lo, global_window_size, n_candidates)
    cost_hi = transfer_cost(hi, global_window_size, n_candidates)
    return lo if cost_lo <= cost_hi else hi


@dataclass
class AdaptiveGammaController:
    """Per-window γ adaptation driven by observed workload statistics.

    Attributes:
        gamma: The slice factor currently in force.
        smoothing: Exponential-smoothing weight for the observed ``l_G`` and
            ``m`` (1.0 = use the latest window only, matching the paper's
            description; lower values damp oscillation between windows).
        max_gamma: Optional upper clamp on γ.
    """

    gamma: int = 100
    smoothing: float = 1.0
    max_gamma: int | None = None

    def __post_init__(self) -> None:
        if self.gamma < MIN_GAMMA:
            raise ConfigurationError(
                f"initial gamma must be >= {MIN_GAMMA}, got {self.gamma}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {self.smoothing}"
            )
        self._window_size_estimate: float | None = None
        self._candidate_estimate: float | None = None

    def observe(self, global_window_size: int, n_candidates: int) -> int:
        """Fold one finished window's stats into the estimates; return new γ.

        Args:
            global_window_size: ``l_G`` of the window that just completed.
            n_candidates: Candidate-slice count ``m`` of that window.
        """
        self._window_size_estimate = self._smooth(
            self._window_size_estimate, float(global_window_size)
        )
        self._candidate_estimate = self._smooth(
            self._candidate_estimate, float(n_candidates)
        )
        self.gamma = optimal_gamma(
            round(self._window_size_estimate),
            round(self._candidate_estimate),
            max_gamma=self.max_gamma,
        )
        return self.gamma

    def expected_cost(self) -> float | None:
        """Modelled cost of the current γ under the current estimates."""
        if self._window_size_estimate is None or self._candidate_estimate is None:
            return None
        return transfer_cost(
            self.gamma,
            round(self._window_size_estimate),
            round(self._candidate_estimate),
        )

    def _smooth(self, previous: float | None, observed: float) -> float:
        if previous is None:
            return observed
        return self.smoothing * observed + (1.0 - self.smoothing) * previous


class NodeGammaController:
    """Per-node slice factors (the paper's Section 3.3 extension).

    The transfer cost decomposes over nodes:

        Cost = Σ_i [ 2·l_i / γ_i  +  m_i · (γ_i − 2) ]

    where ``l_i`` is node *i*'s local window size and ``m_i`` its candidate
    slices, so each node's factor can be optimized independently:
    ``γ_i* = sqrt(2·l_i / m_i)``.  Nodes with high event rates get coarser
    slices; quiet nodes get finer ones — exactly the adaptation the paper
    sketches for "networks with nodes that have varying workloads".

    A node never observed as contributing candidates uses ``m_i = 1``
    rather than the cost model's degenerate ``m_i = 0`` (which would push
    γ to the window size and make the *next* window's candidate slice the
    whole window).
    """

    def __init__(self, initial_gamma: int = 100, *,
                 smoothing: float = 1.0,
                 max_gamma: int | None = None) -> None:
        if initial_gamma < MIN_GAMMA:
            raise ConfigurationError(
                f"initial gamma must be >= {MIN_GAMMA}, got {initial_gamma}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self._initial_gamma = initial_gamma
        self._smoothing = smoothing
        self._max_gamma = max_gamma
        self._size_estimates: dict[int, float] = {}
        self._candidate_estimates: dict[int, float] = {}
        self._gammas: dict[int, int] = {}

    def gamma_for(self, node_id: int) -> int:
        """The factor currently prescribed for ``node_id``."""
        return self._gammas.get(node_id, self._initial_gamma)

    @property
    def gammas(self) -> dict[int, int]:
        """All per-node factors prescribed so far."""
        return dict(self._gammas)

    def observe(
        self,
        window_sizes: dict[int, int],
        candidates_by_node: dict[int, int],
    ) -> dict[int, int]:
        """Fold one window's per-node statistics; return the new factors.

        Args:
            window_sizes: Local window size ``l_i`` per node.
            candidates_by_node: Candidate-slice count ``m_i`` per node
                (nodes with no candidates may be omitted).

        Returns:
            New γ per node, for every node present in ``window_sizes``.
        """
        updated: dict[int, int] = {}
        for node_id, size in window_sizes.items():
            observed_m = max(candidates_by_node.get(node_id, 0), 1)
            self._size_estimates[node_id] = self._smooth(
                self._size_estimates.get(node_id), float(size)
            )
            self._candidate_estimates[node_id] = self._smooth(
                self._candidate_estimates.get(node_id), float(observed_m)
            )
            gamma = optimal_gamma(
                round(self._size_estimates[node_id]),
                round(self._candidate_estimates[node_id]),
                max_gamma=self._max_gamma,
            )
            self._gammas[node_id] = gamma
            updated[node_id] = gamma
        return updated

    def expected_cost(self) -> float | None:
        """Modelled total cost of the current factors, if any observed."""
        if not self._gammas:
            return None
        total = 0.0
        for node_id, gamma in self._gammas.items():
            total += transfer_cost(
                gamma,
                round(self._size_estimates[node_id]),
                round(self._candidate_estimates[node_id]),
            )
        return total

    def _smooth(self, previous: float | None, observed: float) -> float:
        if previous is None:
            return observed
        return self._smoothing * observed + (1.0 - self._smoothing) * previous
