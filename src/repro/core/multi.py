"""Multi-quantile queries: several quantiles from one identification pass.

The paper notes that "other quantile functions are also supported"; a
natural extension is answering a *set* of quantiles (e.g. the 25/50/75 %
box-plot statistics) over the same window.  The synopsis transfer is shared
by construction, and the calculation step fetches the **union** of every
rank's candidate slices, so a slice needed by two quantiles crosses the
network once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import Event
from repro.core.calculation import calculate_quantile
from repro.core.slicing import slice_sorted_events
from repro.core.window_cut import CutResult, window_cut_multi

__all__ = ["MultiQuantileResult", "dema_quantiles"]


@dataclass(frozen=True, slots=True)
class MultiQuantileResult:
    """Outcome of one multi-quantile Dema computation.

    Attributes:
        values: Exact quantile values keyed by the requested ``q``.
        ranks: The global rank located for each ``q``.
        global_window_size: Total events across the local windows.
        candidate_events: Events fetched for the union of all candidate
            slices (each slice counted once).
        synopses: Synopses shipped in the identification step.
    """

    values: Mapping[float, float]
    ranks: Mapping[float, int]
    global_window_size: int
    candidate_events: int
    synopses: int

    @property
    def transfer_events(self) -> int:
        """Events-on-the-wire cost of the whole multi-quantile query."""
        return 2 * self.synopses + self.candidate_events


def dema_quantiles(
    local_windows: Mapping[int, Sequence[Event]],
    qs: Sequence[float],
    gamma: int,
) -> MultiQuantileResult:
    """Compute several exact quantiles with one shared identification pass.

    Args:
        local_windows: Per-node event collections (any order within a node).
        qs: The quantiles, each in ``(0, 1]``; duplicates are collapsed.
        gamma: The slice factor, ≥ 2.

    Returns:
        Exact values for every requested quantile plus shared transfer
        accounting.

    Raises:
        ConfigurationError: If no nodes or no quantiles are given.
        IdentificationError: If all windows are empty.
    """
    if not local_windows:
        raise ConfigurationError("need at least one local window")
    unique_qs = sorted(set(qs))
    if not unique_qs:
        raise ConfigurationError("need at least one quantile")

    sliced = {
        node_id: slice_sorted_events(
            sorted(events, key=lambda e: e.key), gamma, node_id
        )
        for node_id, events in local_windows.items()
    }
    synopses = [s for win in sliced.values() for s in win.synopses]
    total = sum(win.window_size for win in sliced.values())

    ranks_by_q = {q: quantile_rank(q, total) for q in unique_qs}
    cuts_by_rank = window_cut_multi(
        synopses, sorted(set(ranks_by_q.values())), global_window_size=total
    )
    cuts: dict[float, CutResult] = {
        q: cuts_by_rank[rank] for q, rank in ranks_by_q.items()
    }
    fetched_ids: set[tuple[int, int]] = set()
    for cut in cuts_by_rank.values():
        fetched_ids.update(cut.candidate_ids)

    runs_by_id = {
        slice_id: sliced[slice_id[0]].run_for(slice_id[1])
        for slice_id in fetched_ids
    }
    values: dict[float, float] = {}
    ranks: dict[float, int] = {}
    for q, cut in cuts.items():
        runs = [runs_by_id[s.slice_id] for s in cut.candidates]
        values[q] = calculate_quantile(cut, runs).value
        ranks[q] = cut.rank

    return MultiQuantileResult(
        values=values,
        ranks=ranks,
        global_window_size=total,
        candidate_events=sum(len(run) for run in runs_by_id.values()),
        synopses=len(synopses),
    )
