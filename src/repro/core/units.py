"""Overlap units and the paper's slice taxonomy.

The root node sorts all received synopses by their first event and groups
slices whose key ranges overlap transitively into **units** — connected
components of the interval-overlap graph.  Because the union of a connected
component of intervals is itself an interval, distinct units have disjoint
key ranges, which gives the root *exact* cumulative ranks at unit
granularity even though ranks inside a unit are ambiguous.

The taxonomy of Section 3.2 falls out of the unit structure:

* a **separate-slice** forms a singleton unit (its boundaries are covered by
  no other slice);
* a **compound-slice** is a unit with two or more members chained by
  overlap;
* a **cover-slice** is a member whose range is entirely enclosed by another
  member of its unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import IdentificationError
from repro.core.synopsis import SliceSynopsis

__all__ = ["SliceKind", "SliceUnit", "build_units", "classify_slice"]


class SliceKind(enum.Enum):
    """Role of a slice within its unit (Section 3.2, Figure 4)."""

    SEPARATE = "separate"
    COMPOUND = "compound"
    COVER = "cover"


@dataclass(frozen=True, slots=True)
class SliceUnit:
    """A maximal chain of overlapping slices with an exact rank interval.

    Attributes:
        members: Member synopses in ascending ``first_key`` order.
        offset: Number of events in all units strictly below this one, i.e.
            the global rank of the unit's first event minus one.
    """

    members: tuple[SliceSynopsis, ...]
    offset: int

    @property
    def size(self) -> int:
        """Total events across all member slices."""
        return sum(member.count for member in self.members)

    @property
    def pos_start(self) -> int:
        """Global rank of the unit's smallest event (1-based)."""
        return self.offset + 1

    @property
    def pos_end(self) -> int:
        """Global rank of the unit's largest event (1-based)."""
        return self.offset + self.size

    @property
    def first_key(self):
        """Smallest key across members."""
        return self.members[0].first_key

    @property
    def last_key(self):
        """Largest key across members."""
        return max(member.last_key for member in self.members)

    @property
    def is_compound(self) -> bool:
        """Whether the unit chains two or more slices."""
        return len(self.members) > 1

    def contains_rank(self, rank: int) -> bool:
        """Whether the global ``rank`` falls inside this unit."""
        return self.pos_start <= rank <= self.pos_end

    def min_rank(self, member: SliceSynopsis) -> int:
        """Smallest possible global rank of ``member``'s first event."""
        certainly_below = sum(
            other.count
            for other in self.members
            if other is not member and other.certainly_below(member)
        )
        return self.offset + certainly_below + 1

    def max_rank(self, member: SliceSynopsis) -> int:
        """Largest possible global rank of ``member``'s last event."""
        certainly_above = sum(
            other.count
            for other in self.members
            if other is not member and other.certainly_above(member)
        )
        return self.offset + self.size - certainly_above


def build_units(synopses: Iterable[SliceSynopsis]) -> list[SliceUnit]:
    """Group synopses into overlap units with exact rank offsets.

    Args:
        synopses: Slice synopses from any number of local windows, in any
            order.

    Returns:
        Units in ascending key order; their rank intervals partition
        ``[1, l_G]``.
    """
    ordered = sorted(synopses, key=lambda s: (s.first_key, s.last_key))
    units: list[SliceUnit] = []
    if not ordered:
        return units

    current: list[SliceSynopsis] = [ordered[0]]
    current_max = ordered[0].last_key
    offset = 0
    for synopsis in ordered[1:]:
        if synopsis.first_key <= current_max:
            current.append(synopsis)
            if synopsis.last_key > current_max:
                current_max = synopsis.last_key
        else:
            unit = SliceUnit(members=tuple(current), offset=offset)
            units.append(unit)
            offset += unit.size
            current = [synopsis]
            current_max = synopsis.last_key
    units.append(SliceUnit(members=tuple(current), offset=offset))
    return units


def classify_slice(unit: SliceUnit, member: SliceSynopsis) -> SliceKind:
    """Classify ``member`` within ``unit`` per the Section 3.2 taxonomy.

    Raises:
        IdentificationError: If ``member`` is not part of ``unit``.
    """
    if member not in unit.members:
        raise IdentificationError(
            f"slice {member.slice_id} is not a member of the unit"
        )
    if len(unit.members) == 1:
        return SliceKind.SEPARATE
    for other in unit.members:
        if other is not member and other.encloses(member):
            return SliceKind.COVER
    return SliceKind.COMPOUND


def unit_statistics(units: Sequence[SliceUnit]) -> dict[str, int]:
    """Count slices by kind across ``units`` (used by benchmark reporting)."""
    counts = {kind.value: 0 for kind in SliceKind}
    for unit in units:
        for member in unit.members:
            counts[classify_slice(unit, member).value] += 1
    return counts
