"""Dema local-node operator (edge device).

A local node ingests raw events from its data streams, keeps each open
window incrementally sorted, and on window end cuts the sorted run into
γ-slices and ships only the synopses to the root.  It retains the sliced
runs until the root's candidate request arrives, answers with exactly the
requested slices, and then frees the window.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SliceError
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    EventBatchMessage,
    GammaUpdateMessage,
    Message,
    SynopsisMessage,
    SynopsisRequestMessage,
    WindowReleaseMessage,
)
import math

from repro.network.simulator import INGEST_OPS, SimulatedNode, receive_ops
from repro.streaming.columns import EventColumns
from repro.streaming.events import Event
from repro.streaming.windows import TumblingWindows, Window

# Hot-path module: columnar batches flow through ingest → window → slices
# without materializing per-event ``Event`` objects (enforced by
# tests/test_hotpath_lint.py).
from repro.core.query import QuantileQuery
from repro.core.slicing import SlicedWindow, slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow

__all__ = ["DemaLocalNode"]

#: Abstract ops for cutting a sorted window into slices (per event).
_SLICE_OPS_PER_EVENT = 0.5

#: Abstract ops for serving one candidate slice request.
_SERVE_OPS_PER_EVENT = 0.5


class DemaLocalNode(SimulatedNode):
    """Edge operator implementing Dema's local-node protocol."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
        retain_until_release: bool = False,
        reliability=None,
        cumulative_releases: bool = True,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._gamma = query.gamma
        self._reliability = reliability
        self._retain = retain_until_release or reliability is not None
        #: Single-root runs prune every pending window at or below a
        #: release (windows complete in end order at the one root).  With
        #: sharded roots that inference is wrong — shard A's release says
        #: nothing about shard B's windows, and pruning them would destroy
        #: the failover replay source — so mesh hosts turn this off and
        #: each release frees exactly its own window.
        self._cumulative_releases = cumulative_releases
        self._open: dict[Window, SortedLocalWindow] = {}
        self._pending: dict[Window, SlicedWindow] = {}
        self._completed: set[Window] = set()
        self._acknowledged: set[Window] = set()
        self._resend_retries: dict[Window, int] = {}
        self._events_ingested = 0
        self._windows_completed = 0
        self._late_events = 0
        self._last_release_end = -1

    @property
    def gamma(self) -> int:
        """Slice factor currently in force on this node."""
        return self._gamma

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def windows_completed(self) -> int:
        """Local windows sealed and shipped so far."""
        return self._windows_completed

    @property
    def pending_windows(self) -> int:
        """Sealed windows still awaiting a candidate request (or release)."""
        return len(self._pending)

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already been sealed."""
        return self._late_events

    @property
    def last_release_end(self) -> int:
        """End (event-time ms) of the highest released window; -1 if none.

        This is the session-resume cursor a reconnecting live host puts in
        its ``Hello`` preamble.
        """
        return self._last_release_end

    def replay_pending(self, now: float) -> int:
        """Session resume: re-announce every retained sealed window.

        Called by the live host after a reconnect.  The root may have
        missed any synopsis sent before the link died, and our resend
        timers may have burned retries into a dead connection — so each
        pending window is replayed with a fresh acknowledgement state and
        retry budget.  Idempotent at the root (duplicates are dropped, and
        already-answered windows are answered with a release).  Returns
        the number of windows replayed.
        """
        for window in sorted(self._pending):
            sliced = self._pending[window]
            self._acknowledged.discard(window)
            self._resend_retries[window] = 0
            message = SynopsisMessage(
                sender=self.node_id,
                window=window,
                synopses=sliced.synopses,
                local_window_size=sliced.window_size,
            )
            self.send(message, self._root_id, now)
            if self._reliability is not None:
                self._arm_resend_timer(window, now)
        return len(self._pending)

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Accept a batch of raw events; returns CPU completion time.

        Events are grouped by tumbling window and appended in one batch per
        window; the sort itself is deferred to the window cut (the batched
        form of the paper's incremental sorting).  The *simulated* CPU
        charge is unchanged — ``count · log2(window size)`` per window, the
        cost model of per-event insertion — so simulator results stay
        bit-identical while the live path pays only O(1) per event.
        """
        late = 0
        assigner = self._assigner
        completed = self._completed
        if (
            isinstance(events, EventColumns)
            and isinstance(assigner, TumblingWindows)
            and len(events)
        ):
            # Columnar fast path: the live replay never sends a batch that
            # spans a window boundary (batches_for splits on them), so one
            # min/max check assigns the whole batch at array speed.  A
            # boundary-spanning batch from another caller falls through to
            # the generic per-event loop below.
            length = assigner.length
            lo = events.min_timestamp()
            start = lo - lo % length
            if events.max_timestamp() < start + length:
                window = Window(start, start + length)
                if window in completed:
                    late = len(events)
                    grouped: list[tuple[Window, Sequence[Event]]] = []
                else:
                    grouped = [(window, events)]
                self._late_events += late
                insert_ops = 0.0
                for window, bucket in grouped:
                    sorted_window = self._open.get(window)
                    if sorted_window is None:
                        sorted_window = self._open[window] = (
                            SortedLocalWindow()
                        )
                    sorted_window.add_all(bucket)
                    # Identical simulated charge to the per-event loop:
                    # count · log2(window size after the batch landed).
                    insert_ops += len(bucket) * math.log2(
                        max(len(sorted_window), 2)
                    )
                self._events_ingested += len(events)
                finish = self.work(
                    INGEST_OPS * len(events) + insert_ops, now
                )
                if self._tracer.enabled:
                    self._tracer.record(
                        "ingest",
                        self.node_id,
                        now,
                        finish,
                        events=len(events),
                        ops=INGEST_OPS * len(events) + insert_ops,
                    )
                return finish
        if isinstance(assigner, TumblingWindows):
            # Tumbling assignment is a pure floor-division; computing it
            # inline avoids one method call and one Window allocation per
            # event.  Buckets are keyed by the integer window *start*
            # because hashing an int is far cheaper than hashing a Window
            # dataclass — the hot loop is one dict probe plus one append
            # per event, and Window objects plus the completed-set check
            # happen once per distinct window per batch (a ``None`` bucket
            # is the memoized "already completed" verdict).
            length = assigner.length
            buckets: dict[int, list[Event] | None] = {}
            grouped: list[tuple[Window, list[Event]]] = []
            for event in events:
                start = event.timestamp - event.timestamp % length
                bucket = buckets.get(start)
                if bucket is None:
                    if start in buckets:
                        # The window already shipped its synopses; a late
                        # event cannot be folded in without breaking the
                        # root's rank arithmetic, so it is dropped and
                        # counted.
                        late += 1
                        continue
                    window = Window(start, start + length)
                    if window in completed:
                        buckets[start] = None
                        late += 1
                        continue
                    bucket = buckets[start] = []
                    grouped.append((window, bucket))
                bucket.append(event)
        else:
            batch: dict[Window, list[Event]] = {}
            for event in events:
                for window in assigner.assign_event(event):
                    if window in completed:
                        late += 1
                        continue
                    bucket = batch.get(window)
                    if bucket is None:
                        bucket = batch[window] = []
                    bucket.append(event)
            grouped = list(batch.items())
        self._late_events += late
        insert_ops = 0.0
        for window, bucket in grouped:
            sorted_window = self._open.get(window)
            if sorted_window is None:
                sorted_window = self._open[window] = SortedLocalWindow()
            sorted_window.add_all(bucket)
            insert_ops += len(bucket) * math.log2(
                max(len(sorted_window), 2)
            )
        self._events_ingested += len(events)
        finish = self.work(INGEST_OPS * len(events) + insert_ops, now)
        if self._tracer.enabled and events:
            self._tracer.record(
                "ingest",
                self.node_id,
                now,
                finish,
                events=len(events),
                ops=INGEST_OPS * len(events) + insert_ops,
            )
        return finish

    def on_window_complete(self, window: Window, now: float) -> None:
        """Seal ``window``, slice it, and send synopses to the root.

        Windows that received no events still announce themselves with an
        empty synopsis batch so the root's completeness check can fire.
        Completion is idempotent: repeated announcements are ignored.
        """
        if window in self._completed:
            return
        self._completed.add(window)
        sorted_window = self._open.pop(window, SortedLocalWindow())
        events = sorted_window.seal()
        # The sort was *charged* at ingest (the cost model is per-event
        # insertion) even though the batched implementation pays it inside
        # seal(); only the slicing pass is charged at window end.
        finish = self.work(_SLICE_OPS_PER_EVENT * len(events), now)
        sliced = slice_sorted_events(events, self._gamma, self.node_id)
        self._pending[window] = sliced
        self._windows_completed += 1
        if self._tracer.enabled:
            self._tracer.record(
                "slice",
                self.node_id,
                now,
                finish,
                window=window,
                events=len(events),
                gamma=self._gamma,
                synopses=len(sliced.synopses),
            )
        message = SynopsisMessage(
            sender=self.node_id,
            window=window,
            synopses=sliced.synopses,
            local_window_size=sliced.window_size,
        )
        self.send(message, self._root_id, finish)
        if self._reliability is not None:
            self._arm_resend_timer(window, finish)

    def _arm_resend_timer(self, window: Window, now: float) -> None:
        """Local-side retransmission: if the root never reacts (all our
        synopsis messages were lost, so it may not even know the window
        exists), resend until it does or retries run out."""
        self.call_later(
            self._reliability.timeout_s,
            lambda t, w=window: self._check_acknowledged(w, t),
            now,
        )

    def _check_acknowledged(self, window: Window, now: float) -> None:
        if window in self._acknowledged or window not in self._pending:
            return
        retries = self._resend_retries.get(window, 0)
        if retries >= self._reliability.max_retries:
            return
        self._resend_retries[window] = retries + 1
        sliced = self._pending[window]
        message = SynopsisMessage(
            sender=self.node_id,
            window=window,
            synopses=sliced.synopses,
            local_window_size=sliced.window_size,
        )
        self.send(message, self._root_id, now)
        self._arm_resend_timer(window, now)

    def on_message(self, message: Message, now: float) -> None:
        """Dispatch protocol messages (root → local and sensor → local)."""
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
        elif isinstance(message, CandidateRequestMessage):
            self._acknowledged.add(message.window)
            self._serve_candidates(message, now)
        elif isinstance(message, GammaUpdateMessage):
            self._gamma = max(message.gamma, 2)
        elif isinstance(message, SynopsisRequestMessage):
            # A re-request proves the root tracks the window.
            self._acknowledged.add(message.window)
            self._resend_synopses(message, now)
        elif isinstance(message, WindowReleaseMessage):
            self._acknowledged.add(message.window)
            self._last_release_end = max(
                self._last_release_end, message.window.end
            )
            if self._cumulative_releases:
                # Releases are cumulative: windows complete in end order at
                # the root, so an acknowledgement for this window also
                # covers any earlier window whose own release was lost.
                self._pending = {
                    window: sliced
                    for window, sliced in self._pending.items()
                    if window.end > message.window.end
                }
            else:
                self._pending.pop(message.window, None)
        else:
            raise SliceError(
                f"local node {self.node_id} cannot handle "
                f"{type(message).__name__}"
            )

    def _resend_synopses(
        self, request: SynopsisRequestMessage, now: float
    ) -> None:
        """Answer a root retransmission request from retained state."""
        sliced = self._pending.get(request.window)
        if sliced is None:
            # Either never completed (the root's timer raced the original
            # send) or already released; either way the root will sort it
            # out — re-answering with nothing is the safe option.
            return
        finish = self.work(receive_ops(request.payload_bytes), now)
        message = SynopsisMessage(
            sender=self.node_id,
            window=request.window,
            synopses=sliced.synopses,
            local_window_size=sliced.window_size,
        )
        self.send(message, self._root_id, finish)

    def _serve_candidates(
        self, request: CandidateRequestMessage, now: float
    ) -> None:
        """Ship the requested slices' events; free the window unless
        retention (reliability mode) is on."""
        if self._retain:
            sliced = self._pending.get(request.window)
            if sliced is None:
                # Stale retransmit for a window already released.
                return
        else:
            sliced = self._pending.pop(request.window, None)
            if sliced is None:
                raise SliceError(
                    f"node {self.node_id} has no sealed window "
                    f"{request.window}"
                )
        send_at = self.work(receive_ops(request.payload_bytes), now)
        served = 0
        for slice_index in request.slice_indices:
            run = sliced.run_for(slice_index)
            send_at = self.work(_SERVE_OPS_PER_EVENT * len(run), send_at)
            reply = CandidateEventsMessage(
                sender=self.node_id,
                window=request.window,
                slice_index=slice_index,
                events=run,
            )
            self.send(reply, self._root_id, send_at)
            served += len(run)
        if self._tracer.enabled and request.slice_indices:
            self._tracer.record(
                "serve_candidates",
                self.node_id,
                now,
                send_at,
                window=request.window,
                slices=len(request.slice_indices),
                events=served,
            )
