"""The dialing side of the live multi-query plane.

A :class:`QueryClient` wraps one driver connection to the root: it says
hello with the ``driver`` role, then multiplexes register/deregister
round trips (futures keyed by query id) and a stream of per-query
results over the single socket.  Results accumulate in
:attr:`QueryClient.results` in arrival order; scenario code polls
:meth:`wait_for` until its completion predicate holds.

Given a ``dial`` callback the client is **durable**: when the
connection dies it redials, says hello again with ``resume_from`` set
to how many results it has received, and the root replays everything at
or past that cursor from its retained per-client log — so a driver
killed and reconnected mid-run still receives every result exactly
once.  Requests still in flight at the disconnect are re-sent on the
new connection (registration is idempotent at the root), and each
received result is acknowledged with a
:class:`~repro.network.messages.ResultAckMessage` so the root can prune
its log to the acked horizon.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.errors import QueryError, TransportError
from repro.network.messages import (
    Message,
    QueryAckMessage,
    QueryDeregisterMessage,
    QueryRegisterMessage,
    QueryResultMessage,
    ResultAckMessage,
)
from repro.queries.spec import CONTROL_WINDOW, QuerySpec
from repro.runtime.codec import Hello
from repro.runtime.transport import MessageStream

__all__ = ["QueryClient"]

#: Pause between redial attempts while the root is unreachable.
_REDIAL_BACKOFF_S = 0.02


class QueryClient:
    """Registers queries over the wire and collects their result streams."""

    def __init__(
        self,
        stream: MessageStream,
        client_id: int,
        *,
        dial: "Callable[[], Awaitable[MessageStream]] | None" = None,
    ) -> None:
        self.stream = stream
        self.client_id = client_id
        #: Redial callback for durable sessions; ``None`` disables
        #: reconnects (an EOF ends the client, the original semantics).
        self._dial = dial
        #: In-flight request futures and their messages, keyed by query
        #: id; the message is retained so a reconnect can re-send it.
        self._acks: dict[int, tuple[asyncio.Future, Message]] = {}
        #: Served results per query id, arrival order.
        self.results: dict[int, list[QueryResultMessage]] = {}
        #: Accepted horizons per query id (first guaranteed window start).
        self.horizons: dict[int, int] = {}
        #: Total results received — the resume/ack cursor.
        self.received = 0
        #: Connections re-established after an EOF.
        self.reconnects = 0
        self._reader: asyncio.Task | None = None
        self._closed = False

    async def start(self) -> None:
        """Announce the driver role and start the receive loop."""
        await self.stream.send(Hello(node_id=self.client_id, role="driver"))
        self._reader = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        """Stop reading and close the connection."""
        self._closed = True
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except asyncio.CancelledError:
                pass
            self._reader = None
        try:
            await self.stream.close()
        except TransportError:
            pass

    async def drop_connection(self) -> None:
        """Sever the link without closing the client (chaos helper).

        The read loop observes the EOF and, when a ``dial`` callback was
        given, redials with the resume cursor — exactly what a driver
        surviving a network blip does.
        """
        try:
            await self.stream.close()
        except TransportError:
            pass

    async def register(
        self, query_id: int, spec: QuerySpec, *, timeout: float = 30.0
    ) -> QueryAckMessage:
        """Register ``spec`` under ``query_id``; await the root's ack.

        Returns:
            The accepting ack; its header window is the query's horizon —
            the first window the plane guarantees a result for.

        Raises:
            QueryError: If the root nacks the registration.
        """
        ack = await self._round_trip(
            query_id,
            QueryRegisterMessage(
                sender=self.client_id,
                window=CONTROL_WINDOW,
                query_id=query_id,
                q=spec.q,
                kind=spec.kind,
                length_ms=spec.length_ms,
                step_ms=spec.step,
                gamma=spec.gamma,
                freshness_ms=spec.freshness_ms,
                selector=spec.selector,
            ),
            timeout=timeout,
        )
        self.horizons[query_id] = ack.window.start
        return ack

    async def deregister(
        self, query_id: int, *, timeout: float = 30.0
    ) -> QueryAckMessage:
        """Withdraw a query; await the root's confirming ack."""
        return await self._round_trip(
            query_id,
            QueryDeregisterMessage(
                sender=self.client_id,
                window=CONTROL_WINDOW,
                query_id=query_id,
            ),
            timeout=timeout,
        )

    async def wait_for(
        self,
        predicate: Callable[["QueryClient"], bool],
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
    ) -> None:
        """Poll until ``predicate(self)`` holds (or raise on timeout)."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while not predicate(self):
            if loop.time() > deadline:
                raise QueryError(
                    f"client {self.client_id} timed out waiting for results"
                )
            await asyncio.sleep(poll_s)

    def results_for(self, query_id: int) -> tuple[QueryResultMessage, ...]:
        """Every result served so far for one query, arrival order."""
        return tuple(self.results.get(query_id, ()))

    async def _round_trip(
        self, query_id: int, message: Message, *, timeout: float
    ) -> QueryAckMessage:
        if query_id in self._acks:
            raise QueryError(
                f"query id {query_id} already has a request in flight"
            )
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._acks[query_id] = (future, message)
        try:
            try:
                await self.stream.send(message)
            except TransportError:
                if self._dial is None:
                    raise
                # The link is down; the read loop's reconnect re-sends
                # every pending request, this one included.
            ack = await asyncio.wait_for(future, timeout)
        finally:
            self._acks.pop(query_id, None)
        if not ack.accepted:
            raise QueryError(ack.reason)
        return ack

    async def _reconnect(self) -> bool:
        """Redial, resume from the received cursor, re-send pending.

        Returns ``True`` once a new session is established, ``False``
        if the client was closed while redialing.
        """
        assert self._dial is not None
        while not self._closed:
            try:
                stream = await self._dial()
                await stream.send(
                    Hello(
                        node_id=self.client_id,
                        role="driver",
                        resume_from=self.received,
                    )
                )
                for _, message in self._acks.values():
                    await stream.send(message)
            except TransportError:
                await asyncio.sleep(_REDIAL_BACKOFF_S)
                continue
            self.stream = stream
            self.reconnects += 1
            return True
        return False

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    message = await self.stream.recv()
                except TransportError:
                    message = None
                if message is None:
                    if self._closed or self._dial is None:
                        break
                    if not await self._reconnect():
                        break
                    continue
                if isinstance(message, QueryAckMessage):
                    entry = self._acks.get(message.query_id)
                    if entry is not None and not entry[0].done():
                        entry[0].set_result(message)
                elif isinstance(message, QueryResultMessage):
                    self.results.setdefault(message.query_id, []).append(
                        message
                    )
                    self.received += 1
                    await self._send_ack()
        finally:
            if not self._closed:
                # EOF with requests still pending: fail them fast.
                for future, _ in self._acks.values():
                    if not future.done():
                        future.set_exception(
                            TransportError(
                                "root connection closed before the ack"
                            )
                        )

    async def _send_ack(self) -> None:
        """Tell the root how far the result stream has durably landed."""
        try:
            await self.stream.send(
                ResultAckMessage(
                    sender=self.client_id,
                    window=CONTROL_WINDOW,
                    cursor=self.received,
                )
            )
        except TransportError:
            pass  # the link is dying; the resume hello re-states the cursor
