"""Live multi-query scenarios: churn, grading and the shared-cut invariant.

:func:`run_query_scenario` boots a full live cluster with the query
plane attached, drives it with one :class:`~repro.queries.client.QueryClient`
— registering a mixed batch of tumbling and sliding queries over several
key selectors *before* the replay, optionally churning (joining and
deregistering queries) mid-run — then grades **every served result**
bit-identically against the centralized oracle and asserts the
shared-cut invariant from the trace: exactly one
``query_identification`` span per (group, window), no matter how many
queries ride the group.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.bench.generator import GeneratorConfig, workload
from repro.errors import ConfigurationError, QueryError
from repro.obs.tracer import RecordingTracer, Tracer
from repro.queries.client import QueryClient
from repro.queries.oracle import grade_results, oracle_results
from repro.queries.spec import QuerySpec
from repro.runtime.cluster import (
    LiveClusterConfig,
    LiveRunReport,
    QueryDriverContext,
    run_live_cluster,
)

__all__ = ["QueryScenarioReport", "build_specs", "run_query_scenario"]

#: Driver client node id — far above any local/stream id the cluster uses.
DRIVER_CLIENT_ID = 9001

#: Quantiles cycled over the generated specs (mixed extremes and medians).
_QS = (0.5, 0.9, 0.25, 0.99, 0.75, 0.1, 0.95, 1.0)


@dataclass
class QueryScenarioReport:
    """Outcome of one graded multi-query scenario."""

    n_queries: int
    n_registered: int
    n_deregistered: int
    groups: int
    results_served: int
    results_graded: int
    mismatches: list[str]
    identification_cuts: int
    #: (group, window) pairs with more than one identification span —
    #: the shared-cut invariant demands this stays 0.
    duplicate_cuts: int
    horizons: dict[int, int]
    wall_seconds: float
    live: LiveRunReport
    nacks: list[str] = field(default_factory=list)
    #: Driver connections re-established mid-run (durable sessions only).
    driver_reconnects: int = 0

    @property
    def ok(self) -> bool:
        """No grading mismatch and the shared-cut invariant held."""
        return not self.mismatches and self.duplicate_cuts == 0

    @property
    def queries_per_second(self) -> float:
        """Per-query results served per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.results_served / self.wall_seconds


def build_specs(
    n_queries: int, n_keys: int, *, window_ms: int, gamma: int
) -> list[QuerySpec]:
    """A mixed batch: cycled quantiles × selectors, tumbling ∥ sliding.

    Selectors cycle through ``all`` plus ``mod`` partitions (``n_keys``
    distinct keys); every odd spec is sliding with a half-window step, so
    consecutive windows overlap and exercise the shared-slice path.
    """
    if n_keys < 1:
        raise ConfigurationError("need at least one key selector")
    keys = ["all"] + [
        f"mod:{max(2, n_keys)}:{k % max(2, n_keys)}"
        for k in range(1, n_keys)
    ]
    specs = []
    for index in range(n_queries):
        sliding = index % 2 == 1
        specs.append(
            QuerySpec(
                q=_QS[index % len(_QS)],
                selector=keys[index % len(keys)],
                kind="sliding" if sliding else "tumbling",
                length_ms=window_ms,
                step_ms=window_ms // 2 if sliding else None,
                gamma=gamma,
            )
        )
    return specs


def run_query_scenario(
    *,
    n_queries: int = 8,
    n_keys: int = 3,
    n_locals: int = 3,
    streams_per_local: int = 2,
    event_rate: float = 400.0,
    duration_s: float = 4.0,
    transport: str = "memory",
    time_scale: float = 0.0,
    churn: bool = False,
    seed: int = 7,
    gamma: int = 32,
    window_ms: int = 1000,
    timeout_s: float = 120.0,
    tracer: Tracer | None = None,
    specs: "list[QuerySpec] | None" = None,
    driver_drop: bool = False,
) -> QueryScenarioReport:
    """Run one live multi-query scenario and grade it end to end.

    With ``churn`` (requires ``time_scale > 0`` so there *is* a mid-run)
    the driver additionally registers two late joiners — one into an
    already-active group, one forcing a fresh group — and deregisters
    every other initial query while the streams are still flowing.

    With ``driver_drop`` the cluster runs durable queries: once the run
    has served at least one result the driver severs its connection and
    redials with its resume cursor; grading then proves every result
    still arrived exactly once (the duplicate check in
    :func:`~repro.queries.oracle.grade_results` makes "at most once"
    explicit, completeness makes it "at least once").

    ``specs`` overrides the generated batch (the bench uses this to run
    each query alone for the amortization baseline).
    """
    if churn and time_scale <= 0:
        raise ConfigurationError(
            "churn needs time_scale > 0 — registering and deregistering "
            "mid-run is meaningless at replay-as-fast-as-possible"
        )
    if driver_drop and time_scale <= 0:
        raise ConfigurationError(
            "driver_drop needs time_scale > 0 — at replay-as-fast-as-"
            "possible the run finishes before the connection can drop "
            "mid-stream"
        )
    if tracer is None:
        tracer = RecordingTracer()
    if specs is None:
        specs = build_specs(
            n_queries, n_keys, window_ms=window_ms, gamma=gamma
        )
    n_queries = len(specs)
    local_ids = list(range(1, n_locals + 1))
    streams = workload(
        local_ids,
        GeneratorConfig(
            event_rate=event_rate, duration_s=duration_s, seed=seed
        ),
    )
    config = LiveClusterConfig(
        n_locals=n_locals,
        streams_per_local=streams_per_local,
        transport=transport,
        time_scale=time_scale,
        timeout_s=timeout_s,
        durable_queries=driver_drop,
    )

    initial = {index + 1: spec for index, spec in enumerate(specs)}
    dropped: list[int] = []
    joiners: dict[int, QuerySpec] = {}
    nacks: list[str] = []
    survivors_expect: dict[int, int] = {}
    grid_end_box: dict[str, int] = {}
    reconnects_box: dict[str, int] = {"reconnects": 0}

    async def driver(context: QueryDriverContext) -> dict:
        grid_end_box["grid_end"] = context.grid_end
        redial_gate = asyncio.Event()
        redial_gate.set()

        async def gated_dial():
            await redial_gate.wait()
            return await context.dial(DRIVER_CLIENT_ID)

        client = QueryClient(
            await context.dial(DRIVER_CLIENT_ID),
            DRIVER_CLIENT_ID,
            dial=gated_dial if driver_drop else None,
        )
        await client.start()
        try:
            for query_id, spec in initial.items():
                await client.register(query_id, spec)
            context.start_replay()
            if driver_drop:
                # Sever the driver link after the first served result,
                # then hold the redial shut until the root has produced
                # the *entire* run — everything after the drop lands
                # only in the retained per-client log.  Reopening the
                # gate forces a resume that must replay that tail from
                # the acked cursor.
                await client.wait_for(
                    lambda c: any(c.results.values()), timeout=timeout_s
                )
                expected_total = sum(
                    len(
                        spec.window_starts(
                            client.horizons[query_id], context.grid_end
                        )
                    )
                    for query_id, spec in initial.items()
                )
                redial_gate.clear()
                await client.drop_connection()
                loop = asyncio.get_event_loop()
                deadline = loop.time() + timeout_s
                while context.plane_results() < expected_total:
                    if loop.time() > deadline:
                        raise QueryError(
                            "timed out waiting for the disconnected "
                            "plane to finish the run"
                        )
                    await asyncio.sleep(0.01)
                redial_gate.set()
                await client.wait_for(
                    lambda c: c.reconnects >= 1, timeout=timeout_s
                )
            if churn:
                # Churn once the run is demonstrably mid-protocol (at
                # least one result served): every other initial query
                # leaves; two joiners arrive — one sharing spec 1's shape
                # (an active group, so it starts at the group's next
                # unidentified window), one with a fresh shape (a full
                # activation round mid-stream).
                await asyncio.sleep(0.4 * duration_s * time_scale)
                await client.wait_for(
                    lambda c: any(c.results.values()), timeout=timeout_s
                )
                first = initial[1]
                join_active = QuerySpec(
                    q=0.33,
                    selector=first.selector,
                    kind=first.kind,
                    length_ms=first.length_ms,
                    step_ms=first.step_ms,
                    gamma=first.gamma,
                )
                join_fresh = QuerySpec(
                    q=0.66,
                    selector="node:1",
                    kind="sliding",
                    length_ms=window_ms,
                    step_ms=window_ms // 2,
                    gamma=gamma,
                )
                for query_id, spec in (
                    (n_queries + 1, join_active),
                    (n_queries + 2, join_fresh),
                ):
                    try:
                        await client.register(query_id, spec)
                        joiners[query_id] = spec
                    except QueryError as exc:
                        nacks.append(f"join {query_id}: {exc}")
                for query_id in list(initial)[::2]:
                    await client.deregister(query_id)
                    dropped.append(query_id)
            # Completion: every surviving query must have a result for
            # every window from its accepted horizon to the grid end.
            surviving = [q for q in initial if q not in dropped]
            surviving += list(joiners)
            for query_id in surviving:
                spec = initial.get(query_id) or joiners[query_id]
                survivors_expect[query_id] = len(
                    spec.window_starts(
                        client.horizons[query_id], context.grid_end
                    )
                )
            await client.wait_for(
                lambda c: all(
                    len(c.results.get(query_id, ()))
                    >= survivors_expect[query_id]
                    for query_id in surviving
                ),
                timeout=timeout_s,
            )
            reconnects_box["reconnects"] = client.reconnects
            return {
                "results": {
                    query_id: list(messages)
                    for query_id, messages in client.results.items()
                },
                "horizons": dict(client.horizons),
            }
        finally:
            await client.close()

    report = asyncio.run(
        run_live_cluster(config, streams, tracer=tracer, driver=driver)
    )

    served = report.queries.get("results", {})
    horizons = report.queries.get("horizons", {})
    grid_end = grid_end_box["grid_end"]
    all_events = [event for share in streams.values() for event in share]
    all_specs = dict(initial)
    all_specs.update(joiners)
    mismatches: list[str] = []
    graded = 0
    for query_id, spec in all_specs.items():
        horizon = horizons.get(query_id)
        if horizon is None:
            mismatches.append(f"query {query_id}: never acknowledged")
            continue
        expected = oracle_results(
            all_events, spec, start_from=horizon, horizon_end=grid_end
        )
        results = served.get(query_id, [])
        graded += len(results)
        mismatches.extend(
            grade_results(
                query_id,
                results,
                expected,
                require_complete=query_id not in dropped,
            )
        )

    # Shared-cut invariant from the trace: one identification span per
    # (group, window), no matter how many queries the group carries.
    cut_spans: dict[tuple, int] = {}
    if isinstance(tracer, RecordingTracer):
        for span in tracer.spans:
            if span.name != "query_identification":
                continue
            key = (span.attrs.get("group"), span.window)
            cut_spans[key] = cut_spans.get(key, 0) + 1
    duplicate_cuts = sum(1 for count in cut_spans.values() if count > 1)

    return QueryScenarioReport(
        n_queries=len(all_specs),
        n_registered=len(all_specs),
        n_deregistered=len(dropped),
        groups=len({spec.shape for spec in all_specs.values()}),
        results_served=sum(len(r) for r in served.values()),
        results_graded=graded,
        mismatches=mismatches,
        identification_cuts=sum(cut_spans.values()),
        duplicate_cuts=duplicate_cuts,
        horizons=dict(horizons),
        wall_seconds=report.wall_seconds,
        live=report,
        nacks=nacks,
        driver_reconnects=reconnects_box["reconnects"],
    )
