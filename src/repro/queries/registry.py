"""Root-side bookkeeping for the live multi-query plane.

The registry owns two maps: queries by id, and *execution groups* by
shape.  Queries with equal :attr:`~repro.queries.spec.QuerySpec.shape`
(selector, window kind/length/step, γ) join the same group: the group is
what the cluster executes — one pane store per local, one synopsis
transfer and one identification cut per window — while the per-query
quantiles ride it for free.  The registry is pure state-keeping: wire
handling and the activation protocol live in :mod:`repro.queries.root`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.queries.spec import GroupShape, QuerySpec

__all__ = ["QueryRecord", "QueryGroup", "QueryRegistry"]


@dataclass(slots=True)
class QueryRecord:
    """One registered query and its lifecycle state.

    Attributes:
        query_id: Client-chosen stable id, unique across the cluster.
        spec: The validated spec.
        client_id: Node id of the owning driver connection.
        group_id: The execution group serving this query.
        horizon_start: Start of the first window this query is guaranteed
            results for; ``None`` until the group activates.
        results_served: Results shipped to the client so far.
    """

    query_id: int
    spec: QuerySpec
    client_id: int
    group_id: int
    horizon_start: int | None = None
    results_served: int = 0


@dataclass(slots=True)
class QueryGroup:
    """One execution group: every query sharing a (selector, window) shape.

    Attributes:
        group_id: Wire-level group id (> 0; 0 is the base single-query
            plane).
        shape: The shared :data:`~repro.queries.spec.GroupShape`.
        spec: A representative spec carrying the shape fields (its ``q``
            is irrelevant to the group).
        query_ids: Member queries, registration order.
        active: Whether the start negotiation with the locals finished.
        start: The agreed first window start ``G`` (max of the local
            proposals); ``None`` while negotiating.
        proposals: Per-local proposed start, collected during activation.
        next_cut_start: Start of the next window the root has *not yet*
            identified — the horizon handed to queries joining the group
            mid-run.
    """

    group_id: int
    shape: GroupShape
    spec: QuerySpec
    query_ids: list[int] = field(default_factory=list)
    active: bool = False
    start: int | None = None
    proposals: dict[int, int] = field(default_factory=dict)
    next_cut_start: int | None = None

    @property
    def length_ms(self) -> int:
        """Window length of every member query."""
        return self.spec.length_ms

    @property
    def step_ms(self) -> int:
        """Window step of every member query."""
        return self.spec.step


class QueryRegistry:
    """Queries by id, groups by shape, with lifecycle bookkeeping."""

    def __init__(self) -> None:
        self._queries: dict[int, QueryRecord] = {}
        self._groups: dict[int, QueryGroup] = {}
        self._group_by_shape: dict[GroupShape, int] = {}
        self._next_group_id = 1

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def active_queries(self) -> int:
        """Registered queries whose group has activated."""
        return sum(
            1
            for record in self._queries.values()
            if self._groups[record.group_id].active
        )

    def get(self, query_id: int) -> QueryRecord | None:
        """The record for ``query_id``, or ``None``."""
        return self._queries.get(query_id)

    def group(self, group_id: int) -> QueryGroup | None:
        """The group for ``group_id``, or ``None`` (e.g. after teardown)."""
        return self._groups.get(group_id)

    def groups(self) -> tuple[QueryGroup, ...]:
        """Every live group, in creation order."""
        return tuple(self._groups.values())

    def records(self) -> tuple[QueryRecord, ...]:
        """Every registered query, in registration order."""
        return tuple(self._queries.values())

    def queries_of(self, group_id: int) -> tuple[QueryRecord, ...]:
        """Member records of a group, registration order."""
        group = self._groups.get(group_id)
        if group is None:
            return ()
        return tuple(self._queries[qid] for qid in group.query_ids)

    def queries_of_client(self, client_id: int) -> tuple[QueryRecord, ...]:
        """Every query owned by one driver connection."""
        return tuple(
            r for r in self._queries.values() if r.client_id == client_id
        )

    def register(
        self, query_id: int, spec: QuerySpec, client_id: int
    ) -> tuple[QueryRecord, QueryGroup, bool]:
        """Add a query; create its group if the shape is new.

        Returns:
            ``(record, group, created)`` where ``created`` says a new
            group (and hence a cluster-wide activation round) is needed.

        Raises:
            QueryError: If ``query_id`` is already registered.
        """
        if query_id in self._queries:
            existing = self._queries[query_id]
            raise QueryError(
                f"query id {query_id} is already registered "
                f"(client {existing.client_id}: {existing.spec.describe()})"
            )
        shape = spec.shape
        group_id = self._group_by_shape.get(shape)
        created = group_id is None
        if group_id is None:
            group_id = self._next_group_id
            self._next_group_id += 1
            group = QueryGroup(group_id=group_id, shape=shape, spec=spec)
            self._groups[group_id] = group
            self._group_by_shape[shape] = group_id
        else:
            group = self._groups[group_id]
        record = QueryRecord(
            query_id=query_id,
            spec=spec,
            client_id=client_id,
            group_id=group_id,
        )
        self._queries[query_id] = record
        group.query_ids.append(query_id)
        return record, group, created

    def deregister(self, query_id: int) -> tuple[QueryRecord, QueryGroup, bool]:
        """Remove a query; tear down its group when it empties.

        Returns:
            ``(record, group, emptied)`` where ``emptied`` says the group
            lost its last member and the locals must drop it too.

        Raises:
            QueryError: If ``query_id`` is not registered.
        """
        record = self._queries.pop(query_id, None)
        if record is None:
            raise QueryError(f"query id {query_id} is not registered")
        group = self._groups[record.group_id]
        group.query_ids.remove(query_id)
        emptied = not group.query_ids
        if emptied:
            del self._groups[group.group_id]
            del self._group_by_shape[group.shape]
        return record, group, emptied
