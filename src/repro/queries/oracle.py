"""Centralized ground truth for grading the live multi-query plane.

For each query the oracle pretends every event sits in one sorted array:
filter the full workload by the query's key selector, slice out each
window, sort by the strict total order
:func:`~repro.streaming.events.event_key`, and read the element at rank
``ceil(q * n)``.  A served :class:`~repro.network.messages.QueryResultMessage`
is correct iff its (value, size, rank) triple is **bit-identical** to the
oracle's — the same grading the simulator's harness applies to
single-query runs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.queries.spec import QuerySpec
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import Event, event_key
from repro.streaming.windows import Window

__all__ = ["OracleResult", "oracle_results", "grade_results"]


@dataclass(frozen=True, slots=True)
class OracleResult:
    """Expected outcome for one (query, window) pair.

    ``value`` is ``None`` for an empty window (the plane serves the
    canonical empty result: value 0.0, size 0, rank 0).
    """

    window: Window
    value: float | None
    size: int
    rank: int


def oracle_results(
    events: Iterable[Event],
    spec: QuerySpec,
    *,
    start_from: int,
    horizon_end: int,
) -> dict[Window, OracleResult]:
    """Expected results for every window of ``spec`` in the horizon.

    Args:
        events: The full workload (every stream, any order).
        spec: The query to grade.
        start_from: The query's horizon — its accepted first window start.
        horizon_end: End of the event-time grid; only windows fitting
            entirely below it are expected.
    """
    predicate = spec.predicate()
    selected = [event for event in events if predicate(event)]
    selected.sort(key=lambda event: event.timestamp)
    timestamps = [event.timestamp for event in selected]
    out: dict[Window, OracleResult] = {}
    for window_start in spec.window_starts(start_from, horizon_end):
        window = Window(window_start, window_start + spec.length_ms)
        lo = bisect.bisect_left(timestamps, window.start)
        hi = bisect.bisect_left(timestamps, window.end, lo)
        inside = sorted(selected[lo:hi], key=event_key)
        if not inside:
            out[window] = OracleResult(window=window, value=None, size=0,
                                       rank=0)
            continue
        rank = quantile_rank(spec.q, len(inside))
        out[window] = OracleResult(
            window=window,
            value=inside[rank - 1].value,
            size=len(inside),
            rank=rank,
        )
    return out


def grade_results(
    query_id: int,
    served: Sequence,
    expected: Mapping[Window, OracleResult],
    *,
    require_complete: bool = False,
) -> list[str]:
    """Compare served results against the oracle; return mismatch notes.

    Every served result must match its window's oracle triple exactly
    (empty windows compare size/rank only — the 0.0 value is a filler).
    A window served more than once is a mismatch — the plane promises
    exactly-once delivery even across driver reconnects.  With
    ``require_complete`` the query must also have received a result for
    *every* expected window.
    """
    mismatches: list[str] = []
    seen: set[Window] = set()
    for result in served:
        window = result.window
        if window in seen:
            mismatches.append(
                f"query {query_id}: duplicate result for window {window}"
            )
            continue
        seen.add(window)
        truth = expected.get(window)
        if truth is None:
            mismatches.append(
                f"query {query_id}: unexpected result for window {window}"
            )
            continue
        if result.global_window_size != truth.size:
            mismatches.append(
                f"query {query_id} window {window}: size "
                f"{result.global_window_size} != oracle {truth.size}"
            )
        elif result.rank != truth.rank:
            mismatches.append(
                f"query {query_id} window {window}: rank {result.rank} "
                f"!= oracle {truth.rank}"
            )
        elif truth.size > 0 and result.value != truth.value:
            mismatches.append(
                f"query {query_id} window {window}: value {result.value!r} "
                f"!= oracle {truth.value!r}"
            )
    if require_complete:
        for window, truth in expected.items():
            if window not in seen:
                mismatches.append(
                    f"query {query_id}: no result for window {window} "
                    f"(expected size {truth.size})"
                )
    return mismatches
