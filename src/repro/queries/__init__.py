"""The live multi-query plane.

A query-plane subsystem spanning core and runtime: clients register
:class:`QuerySpec` continuous quantile queries **at runtime, over the
wire**, against a running live cluster; queries sharing a (key selector,
window shape) execute as one group — one synopsis transfer and one
identification cut per (key, window) regardless of how many quantiles
ride it — and overlapping sliding windows reuse sorted pane runs through
a two-stack aggregator instead of re-sorting per slide.

Layers:

* :mod:`repro.queries.spec` — query specs, key selectors, validation.
* :mod:`repro.queries.slide` — pane store + two-stack sliding-run
  aggregation (shared-slice sliding windows).
* :mod:`repro.queries.registry` — root-side query/group bookkeeping.
* :mod:`repro.queries.local` — the local node's query plane.
* :mod:`repro.queries.root` — the root node's query plane.
* :mod:`repro.queries.client` — the dialing client (driver role).
* :mod:`repro.queries.oracle` — centralized ground truth for grading.
* :mod:`repro.queries.runner` — live scenarios with churn and grading.
"""

from repro.queries.spec import QuerySpec, parse_selector
from repro.queries.client import QueryClient
from repro.queries.runner import QueryScenarioReport, run_query_scenario

__all__ = [
    "QuerySpec",
    "parse_selector",
    "QueryClient",
    "QueryScenarioReport",
    "run_query_scenario",
]
