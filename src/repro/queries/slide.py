"""Shared-slice sliding windows: pane store + two-stack run aggregation.

Overlapping sliding windows share events; re-sorting every window from
scratch does Θ(window · log window) work per *slide*.  The plane instead
follows the two-stack (DABA-style) scheme of Tangwongsan, Hirzel and
Schneider for mergeable aggregates, instantiated over the **sorted run**
monoid: the elements are event runs sorted by the strict total order
:func:`~repro.streaming.events.event_key`, and the monoid operation is a
linear two-way merge.  Because the order is strict (no two events
compare equal), *any* merge tree over the same panes yields the
byte-identical sequence a full sort would — which is what makes the
amortized structure safe to substitute for the naive recompute
(property-tested in ``tests/queries``).

Two pieces:

* :class:`PaneStore` — events bucketed into fixed panes of
  ``gcd(length, step)`` ms, each pane a
  :class:`~repro.core.sorted_window.SortedLocalWindow` sealed exactly
  once into a cached sorted run.  Stores are shared across every query
  group with the same (selector, pane length), so one ingest sort
  serves all of them.
* :class:`SlidingRunAggregator` — the two-stack window assembler: pushes
  and evictions cost O(1) amortized merges per pane, and ``query()``
  returns the current window's full sorted run.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.errors import QueryError
from repro.streaming.events import Event, event_key

__all__ = ["PaneStore", "SlidingRunAggregator", "merge_runs"]


def merge_runs(
    left: tuple[Event, ...], right: tuple[Event, ...]
) -> tuple[Event, ...]:
    """Two-way merge of key-sorted runs (either side may be empty)."""
    if not left:
        return right
    if not right:
        return left
    return tuple(heapq.merge(left, right, key=event_key))


class PaneStore:
    """Fixed panes of sorted events, sealed once, shared across groups.

    A pane is the half-open interval ``[k * pane_ms, (k+1) * pane_ms)``.
    Ingest appends into the pane's :class:`SortedLocalWindow` (O(1) per
    event); :meth:`sealed_run` sorts the pane exactly once and caches the
    run, so every window overlapping the pane reuses the same sorted
    slice.  Events arriving for an already-sealed pane are counted and
    dropped — on the live path the min-watermark seal guarantee makes
    this impossible, but the store is also a direct API for tests.
    """

    def __init__(self, pane_ms: int) -> None:
        if pane_ms <= 0:
            raise QueryError(f"pane length must be > 0 ms, got {pane_ms}")
        self._pane_ms = pane_ms
        self._open: dict[int, list[Event]] = {}
        self._sealed: dict[int, tuple[Event, ...]] = {}
        #: Events that arrived for a pane already sealed (late beyond the
        #: watermark guarantee) and were dropped.
        self.late_dropped = 0
        #: Reference count: how many query groups read this store.
        self.refs = 0

    @property
    def pane_ms(self) -> int:
        """Pane length in event-time milliseconds."""
        return self._pane_ms

    def pane_start(self, timestamp: int) -> int:
        """The start of the pane containing ``timestamp``."""
        return (timestamp // self._pane_ms) * self._pane_ms

    def add(self, event: Event) -> None:
        """Ingest one event into its pane (drops if the pane is sealed)."""
        start = self.pane_start(event.timestamp)
        if start in self._sealed:
            self.late_dropped += 1
            return
        self._open.setdefault(start, []).append(event)

    def sealed_run(self, start: int) -> tuple[Event, ...]:
        """The pane's sorted run; seals (sorts) the pane on first call."""
        run = self._sealed.get(start)
        if run is None:
            events = self._open.pop(start, [])
            events.sort(key=event_key)
            run = tuple(events)
            self._sealed[start] = run
        return run

    def prune_before(self, timestamp: int) -> None:
        """Drop every pane entirely before ``timestamp``."""
        for panes in (self._open, self._sealed):
            for start in [s for s in panes if s + self._pane_ms <= timestamp]:
                del panes[start]


class SlidingRunAggregator:
    """Two-stack sliding aggregation over the sorted-run monoid.

    Maintains a FIFO of pane runs; :meth:`push` admits the newest pane,
    :meth:`evict` retires the oldest, and :meth:`query` returns the merge
    of everything in between.  The classic two-stack layout — a *back*
    list with one running total, and a *front* stack of suffix merges
    built at flip time — moves each pane from back to front exactly once,
    so the amortized cost per slide is O(1) merges instead of re-merging
    (or re-sorting) the full window.
    """

    def __init__(self) -> None:
        #: Suffix merges of the front panes: ``_front[-1]`` is the merge
        #: of every front pane still in the window.
        self._front: list[tuple[Event, ...]] = []
        self._back: list[tuple[Event, ...]] = []
        self._back_total: tuple[Event, ...] = ()
        #: Pane starts currently in the window, oldest first.
        self._covered: deque[int] = deque()
        #: Total merge work performed, in events touched (work metric for
        #: the amortization tests and the bench artifact).
        self.events_merged = 0

    def __len__(self) -> int:
        return len(self._covered)

    @property
    def covered(self) -> "tuple[int, ...]":
        """Pane starts currently aggregated, oldest first."""
        return tuple(self._covered)

    def _merge(
        self, left: tuple[Event, ...], right: tuple[Event, ...]
    ) -> tuple[Event, ...]:
        if left and right:
            self.events_merged += len(left) + len(right)
        return merge_runs(left, right)

    def push(self, pane_start: int, run: tuple[Event, ...]) -> None:
        """Admit the next pane's sorted run (panes must arrive in order)."""
        if self._covered and pane_start <= self._covered[-1]:
            raise QueryError(
                f"panes must be pushed in ascending order; got {pane_start} "
                f"after {self._covered[-1]}"
            )
        self._covered.append(pane_start)
        self._back.append(run)
        self._back_total = self._merge(self._back_total, run)

    def evict(self) -> None:
        """Retire the oldest pane still in the window."""
        if not self._covered:
            raise QueryError("cannot evict from an empty aggregator")
        self._covered.popleft()
        if not self._front:
            # Flip: move the back panes to the front, precomputing suffix
            # merges newest → oldest so ``_front[-1]`` always covers every
            # front pane still in the window and each evict is a pop.
            acc: tuple[Event, ...] = ()
            for run in reversed(self._back):
                acc = self._merge(run, acc)
                self._front.append(acc)
            self._back = []
            self._back_total = ()
        self._front.pop()

    def query(self) -> tuple[Event, ...]:
        """The current window's full sorted run."""
        front = self._front[-1] if self._front else ()
        return self._merge(front, self._back_total)
