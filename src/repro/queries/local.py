"""The local node's half of the live multi-query plane.

A :class:`LocalQueryPlane` rides inside a running
:class:`~repro.runtime.servers.LocalServer`: the server taps every
ingested event batch and every watermark advance into the plane, and
forwards root messages whose ``group_id`` is non-zero.  The plane keeps
one :class:`~repro.queries.slide.PaneStore` per distinct
``(selector, pane length)`` — shared by every query group that reads it —
and one :class:`~repro.queries.slide.SlidingRunAggregator` per group, so
overlapping sliding windows reuse sorted pane runs instead of re-sorting
per slide.

Start negotiation: on a group registration the plane proposes the first
window start it can *guarantee* — the smallest step-aligned timestamp
strictly above everything it has already ingested (events are
timestamp-ordered per stream, so nothing earlier can still arrive).  The
root activates the group at the max proposal across locals, and the
plane serves every window from that start on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.slicing import SlicedWindow, slice_sorted_events
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    Message,
    QueryAckMessage,
    QueryDeregisterMessage,
    QueryRegisterMessage,
    SynopsisMessage,
)
from repro.queries.slide import PaneStore, SlidingRunAggregator
from repro.queries.spec import QuerySpec
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = ["LocalQueryPlane"]


def _align_up(timestamp: int, step: int) -> int:
    """The smallest multiple of ``step`` that is ``>= timestamp``."""
    return -(-timestamp // step) * step


@dataclass(slots=True)
class _StoreSlot:
    """A pane store plus the compiled selector predicate feeding it."""

    store: PaneStore
    predicate: Callable[[Event], bool]


@dataclass(slots=True)
class _LocalGroup:
    """Per-group execution state on one local node."""

    group_id: int
    spec: QuerySpec
    slot: _StoreSlot
    aggregator: SlidingRunAggregator = field(
        default_factory=SlidingRunAggregator
    )
    active: bool = False
    #: Start of the next window to seal (advances by the group step).
    next_window_start: int = 0
    #: Start of the next pane to push into the aggregator.
    next_pane_start: int = 0
    #: Sealed-but-unanswered windows, kept until the root's candidate
    #: request (possibly empty) releases them.
    pending: dict[Window, SlicedWindow] = field(default_factory=dict)


class LocalQueryPlane:
    """Executes the local side of every registered query group."""

    def __init__(self, node_id: int, *, grid_start: int = 0) -> None:
        self.node_id = node_id
        self._grid_start = grid_start
        self._slots: dict[tuple[str, int], _StoreSlot] = {}
        self._groups: dict[int, _LocalGroup] = {}
        self._max_seen_ts = grid_start - 1
        self._watermark: int | None = None
        #: Total synopsis batches emitted across all groups.
        self.windows_sealed = 0

    @property
    def groups(self) -> tuple[int, ...]:
        """Ids of the groups currently served, ascending."""
        return tuple(sorted(self._groups))

    @property
    def stores(self) -> tuple[PaneStore, ...]:
        """The live pane stores (one per distinct selector/pane pair)."""
        return tuple(slot.store for slot in self._slots.values())

    def ingest(self, events: tuple[Event, ...]) -> None:
        """Feed a batch of ingested events into every matching store."""
        for event in events:
            if event.timestamp > self._max_seen_ts:
                self._max_seen_ts = event.timestamp
        for slot in self._slots.values():
            predicate, store = slot.predicate, slot.store
            for event in events:
                if predicate(event):
                    store.add(event)

    def on_watermark(self, watermark: int) -> list[Message]:
        """Advance event time; seal and report every completed window."""
        self._watermark = watermark
        out: list[Message] = []
        for group in self._groups.values():
            if group.active:
                out.extend(self._advance(group, watermark))
        self._prune_stores()
        return out

    def on_root_message(self, message: Message) -> list[Message]:
        """Handle a query-plane message from the root; return replies."""
        if isinstance(message, QueryRegisterMessage):
            return self._on_register(message)
        if isinstance(message, QueryAckMessage):
            return self._on_activation(message)
        if isinstance(message, CandidateRequestMessage):
            return self._on_candidate_request(message)
        if isinstance(message, QueryDeregisterMessage):
            self._drop_group(message.group_id)
            return []
        return []

    # -- registration and activation ------------------------------------

    def _on_register(self, message: QueryRegisterMessage) -> list[Message]:
        group = self._groups.get(message.group_id)
        if group is None:
            spec = QuerySpec(
                q=message.q,
                selector=message.selector,
                kind=message.kind,
                length_ms=message.length_ms,
                step_ms=message.step_ms,
                gamma=message.gamma,
                freshness_ms=message.freshness_ms,
            )
            key = (spec.selector, spec.pane_ms)
            slot = self._slots.get(key)
            if slot is None:
                slot = _StoreSlot(
                    store=PaneStore(spec.pane_ms),
                    predicate=spec.predicate(),
                )
                self._slots[key] = slot
            slot.store.refs += 1
            group = _LocalGroup(
                group_id=message.group_id, spec=spec, slot=slot
            )
            self._groups[message.group_id] = group
        if group.active:
            proposal = group.next_window_start
        else:
            # First step-aligned start strictly above everything ingested:
            # windows from here on cannot have missed earlier events.
            proposal = _align_up(
                max(self._grid_start, self._max_seen_ts + 1), group.spec.step
            )
        return [
            QueryAckMessage(
                sender=self.node_id,
                window=Window(proposal, proposal + group.spec.length_ms),
                group_id=group.group_id,
                query_id=message.query_id,
                accepted=True,
            )
        ]

    def _on_activation(self, message: QueryAckMessage) -> list[Message]:
        group = self._groups.get(message.group_id)
        if group is None or group.active:
            return []
        group.active = True
        group.next_window_start = message.window.start
        group.next_pane_start = message.window.start
        if self._watermark is None:
            return []
        out = self._advance(group, self._watermark)
        self._prune_stores()
        return out

    # -- window sealing -------------------------------------------------

    def _advance(self, group: _LocalGroup, watermark: int) -> list[Message]:
        out: list[Message] = []
        spec = group.spec
        length, step = spec.length_ms, spec.step
        store = group.slot.store
        aggregator = group.aggregator
        start = group.next_window_start
        while start + length <= watermark:
            window = Window(start, start + length)
            while aggregator.covered and aggregator.covered[0] < start:
                aggregator.evict()
            pane = max(group.next_pane_start, start)
            while pane < window.end:
                aggregator.push(pane, store.sealed_run(pane))
                pane += store.pane_ms
            group.next_pane_start = pane
            run = aggregator.query()
            sliced = slice_sorted_events(run, spec.gamma, self.node_id)
            group.pending[window] = sliced
            self.windows_sealed += 1
            out.append(
                SynopsisMessage(
                    sender=self.node_id,
                    window=window,
                    group_id=group.group_id,
                    synopses=sliced.synopses,
                    local_window_size=len(run),
                )
            )
            start += step
        group.next_window_start = start
        return out

    def _on_candidate_request(
        self, message: CandidateRequestMessage
    ) -> list[Message]:
        group = self._groups.get(message.group_id)
        if group is None:
            return []  # group deregistered while the request was in flight
        sliced = group.pending.pop(message.window, None)
        if sliced is None:
            return []
        return [
            CandidateEventsMessage(
                sender=self.node_id,
                window=message.window,
                group_id=group.group_id,
                slice_index=index,
                events=sliced.run_for(index),
            )
            for index in message.slice_indices
        ]

    # -- teardown and memory --------------------------------------------

    def _drop_group(self, group_id: int) -> None:
        group = self._groups.pop(group_id, None)
        if group is None:
            return
        slot = group.slot
        slot.store.refs -= 1
        if slot.store.refs <= 0:
            key = (group.spec.selector, group.spec.pane_ms)
            self._slots.pop(key, None)

    def _prune_stores(self) -> None:
        """Free panes no remaining group can still need.

        A store is prunable up to the earliest ``next_window_start`` of
        its reader groups; groups still negotiating their start pin the
        store entirely (their horizon is not yet known).
        """
        floors: dict[int, int | None] = {}
        for group in self._groups.values():
            store_id = id(group.slot.store)
            if not group.active:
                floors[store_id] = None
            elif store_id not in floors:
                floors[store_id] = group.next_window_start
            elif floors[store_id] is not None:
                floors[store_id] = min(
                    floors[store_id], group.next_window_start
                )
        for slot in self._slots.values():
            floor = floors.get(id(slot.store))
            if floor is not None:
                slot.store.prune_before(floor)
