"""Query specifications for the live multi-query plane.

A :class:`QuerySpec` names everything the plane needs to execute one
continuous quantile query: the quantile ``q``, a *key selector* choosing
which events the query ranges over, the window shape (tumbling, sliding
— including sliding with gaps, i.e. ``step > length`` — or session), the
slice factor γ, and a freshness budget.  Specs are pure data: validation
happens here, execution in :mod:`repro.queries.local` /
:mod:`repro.queries.root`.

Key selectors are strings with a tiny grammar:

``all``
    Every event.
``node:<id>``
    Events produced by local node ``<id>``.
``mod:<m>:<r>``
    Events whose sequence number satisfies ``seq % m == r`` — a cheap
    deterministic "key" that partitions every node's stream.

The wire format carries selectors as arbitrary UTF-8 (the codec round
trips anything); the grammar is enforced when the root *registers* the
query, so a bad selector is rejected with a reasoned nack rather than a
protocol error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryError
from repro.core.slicing import MIN_GAMMA
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = [
    "QuerySpec",
    "VALID_KINDS",
    "parse_selector",
    "GroupShape",
    "CONTROL_WINDOW",
]

#: Placeholder header window for query-plane control messages whose
#: meaning does not involve a window (registration, nacks, deregistration).
#: Handshake messages that *do* carry a window (start proposals and
#: activations) put it in the header instead.
CONTROL_WINDOW = Window(0, 1)

#: Window kinds a spec may carry.  ``session`` is representable (and round
#: trips the wire) but the live plane rejects it at registration: session
#: boundaries are a *global* property of the merged stream, which a
#: per-local pane store cannot decide.
VALID_KINDS = ("tumbling", "sliding", "session")

#: The execution-group key: queries with equal shapes share one group —
#: one pane store, one synopsis transfer, one identification cut per
#: window.  ``(selector, kind, length_ms, step_ms, gamma)``.
GroupShape = tuple[str, str, int, int, int]


def parse_selector(selector: str) -> Callable[[Event], bool]:
    """Compile a key selector into an event predicate.

    Raises:
        QueryError: If ``selector`` does not match the grammar.
    """
    if selector == "all":
        return lambda event: True
    parts = selector.split(":")
    if parts[0] == "node" and len(parts) == 2:
        try:
            node_id = int(parts[1])
        except ValueError:
            raise QueryError(
                f"selector {selector!r}: node id must be an integer"
            ) from None
        if node_id < 0:
            raise QueryError(f"selector {selector!r}: node id must be >= 0")
        return lambda event: event.node_id == node_id
    if parts[0] == "mod" and len(parts) == 3:
        try:
            modulus, residue = int(parts[1]), int(parts[2])
        except ValueError:
            raise QueryError(
                f"selector {selector!r}: modulus and residue must be integers"
            ) from None
        if modulus < 1:
            raise QueryError(f"selector {selector!r}: modulus must be >= 1")
        if not 0 <= residue < modulus:
            raise QueryError(
                f"selector {selector!r}: residue must be in [0, {modulus})"
            )
        return lambda event: event.seq % modulus == residue
    raise QueryError(
        f"unknown selector {selector!r}; expected 'all', 'node:<id>' or "
        "'mod:<m>:<r>'"
    )


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One continuous quantile query, as registered by a client.

    Attributes:
        q: The quantile in ``(0, 1]``; NaN is rejected explicitly.
        selector: Key selector choosing the events the query ranges over.
        kind: Window kind — ``"tumbling"``, ``"sliding"`` or ``"session"``.
        length_ms: Window length in event-time milliseconds.
        step_ms: Distance between consecutive window starts.  ``None``
            resolves to ``length_ms`` (tumbling).  For sliding windows
            any positive step is legal — ``step < length`` overlaps,
            ``step == length`` degenerates to tumbling, ``step > length``
            leaves gaps between windows.
        gamma: Slice factor for the identification step, ≥ 2.
        freshness_ms: Advisory staleness budget carried with the query;
            the bench runner reports observed seal→result lag against it.
    """

    q: float = 0.5
    selector: str = "all"
    kind: str = "tumbling"
    length_ms: int = 1000
    step_ms: int | None = None
    gamma: int = 64
    freshness_ms: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.q, float) and math.isnan(self.q):
            raise QueryError("quantile q must not be NaN")
        if not 0.0 < self.q <= 1.0:
            raise QueryError(f"quantile q must be in (0, 1], got {self.q}")
        if self.kind not in VALID_KINDS:
            raise QueryError(
                f"window kind must be one of {VALID_KINDS}, got {self.kind!r}"
            )
        if self.length_ms <= 0:
            raise QueryError(
                f"window length must be > 0 ms, got {self.length_ms}"
            )
        step = self.step_ms
        if step is not None and step <= 0:
            raise QueryError(f"window step must be > 0 ms, got {step}")
        if self.kind == "tumbling" and step is not None and step != self.length_ms:
            raise QueryError(
                f"a tumbling window's step must equal its length; got step "
                f"{step} for length {self.length_ms} (use kind='sliding')"
            )
        if self.gamma < MIN_GAMMA:
            raise QueryError(f"gamma must be >= {MIN_GAMMA}, got {self.gamma}")
        if self.freshness_ms < 0:
            raise QueryError(
                f"freshness must be >= 0 ms, got {self.freshness_ms}"
            )
        if not self.selector:
            raise QueryError("selector must be a non-empty string")
        parse_selector(self.selector)  # reject bad grammar at build time

    @property
    def step(self) -> int:
        """The resolved window step (``length_ms`` when unset)."""
        return self.length_ms if self.step_ms is None else self.step_ms

    @property
    def is_sliding(self) -> bool:
        """Whether consecutive windows overlap."""
        return self.kind == "sliding" and self.step < self.length_ms

    @property
    def pane_ms(self) -> int:
        """The shared pane length: ``gcd(length, step)``.

        Every window boundary of this query falls on a pane boundary, so
        sorted pane runs compose into window runs without re-sorting.
        """
        return math.gcd(self.length_ms, self.step)

    @property
    def shape(self) -> GroupShape:
        """The execution-group key this query shares a cut under."""
        return (self.selector, self.kind, self.length_ms, self.step,
                self.gamma)

    def predicate(self) -> Callable[[Event], bool]:
        """The compiled key-selector predicate."""
        return parse_selector(self.selector)

    def window_starts(self, start_from: int, horizon_end: int) -> list[int]:
        """Epoch-aligned window starts in ``[start_from, horizon_end - length]``.

        Window starts are the multiples of :attr:`step`; a window must fit
        entirely below ``horizon_end`` to be included.
        """
        step = self.step
        first = -(-start_from // step) * step  # ceil-align to the step grid
        return list(range(first, horizon_end - self.length_ms + 1, step))

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        if self.kind == "sliding":
            shape = f"{self.length_ms} ms windows every {self.step} ms"
        elif self.kind == "session":
            shape = f"session windows (gap {self.length_ms} ms)"
        else:
            shape = f"{self.length_ms} ms tumbling windows"
        return (
            f"{self.q:g} quantile of {self.selector!r} over {shape} "
            f"(γ={self.gamma})"
        )
