"""The root node's half of the live multi-query plane.

A :class:`RootQueryPlane` rides inside a running
:class:`~repro.runtime.servers.RootServer`: driver connections hand it
register/deregister requests, and every local-plane message with a
non-zero ``group_id`` is forwarded here.  The plane is a pure
message-in/messages-out state machine — the server owns the sockets and
ships whatever the plane returns — which keeps it directly unit-testable
without a transport.

Execution is *shared-cut*: all queries of a group (same selector and
window shape) are answered from **one** identification pass per window.
The plane collects one synopsis batch per local, runs
:func:`~repro.core.identification.identify_multi` over the distinct
quantiles of the group's members, fetches the union of the candidate
slices once, and fans the per-query results out to the owning clients.
Every identification opens exactly one ``query_identification`` span per
(group, window) — the invariant the scenario runner asserts.

Group activation: a new shape triggers a negotiation round — the root
broadcasts the registration to every local, each local proposes the
earliest window start it can guarantee, and the root activates the group
at the **max** proposal, which every local can honour.  Queries joining
an already-active group start at the group's next unidentified window
(window completions arrive in order on FIFO streams, so that horizon is
race-free).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.calculation import calculate_quantile
from repro.core.identification import identify_multi
from repro.core.window_cut import CutResult
from repro.errors import QueryError
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    Message,
    QueryAckMessage,
    QueryDeregisterMessage,
    QueryRegisterMessage,
    QueryResultMessage,
    ResultAckMessage,
    SynopsisMessage,
)
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.queries.registry import QueryGroup, QueryRecord, QueryRegistry
from repro.queries.spec import CONTROL_WINDOW, QuerySpec
from repro.streaming.events import Event
from repro.streaming.windows import Window

__all__ = ["RootQueryPlane"]

#: The root's node id on the wire (sender of every plane message).
ROOT_SENDER = 0

#: ``(destination node id, message)`` pairs for the hosting server to ship.
Outgoing = list[tuple[int, Message]]


@dataclass(slots=True)
class _ClientLog:
    """Durable per-client result log: retained to the acked horizon.

    Entry ``i`` (absolute index ``base + position``) is the client's
    ``i``-th result in serve order.  A reconnecting driver says how many
    results it has received (its ``resume_from`` cursor); everything at
    or past that cursor is replayed, and a
    :class:`~repro.network.messages.ResultAckMessage` prunes entries
    below the acked cursor — exactly-once delivery by cursor
    arithmetic, with the ack as the retention horizon.
    """

    base: int = 0
    entries: list[QueryResultMessage] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Absolute index one past the last logged result."""
        return self.base + len(self.entries)

    def append(self, message: QueryResultMessage) -> None:
        self.entries.append(message)

    def tail_from(self, cursor: int) -> "list[QueryResultMessage]":
        """Entries at or past ``cursor`` (clamped to what is retained)."""
        return list(self.entries[max(0, cursor - self.base):])

    def prune_below(self, cursor: int) -> int:
        """Drop entries below ``cursor``; returns how many were dropped."""
        drop = min(max(0, cursor - self.base), len(self.entries))
        if drop:
            del self.entries[:drop]
            self.base += drop
        return drop


@dataclass(slots=True)
class _CutState:
    """In-flight state for one (group, window) shared cut."""

    synopses: dict[int, tuple] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    #: Query ids snapshotted at identification time; results go to these.
    snapshot: tuple[int, ...] = ()
    cuts: Mapping[float, CutResult] = field(default_factory=dict)
    total: int = 0
    expected_runs: int = 0
    runs: dict[tuple[int, int], tuple[Event, ...]] = field(
        default_factory=dict
    )


class RootQueryPlane:
    """Registry, activation protocol and shared-cut execution at the root."""

    def __init__(
        self,
        local_ids: tuple[int, ...],
        *,
        tracer: Tracer = NOOP_TRACER,
        clock: Callable[[], float] = time.monotonic,
        durable: bool = False,
    ) -> None:
        if not local_ids:
            raise QueryError("the query plane needs at least one local node")
        self.local_ids = tuple(sorted(local_ids))
        self.tracer = tracer
        self.clock = clock
        #: Durable mode: a disconnect *retains* the client's
        #: registrations and per-client result log, so a reconnecting
        #: driver resumes from its acked cursor instead of starting
        #: over.  Off (the default), a disconnect deregisters
        #: everything the client owned — the original semantics.
        self.durable = durable
        self.registry = QueryRegistry()
        self._cuts: dict[tuple[int, Window], _CutState] = {}
        self._clients: set[int] = set()
        self._logs: dict[int, _ClientLog] = {}
        #: Identification passes run (one per completed (group, window)).
        self.identification_cuts = 0
        #: Per-query results shipped to clients.
        self.results_served = 0
        #: Results replayed to reconnecting clients (durable mode).
        self.results_replayed = 0

    # -- client side ----------------------------------------------------

    def on_client_connect(self, client_id: int) -> None:
        """A driver connection said hello."""
        self._clients.add(client_id)

    def on_client_resume(self, client_id: int, resume_from: int) -> int:
        """A driver (re)connected with a result cursor; marks it live.

        Returns the absolute log cursor the connection's result stream
        must start from: the client's own cursor when it presented one
        (``resume_from >= 0`` — everything at or past it gets
        replayed), else the log end (a fresh connection sees only
        results produced after it arrived).  Non-durable planes always
        start at the end; there is no retained log to replay.
        """
        self.on_client_connect(client_id)
        if not self.durable:
            return 0
        log = self._logs.setdefault(client_id, _ClientLog())
        if resume_from < 0:
            return log.end
        cursor = min(resume_from, log.end)
        replay = log.end - cursor
        if replay:
            self.results_replayed += replay
            if self.tracer.enabled:
                self.tracer.registry.counter(
                    "query_results_replayed_total",
                    "Results replayed to reconnecting driver clients.",
                ).inc(replay)
        return cursor

    def log_from(
        self, client_id: int, cursor: int
    ) -> "list[QueryResultMessage]":
        """Retained results for ``client_id`` at or past ``cursor``."""
        log = self._logs.get(client_id)
        if log is None:
            return []
        return log.tail_from(cursor)

    def on_result_ack(self, client_id: int, cursor: int) -> None:
        """The client has durably received everything below ``cursor``."""
        log = self._logs.get(client_id)
        if log is not None:
            log.prune_below(cursor)

    def on_client_gone(self, client_id: int) -> Outgoing:
        """A driver connection closed.

        Durable planes only mark the client disconnected — its
        registrations keep producing results into the retained log, and
        a reconnect replays from the acked cursor.  Otherwise the
        disconnect deregisters everything the client owned.
        """
        self._clients.discard(client_id)
        if self.durable:
            return []
        out: Outgoing = []
        for record in self.registry.queries_of_client(client_id):
            _, group, emptied = self.registry.deregister(record.query_id)
            if emptied:
                out.extend(self._teardown_group(group))
        self._set_gauges()
        return out

    def on_client_message(self, client_id: int, message: Message) -> Outgoing:
        """Handle a register/deregister/ack request from a driver."""
        if isinstance(message, QueryRegisterMessage):
            return self._on_register(client_id, message)
        if isinstance(message, QueryDeregisterMessage):
            return self._on_deregister(client_id, message)
        if isinstance(message, ResultAckMessage):
            self.on_result_ack(client_id, message.cursor)
        return []

    def _nack(self, client_id: int, query_id: int, reason: str) -> Outgoing:
        return [
            (
                client_id,
                QueryAckMessage(
                    sender=ROOT_SENDER,
                    window=CONTROL_WINDOW,
                    query_id=query_id,
                    accepted=False,
                    reason=reason,
                ),
            )
        ]

    def _ack(
        self, record: QueryRecord, group: QueryGroup
    ) -> tuple[int, Message]:
        start = record.horizon_start
        assert start is not None
        return (
            record.client_id,
            QueryAckMessage(
                sender=ROOT_SENDER,
                window=Window(start, start + group.length_ms),
                group_id=group.group_id,
                query_id=record.query_id,
                accepted=True,
            ),
        )

    def _on_register(
        self, client_id: int, message: QueryRegisterMessage
    ) -> Outgoing:
        try:
            spec = QuerySpec(
                q=message.q,
                selector=message.selector,
                kind=message.kind,
                length_ms=message.length_ms,
                step_ms=message.step_ms,
                gamma=message.gamma,
                freshness_ms=message.freshness_ms,
            )
        except QueryError as exc:
            return self._nack(client_id, message.query_id, str(exc))
        if spec.kind == "session":
            return self._nack(
                client_id,
                message.query_id,
                "session windows are not supported by the live plane: "
                "session boundaries are a property of the merged stream, "
                "which per-local pane stores cannot decide",
            )
        existing = self.registry.get(message.query_id)
        if (
            existing is not None
            and existing.client_id == client_id
            and existing.spec == spec
        ):
            # Idempotent re-registration: a reconnecting driver replays
            # requests it cannot prove were applied.  Same client, same
            # spec — re-ack (or stay silent while the group is still
            # negotiating; activation will ack) instead of nacking.
            group = self.registry.group(existing.group_id)
            if (
                group is not None
                and group.active
                and existing.horizon_start is not None
            ):
                return [self._ack(existing, group)]
            return []
        try:
            record, group, created = self.registry.register(
                message.query_id, spec, client_id
            )
        except QueryError as exc:
            return self._nack(client_id, message.query_id, str(exc))
        out: Outgoing = []
        if created:
            # New shape: open the start negotiation with every local.
            # Client acks are deferred until the group activates.
            propagated = QueryRegisterMessage(
                sender=ROOT_SENDER,
                window=CONTROL_WINDOW,
                group_id=group.group_id,
                query_id=record.query_id,
                q=spec.q,
                kind=spec.kind,
                length_ms=spec.length_ms,
                step_ms=spec.step,
                gamma=spec.gamma,
                freshness_ms=spec.freshness_ms,
                selector=spec.selector,
            )
            out.extend((local_id, propagated) for local_id in self.local_ids)
        elif group.active:
            # Joining an active group: guaranteed from the next window the
            # root has not yet identified.
            record.horizon_start = group.next_cut_start
            out.append(self._ack(record, group))
        # else: the group is still negotiating; activation acks this query.
        self._set_gauges()
        return out

    def _on_deregister(
        self, client_id: int, message: QueryDeregisterMessage
    ) -> Outgoing:
        record = self.registry.get(message.query_id)
        if record is None:
            return self._nack(
                client_id,
                message.query_id,
                f"query id {message.query_id} is not registered",
            )
        if record.client_id != client_id:
            return self._nack(
                client_id,
                message.query_id,
                f"query id {message.query_id} is owned by client "
                f"{record.client_id}",
            )
        _, group, emptied = self.registry.deregister(message.query_id)
        out: Outgoing = [
            (
                client_id,
                QueryAckMessage(
                    sender=ROOT_SENDER,
                    window=CONTROL_WINDOW,
                    group_id=group.group_id,
                    query_id=message.query_id,
                    accepted=True,
                ),
            )
        ]
        if emptied:
            out.extend(self._teardown_group(group))
        self._set_gauges()
        return out

    def _teardown_group(self, group: QueryGroup) -> Outgoing:
        """Drop a group's in-flight state and tell the locals to forget it."""
        for key in [k for k in self._cuts if k[0] == group.group_id]:
            del self._cuts[key]
        drop = QueryDeregisterMessage(
            sender=ROOT_SENDER,
            window=CONTROL_WINDOW,
            group_id=group.group_id,
        )
        return [(local_id, drop) for local_id in self.local_ids]

    # -- local side -----------------------------------------------------

    def on_local_message(self, message: Message) -> Outgoing:
        """Handle a query-plane message from a local node."""
        if isinstance(message, QueryAckMessage):
            return self._on_proposal(message)
        if isinstance(message, SynopsisMessage):
            return self._on_synopsis(message)
        if isinstance(message, CandidateEventsMessage):
            return self._on_candidates(message)
        return []

    def _on_proposal(self, message: QueryAckMessage) -> Outgoing:
        group = self.registry.group(message.group_id)
        if group is None or group.active:
            return []
        group.proposals[message.sender] = message.window.start
        if set(group.proposals) != set(self.local_ids):
            return []
        # Every local proposed; the max is a start they all can honour.
        start = max(group.proposals.values())
        group.active = True
        group.start = start
        group.next_cut_start = start
        activation = QueryAckMessage(
            sender=ROOT_SENDER,
            window=Window(start, start + group.length_ms),
            group_id=group.group_id,
            accepted=True,
        )
        out: Outgoing = [
            (local_id, activation) for local_id in self.local_ids
        ]
        for record in self.registry.queries_of(group.group_id):
            record.horizon_start = start
            out.append(self._ack(record, group))
        self._set_gauges()
        return out

    def _on_synopsis(self, message: SynopsisMessage) -> Outgoing:
        group = self.registry.group(message.group_id)
        if group is None:
            return []  # deregistered while the synopsis was in flight
        state = self._cuts.setdefault(
            (message.group_id, message.window), _CutState()
        )
        state.synopses[message.sender] = tuple(message.synopses)
        state.sizes[message.sender] = message.local_window_size
        if set(state.synopses) != set(self.local_ids):
            return []
        return self._identify(group, message.window, state)

    def _identify(
        self, group: QueryGroup, window: Window, state: _CutState
    ) -> Outgoing:
        # Window completions arrive in order, so this is the horizon for
        # queries joining the group after this point.
        group.next_cut_start = window.start + group.step_ms
        snapshot = tuple(
            record
            for record in self.registry.queries_of(group.group_id)
            if record.horizon_start is not None
            and record.horizon_start <= window.start
        )
        total = sum(state.sizes.values())
        key = (group.group_id, window)
        if total == 0 or not snapshot:
            # Nothing to cut (or nobody to serve): release the locals with
            # empty requests and answer whoever is snapshotted with the
            # canonical empty-window result.
            del self._cuts[key]
            out: Outgoing = [
                (
                    local_id,
                    CandidateRequestMessage(
                        sender=ROOT_SENDER,
                        window=window,
                        group_id=group.group_id,
                    ),
                )
                for local_id in self.local_ids
            ]
            if total == 0:
                now = self.clock()
                for record in snapshot:
                    out.append(self._result(record, group, window, 0.0, 0, 0))
                    self._record_result_span(record, group, window, now)
            return out
        qs = sorted({record.spec.q for record in snapshot})
        start_time = self.clock()
        span_id = self.tracer.begin(
            "query_identification",
            ROOT_SENDER,
            start_time,
            window=window,
            group=group.group_id,
            queries=len(snapshot),
            query_ids=",".join(str(r.query_id) for r in snapshot),
        )
        plan = identify_multi(state.synopses, state.sizes, qs)
        self.tracer.end(
            span_id, self.clock(), candidate_events=plan.candidate_events
        )
        self.identification_cuts += 1
        if self.tracer.enabled:
            self.tracer.registry.counter(
                "query_identifications_total",
                "Shared identification cuts run by the query plane.",
            ).inc()
        state.snapshot = tuple(record.query_id for record in snapshot)
        state.cuts = plan.cuts
        state.total = total
        state.expected_runs = sum(
            len(indices) for indices in plan.requests.values()
        )
        # Every local gets a request — an empty one doubles as the release
        # for its pending window state.
        return [
            (
                local_id,
                CandidateRequestMessage(
                    sender=ROOT_SENDER,
                    window=window,
                    group_id=group.group_id,
                    slice_indices=plan.requests.get(local_id, ()),
                ),
            )
            for local_id in self.local_ids
        ]

    def _on_candidates(self, message: CandidateEventsMessage) -> Outgoing:
        state = self._cuts.get((message.group_id, message.window))
        if state is None:
            return []  # group torn down while the fetch was in flight
        state.runs[(message.sender, message.slice_index)] = tuple(
            message.events
        )
        if len(state.runs) < state.expected_runs:
            return []
        group = self.registry.group(message.group_id)
        del self._cuts[(message.group_id, message.window)]
        if group is None:
            return []
        return self._calculate(group, message.window, state)

    def _calculate(
        self, group: QueryGroup, window: Window, state: _CutState
    ) -> Outgoing:
        start_time = self.clock()
        span_id = self.tracer.begin(
            "query_calculation",
            ROOT_SENDER,
            start_time,
            window=window,
            group=group.group_id,
            queries=len(state.snapshot),
            query_ids=",".join(str(qid) for qid in state.snapshot),
        )
        out: Outgoing = []
        for query_id in state.snapshot:
            record = self.registry.get(query_id)
            if record is None:
                continue  # deregistered between identify and calculate
            cut = state.cuts[record.spec.q]
            runs = [
                state.runs[synopsis.slice_id] for synopsis in cut.candidates
            ]
            located = calculate_quantile(cut, runs)
            out.append(
                self._result(
                    record, group, window, located.value, state.total,
                    cut.rank,
                )
            )
            self._record_result_span(record, group, window, self.clock())
        self.tracer.end(span_id, self.clock(), results=len(out))
        return out

    # -- results and telemetry ------------------------------------------

    def _result(
        self,
        record: QueryRecord,
        group: QueryGroup,
        window: Window,
        value: float,
        total: int,
        rank: int,
    ) -> tuple[int, Message]:
        record.results_served += 1
        self.results_served += 1
        if self.tracer.enabled:
            self.tracer.registry.counter(
                "query_results_served",
                "Per-query results shipped to driver clients.",
            ).inc()
        message = QueryResultMessage(
            sender=ROOT_SENDER,
            window=window,
            group_id=group.group_id,
            query_id=record.query_id,
            value=value,
            global_window_size=total,
            rank=rank,
        )
        if self.durable:
            # Results reach durable clients only through the log: the
            # hosting server's per-connection writer drains it in
            # order, which is what makes the resume cursor arithmetic
            # exact (no live send can jump the replay queue).
            self._logs.setdefault(record.client_id, _ClientLog()).append(
                message
            )
        return (record.client_id, message)

    def _record_result_span(
        self,
        record: QueryRecord,
        group: QueryGroup,
        window: Window,
        now: float,
    ) -> None:
        if self.tracer.enabled:
            self.tracer.record(
                "query_result",
                ROOT_SENDER,
                now,
                now,
                window=window,
                group=group.group_id,
                query=record.query_id,
                q=record.spec.q,
            )

    def _set_gauges(self) -> None:
        if self.tracer.enabled:
            self.tracer.registry.gauge(
                "active_queries",
                "Registered queries whose group has activated.",
            ).set(self.registry.active_queries)
