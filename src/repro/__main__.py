"""Command-line interface for the Dema reproduction.

Usage::

    python -m repro info                 # package and system inventory
    python -m repro demo                 # 30-second guided demonstration
    python -m repro quantile --q 0.9 ... # one decentralized quantile
    python -m repro experiments fig5a    # regenerate paper figures
    python -m repro trace quickstart     # record a traced scenario
    python -m repro report run.jsonl     # per-phase latency/byte breakdown
    python -m repro live --rate 20000    # live asyncio cluster over TCP
    python -m repro query --queries 8    # live multi-query plane, graded
    python -m repro mesh --shards 4 --relay-fanin 8 --locals 100  # scale-out
    python -m repro fleet                # fleet-telemetry smoke + BENCH_fleet
    python -m repro chaos --scenario crash-reconnect   # fault injection
    python -m repro top --port 9470      # watch a serving cluster live
    python -m repro top --mesh           # fleet view of a serving mesh
"""

from __future__ import annotations

import argparse
import random
import sys


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.baselines.base import SYSTEM_NAMES
    from repro.bench.workloads import EXPERIMENTS

    print(f"repro {repro.__version__} — Dema (EDBT 2025) reproduction")
    print()
    print("systems   :", ", ".join(SYSTEM_NAMES))
    print("experiments:")
    for name, spec in EXPERIMENTS.items():
        print(f"  {name:<24} {spec.figure:<16} {spec.title}")
    print()
    print("run `python -m repro demo` for a quick demonstration,")
    print("`python -m repro experiments --all` to regenerate every figure.")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (
        DemaEngine,
        QuantileQuery,
        TopologyConfig,
        dema_quantile,
        exact_quantile,
        make_events,
    )
    from repro.bench.generator import GeneratorConfig, workload
    from repro.bench.reporting import format_bytes

    rng = random.Random(args.seed)
    print("1. In-memory: exact median over three nodes' data")
    windows = {
        node_id: make_events(
            [rng.gauss(20 * node_id, 5) for _ in range(2_000)],
            node_id=node_id,
        )
        for node_id in (1, 2, 3)
    }
    result = dema_quantile(windows, q=0.5, gamma=100)
    all_values = [e.value for events in windows.values() for e in events]
    assert result.value == exact_quantile(all_values, 0.5)
    print(f"   median = {result.value:.3f} (bit-exact), "
          f"{result.transfer_events} of {result.global_window_size} events moved")
    print()

    print("2. Simulated deployment: continuous medians, adaptive γ")
    query = QuantileQuery(q=0.5, gamma=2, adaptive=True)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
    streams = workload(
        [1, 2],
        GeneratorConfig(event_rate=2_000.0, duration_s=4.0, seed=args.seed),
    )
    report = engine.run(streams)
    for outcome in report.outcomes:
        print(
            f"   window [{outcome.window.start / 1000:.0f}s,"
            f"{outcome.window.end / 1000:.0f}s): median={outcome.value:8.3f}  "
            f"γ={outcome.gamma_used:<5d} candidates={outcome.candidate_events}"
        )
    print(f"   network: {format_bytes(report.network.total_bytes)} "
          f"(raw forwarding would be "
          f"{format_bytes(report.events_ingested * 16)})")
    return 0


def _cmd_quantile(args: argparse.Namespace) -> int:
    from repro import dema_quantile, make_events

    rng = random.Random(args.seed)
    windows = {
        node_id: make_events(
            [rng.gauss(50.0, 15.0) for _ in range(args.events_per_node)],
            node_id=node_id,
        )
        for node_id in range(1, args.nodes + 1)
    }
    result = dema_quantile(windows, q=args.q, gamma=args.gamma)
    print(f"q={args.q} over {args.nodes} nodes × "
          f"{args.events_per_node} events (γ={args.gamma})")
    print(f"value            : {result.value:.6f}")
    print(f"rank             : {result.rank} / {result.global_window_size}")
    print(f"candidate slices : {result.candidate_slices}")
    print(f"events moved     : {result.transfer_events} "
          f"({result.transfer_events / result.global_window_size:.2%})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.sweep import SweepSpec, run_sweep

    def parse_value(raw: str):
        try:
            return int(raw)
        except ValueError:
            return float(raw)

    spec = SweepSpec(
        parameter=args.parameter,
        values=tuple(parse_value(raw) for raw in args.values.split(",")),
        metric=args.metric,
        systems=tuple(args.systems.split(",")),
        n_local_nodes=args.nodes,
        gamma=args.gamma,
        q=args.q,
        event_rate=args.event_rate,
    )
    result = run_sweep(spec)
    print(result.to_table())
    if args.csv is not None:
        with open(args.csv, "w") as handle:
            handle.write(result.to_csv())
        print(f"wrote {args.csv}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        trace_records,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )
    from repro.obs.report import format_report
    from repro.obs.scenarios import SCENARIOS, run_scenario

    if args.list:
        for name, (description, _) in SCENARIOS.items():
            print(f"{name:<12} {description}")
        return 0
    result = run_scenario(args.scenario, seed=args.seed)
    print(f"scenario {result.name}: {result.description}")
    output = args.output or f"{result.name}.trace.jsonl"
    n_records = write_jsonl(output, result.tracer)
    print(f"wrote {output} ({n_records} records)")
    if args.chrome is not None:
        n_events = write_chrome_trace(args.chrome, result.tracer)
        print(f"wrote {args.chrome} ({n_events} trace events; "
              "open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics is not None:
        write_prometheus(args.metrics, result.tracer)
        print(f"wrote {args.metrics}")
    if args.report:
        print()
        print(format_report(trace_records(result.tracer)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs.export import read_jsonl
    from repro.obs.report import format_report

    try:
        records = read_jsonl(args.trace)
    except FileNotFoundError:
        print(f"repro report: trace file not found: {args.trace}",
              file=sys.stderr)
        return 2
    except IsADirectoryError:
        print(f"repro report: {args.trace} is a directory, not a trace file",
              file=sys.stderr)
        return 2
    except (ConfigurationError, UnicodeDecodeError) as exc:
        print(f"repro report: {args.trace} is not a valid JSONL trace: {exc}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro report: cannot read {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    print(format_report(records))
    return 0


def _telemetry_from_args(args: argparse.Namespace):
    """Build a TelemetryConfig from the shared live/chaos CLI flags."""
    if args.telemetry_port is None and args.flight_recorder is None:
        return None
    from repro.obs.live.config import TelemetryConfig

    def announce(port: int) -> None:
        print(
            f"telemetry endpoint: http://127.0.0.1:{port}/metrics "
            f"(watch with: python -m repro top --port {port})",
            file=sys.stderr,
        )

    return TelemetryConfig(
        sample_rate=args.trace_sample,
        http_port=args.telemetry_port,
        flight_recorder_path=args.flight_recorder,
        announce=announce if args.telemetry_port is not None else None,
    )


def _print_telemetry(telemetry: dict) -> None:
    if not telemetry:
        return
    parts = [f"{telemetry.get('traced_live_spans', 0)} live spans traced"]
    if telemetry.get("http_port") is not None:
        parts.append(f"scraped on port {telemetry['http_port']}")
    if telemetry.get("flight_recorder"):
        state = "dumped" if telemetry.get("flight_recorder_dumped") else "armed"
        parts.append(f"flight recorder {state}: {telemetry['flight_recorder']}")
    print(f"telemetry: {', '.join(parts)}")


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.bench.live import (
        DEFAULT_BENCH_PATH,
        live_benchmark,
        write_live_bench,
    )
    from repro.bench.reporting import format_bytes

    if args.locals < 1:
        print(
            f"error: --n-locals must be at least 1, got {args.locals}",
            file=sys.stderr,
        )
        return 2
    if args.streams < 1:
        print(
            "error: --streams-per-local must be at least 1, "
            f"got {args.streams}",
            file=sys.stderr,
        )
        return 2

    if args.uvloop:
        # uvloop is an optional accelerator, never a requirement: when the
        # module is absent the run proceeds on stock asyncio unchanged.
        try:
            import uvloop
        except ImportError:
            print(
                "warning: --uvloop requested but uvloop is not installed; "
                "continuing on the default asyncio event loop",
                file=sys.stderr,
            )
        else:
            uvloop.install()

    config, report = live_benchmark(
        n_locals=args.locals,
        streams_per_local=args.streams,
        rate=args.rate,
        duration_s=args.duration,
        transport=args.transport,
        time_scale=0.0 if args.fast else args.time_scale,
        gamma=args.gamma,
        q=args.q,
        seed=args.seed,
        telemetry=_telemetry_from_args(args),
        columnar=not args.objects,
    )
    completed = [o for o in report.outcomes if o.value is not None]
    print(
        f"live cluster over {config.transport}: 1 root, "
        f"{config.n_locals} locals, "
        f"{config.n_locals * config.streams_per_local} streams"
    )
    print(
        f"replayed {report.events_sent} events in "
        f"{report.wall_seconds:.3f}s wall "
        f"({report.events_per_second:,.0f} events/s)"
    )
    for outcome in sorted(report.outcomes, key=lambda o: o.window):
        if outcome.value is None:
            continue
        print(
            f"  window [{outcome.window.start / 1000:.0f}s,"
            f"{outcome.window.end / 1000:.0f}s): "
            f"q{args.q:g}={outcome.value:10.4f}  "
            f"n={outcome.global_window_size:<7d} "
            f"candidates={outcome.candidate_events}"
        )
    stats = report.seal_to_result
    if stats.count:
        print(
            f"seal→result latency: p50 {stats.p50 * 1e3:.2f} ms  "
            f"p95 {stats.p95 * 1e3:.2f} ms  max {stats.max * 1e3:.2f} ms"
        )
    print(
        f"on the wire: {format_bytes(report.total_bytes)} "
        f"({', '.join(f'{k} {format_bytes(v)}' for k, v in sorted(report.bytes_by_layer.items()))})"
    )
    print(f"windows: {len(completed)}/{report.windows} with results")
    _print_telemetry(report.telemetry)
    if args.bench:
        path = args.bench_output or DEFAULT_BENCH_PATH
        write_live_bench(path, config, report, seed=args.seed)
        print(f"wrote {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.bench.queries import (
        DEFAULT_BENCH_PATH,
        queries_benchmark,
        write_queries_bench,
    )
    from repro.bench.reporting import format_bytes

    if args.smoke:
        # CI mode: 8 mixed queries over 3 keys on the memory transport,
        # churning half of them mid-run, then grading every result.
        args.queries, args.keys = 8, 3
        args.transport = "memory"
        args.churn = True
        if args.time_scale <= 0:
            args.time_scale = 0.3
        args.bench = True
    report, artifact = queries_benchmark(
        n_queries=args.queries,
        n_keys=args.keys,
        n_locals=args.locals,
        streams_per_local=args.streams,
        rate=args.rate,
        duration_s=args.duration,
        transport=args.transport,
        time_scale=args.time_scale,
        churn=args.churn,
        seed=args.seed,
        gamma=args.gamma,
        window_ms=args.window_ms,
    )
    print(
        f"multi-query plane over {args.transport}: "
        f"{report.n_registered} queries registered "
        f"({report.n_deregistered} deregistered mid-run), "
        f"{report.groups} shared-cut groups"
    )
    print(
        f"served {report.results_served} results "
        f"({report.queries_per_second:,.1f} results/s), "
        f"graded {report.results_graded} against the oracle"
    )
    print(
        f"identification cuts: {report.identification_cuts} "
        f"({report.duplicate_cuts} duplicated per (group, window))"
    )
    amortization = artifact["amortization"]
    independent = artifact["independent_runs"]
    print(
        f"bytes: shared {format_bytes(report.live.total_bytes)} vs "
        f"{independent['runs']} independent runs "
        f"{format_bytes(independent['total_bytes'])} "
        f"(ratio {amortization['total_bytes_ratio']}, aggregation-layer "
        f"ratio {amortization['aggregation_bytes_ratio']})"
    )
    if report.nacks:
        for nack in report.nacks:
            print(f"  nack: {nack}")
    if args.bench:
        path = args.bench_output or DEFAULT_BENCH_PATH
        write_queries_bench(path, artifact)
        print(f"wrote {path}")
    failed = False
    if report.mismatches:
        for mismatch in report.mismatches:
            print(f"MISMATCH: {mismatch}")
        failed = True
    if report.duplicate_cuts:
        print("DUPLICATE CUTS: the shared-cut invariant was violated")
        failed = True
    if independent["mismatches"]:
        print(f"MISMATCH: {independent['mismatches']} grading failures "
              "in the independent baseline runs")
        failed = True
    if failed:
        return 1
    print("all served results bit-identical to the single-query oracle")
    return 0


def _parse_membership(joins: list[str], leaves: list[str]):
    """Parse repeated ``LOCAL@MS`` membership flags into events."""
    from repro.mesh import MembershipEvent

    events = []
    for kind, specs in (("join", joins), ("leave", leaves)):
        for spec in specs:
            local_raw, _, at_raw = spec.partition("@")
            try:
                local_id, at_ms = int(local_raw), int(at_raw)
            except ValueError:
                raise SystemExit(
                    f"error: --{kind} expects LOCAL@MS "
                    f"(e.g. 5@2000), got {spec!r}"
                )
            events.append(
                MembershipEvent(at_ms=at_ms, local_id=local_id, kind=kind)
            )
    return tuple(sorted(events, key=lambda e: (e.at_ms, e.local_id)))


def _mesh_smoke(args: argparse.Namespace) -> int:
    """CI gate: elastic relay scenario graded, then the scale curve."""
    from repro.bench.generator import GeneratorConfig, workload
    from repro.bench.scale import DEFAULT_SCALE_PATH, write_scale_bench
    from repro.core.query import QuantileQuery
    from repro.errors import HarnessError
    from repro.mesh import (
        MembershipEvent,
        MeshConfig,
        classify_outcomes,
        mesh_oracle,
        run_mesh,
    )

    query = QuantileQuery(q=args.q, gamma=args.gamma)
    config = MeshConfig(
        n_locals=4,
        streams_per_local=2,
        n_shards=2,
        relay_fanin=2,
        query=query,
        transport="memory",
        membership=(
            MembershipEvent(at_ms=2_000, local_id=5, kind="join"),
            MembershipEvent(at_ms=3_000, local_id=2, kind="leave"),
        ),
    )
    streams = workload(
        [1, 2, 3, 4, 5],
        GeneratorConfig(event_rate=120.0, duration_s=4.0, seed=args.seed),
    )
    report = run_mesh(config, streams)
    classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
    print(
        "elastic smoke: 4+1 locals, 2 shards, relay fan-in 2, "
        "join 5@2s, leave 2@3s"
    )
    print(
        f"  windows: {classes['recovered']} recovered, "
        f"{classes['degraded']} degraded, {classes['lost']} lost, "
        f"{classes['mismatch']} mismatched; "
        f"members now {report.members}"
    )
    if (
        classes["mismatch"]
        or classes["lost"]
        or classes["degraded"]
        or not classes["recovered"]
    ):
        print("SMOKE FAILED: elastic scenario is not bit-identical to "
              "the single-root oracle")
        return 1

    path = args.bench_output or DEFAULT_SCALE_PATH
    try:
        result = write_scale_bench(
            path,
            q=args.q,
            gamma=args.gamma,
            seed=args.seed,
        )
    except HarnessError as exc:
        print(f"SMOKE FAILED: {exc}")
        return 1
    for point in result["curve"]:
        relay = point["relay"]
        print(
            f"  {point['n_locals']:>4} locals: "
            f"{relay['events_per_second']:>12,.0f} events/s relayed, "
            f"frame savings {point['relay_frame_savings']:.0%}, "
            f"ingress savings {point['relay_ingress_savings']:.1%}"
        )
    print(f"wrote {path}")
    print("all mesh runs bit-identical to the single-root oracle")
    return 0


def _cmd_mesh(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_bytes

    if args.smoke:
        return _mesh_smoke(args)

    from repro.bench.generator import GeneratorConfig, workload
    from repro.bench.scale import DEFAULT_SCALE_PATH, write_scale_bench
    from repro.core.query import QuantileQuery
    from repro.errors import ConfigurationError, HarnessError
    from repro.mesh import (
        MeshConfig,
        classify_outcomes,
        mesh_oracle,
        run_mesh,
    )

    membership = _parse_membership(args.join, args.leave)
    joiners = [e.local_id for e in membership if e.kind == "join"]
    try:
        config = MeshConfig(
            n_locals=args.locals,
            streams_per_local=args.streams,
            n_shards=args.shards,
            relay_fanin=args.relay_fanin,
            query=QuantileQuery(q=args.q, gamma=args.gamma),
            transport=args.transport,
            time_scale=args.time_scale,
            membership=membership,
            telemetry=_telemetry_from_args(args),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    streams = workload(
        list(range(1, args.locals + 1)) + joiners,
        GeneratorConfig(
            event_rate=args.rate, duration_s=args.duration, seed=args.seed
        ),
    )
    report = run_mesh(config, streams)
    classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)

    tier = (
        f"relay fan-in {config.relay_fanin}" if config.relay_fanin
        else "flat (no relay tier)"
    )
    print(
        f"mesh over {config.transport}: {config.n_shards} root shards, "
        f"{tier}, {config.n_locals} locals × "
        f"{config.streams_per_local} streams"
    )
    print(
        f"replayed {report.events_sent} events in "
        f"{report.wall_seconds:.3f}s wall "
        f"({report.events_per_second:,.0f} events/s)"
    )
    for window, outcome in sorted(report.outcome_by_window().items()):
        if outcome.value is None:
            continue
        print(
            f"  window [{window.start / 1000:.0f}s,"
            f"{window.end / 1000:.0f}s): "
            f"q{args.q:g}={outcome.value:10.4f}  "
            f"n={outcome.global_window_size:<7d}"
        )
    if membership:
        print(
            f"membership: {len(joiners)} joins, "
            f"{len(membership) - len(joiners)} leaves; "
            f"members now {report.members}, "
            f"shard epochs {report.membership_epochs}"
        )
    stats = report.seal_to_result
    if stats.count:
        print(
            f"seal→result latency: p50 {stats.p50 * 1e3:.2f} ms  "
            f"p95 {stats.p95 * 1e3:.2f} ms  max {stats.max * 1e3:.2f} ms"
        )
    print(
        f"on the wire: {format_bytes(report.total_bytes)} "
        f"({', '.join(f'{k} {format_bytes(v)}' for k, v in sorted(report.bytes_by_layer.items()))})"
    )
    print(
        f"root ingress: {format_bytes(report.root_ingress_bytes)}"
        + (
            f" ({report.relay_frames_combined} relay-combined frames, "
            f"{report.relay_sections_combined} sections)"
            if config.relay_fanin
            else ""
        )
    )
    print(
        f"windows: {classes['recovered']} recovered, "
        f"{classes['degraded']} degraded, {classes['lost']} lost, "
        f"{classes['mismatch']} mismatched (of {report.windows})"
    )
    _print_telemetry(report.telemetry)
    if report.telemetry.get("fleet"):
        fleet = report.telemetry["fleet"]
        print(
            f"fleet: {fleet['frames']} telemetry frames "
            f"({fleet['bytes']} bytes), {fleet['digest_count']} digests "
            f"from {len(fleet['senders'])} nodes"
        )
    if args.bench:
        path = args.bench_output or DEFAULT_SCALE_PATH
        try:
            write_scale_bench(
                path,
                streams_per_local=args.streams,
                n_shards=args.shards,
                relay_fanin=args.relay_fanin or 8,
                event_rate=int(args.rate),
                duration_s=int(args.duration),
                q=args.q,
                gamma=args.gamma,
                seed=args.seed,
                transport=args.transport,
            )
        except HarnessError as exc:
            print(f"BENCH FAILED: {exc}")
            return 1
        print(f"wrote {path}")
    if classes["mismatch"]:
        print("MISMATCHED WINDOWS: values diverged at full completeness "
              "— protocol bug")
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.runner import run_chaos
    from repro.faults.scenarios import SCENARIOS

    if args.list:
        for name, scenario in SCENARIOS.items():
            print(f"{name:<16} {scenario.description}")
        return 0
    report = run_chaos(
        args.scenario,
        mode=args.mode,
        seed=args.seed,
        n_locals=args.locals,
        streams_per_local=args.streams,
        rate=args.rate,
        duration_s=args.duration,
        time_scale=args.time_scale,
        transport=args.transport,
        gamma=args.gamma,
        q=args.q,
        telemetry=_telemetry_from_args(args),
        shards=args.shards,
        relay_fanin=args.relay_fanin,
    )
    print(f"chaos scenario {report.scenario!r} on the {report.mode} "
          f"substrate (seed {report.seed})")
    print("fault events applied:")
    for line in report.applied:
        print(f"  {line}")
    if not report.applied:
        print("  (none)")
    print()
    for window in sorted(report.classes):
        print(f"  window [{window.start / 1000:.0f}s,"
              f"{window.end / 1000:.0f}s): {report.classes[window]}")
    print()
    print(f"windows  : {report.recovered} recovered, "
          f"{report.degraded} degraded, {report.lost} lost, "
          f"{report.mismatched} mismatched (of {report.windows})")
    print(f"tolerance: {report.reconnects} reconnects, "
          f"{report.heartbeat_misses} heartbeat misses, "
          f"{report.locals_declared_dead} locals declared dead")
    if report.shards:
        print(f"failover : {report.shard_failovers} shard failovers, "
              f"{report.windows_adopted} windows adopted, "
              f"{report.relay_frames_replayed} relay frames replayed "
              f"({report.shards} shards, fan-in {report.relay_fanin})")
    if report.driver_reconnects:
        print(f"driver   : {report.driver_reconnects} reconnects, "
              "results replayed from the acked cursor")
    print(f"wall     : {report.wall_seconds:.2f}s")
    _print_telemetry(report.telemetry)
    if report.mismatched:
        print("MISMATCHED WINDOWS: values diverged at full completeness "
              "— protocol bug")
        return 1
    if report.lost:
        print("LOST WINDOWS: some windows were never answered")
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import hotpath

    config = hotpath.SMOKE if args.smoke else hotpath.FULL
    mode = "smoke" if args.smoke else "full"
    print(f"hot-path benchmarks ({mode} mode)")
    current = hotpath.run_hotpath(
        config,
        include_live=not args.no_live,
        progress=lambda name, rate: print(f"  {name:32s} {rate:>14,.2f}"),
    )

    # Per-mode baselines: a smoke run is compared against (and gated on)
    # the committed *smoke* numbers only, and both baselines are carried
    # into the rewritten artifact untouched — a smoke run must never
    # clobber or be judged by the full-mode baseline.
    artifact = hotpath.load_artifact(args.baseline)
    if artifact is None:
        baselines: dict[str, dict[str, float]] = {}
        print(f"no baseline artifact at {args.baseline}; "
              "writing current numbers without a comparison")
    else:
        baselines = {
            "baseline": artifact.get("baseline") or {},
            "baseline_smoke": artifact.get("baseline_smoke") or {},
        }
    baseline = baselines.get(hotpath.baseline_key(mode)) or {}

    hotpath.write_hotpath(
        args.output, config, current, baselines, mode=mode,
    )
    print(f"wrote {args.output}")
    for name, rate in current.items():
        reference = baseline.get(name)
        if reference:
            print(f"  {name:32s} {rate / reference:6.2f}x baseline")

    if args.curve:
        from repro.bench import scaling

        counts = (
            scaling.SMOKE_LOCALS if args.smoke else scaling.FULL_LOCALS
        )
        print(f"throughput-vs-locals curve ({', '.join(map(str, counts))})")
        points = scaling.scaling_curve(
            locals_counts=counts,
            duration_s=1.0 if args.smoke else 3.0,
            progress=lambda n, rate: print(
                f"  {n:2d} locals {rate:>14,.0f} ev/s"
            ),
        )
        scaling.write_scaling(args.curve_output, points, mode=mode)
        print(f"wrote {args.curve_output}")

    if args.smoke:
        failures = hotpath.check_regressions(current, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print("no hot-path regressions beyond tolerance "
              f"({hotpath.REGRESSION_TOLERANCE:.0%})")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.live.top import run_top

    return run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        once=args.once,
        mesh=args.mesh,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet telemetry smoke: run a mesh, scrape /fleet mid-run, grade it.

    The CI gate behind ``repro fleet --smoke``: a telemetry-enabled mesh
    run whose ``/fleet`` endpoint is scraped *while the cluster serves*,
    asserting the scrape is valid JSON with a nonzero merged digest
    count, then grading the fleet's merged seal→result percentiles
    against the centrally-computed oracle, and finally writing the
    digest-vs-raw byte-cost artifact (BENCH_fleet.json).
    """
    import asyncio as _asyncio
    import queue as _queue

    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.query import QuantileQuery
    from repro.mesh import MeshConfig, classify_outcomes, mesh_oracle, run_mesh
    from repro.obs.fleet import DEFAULT_FLEET_PATH, write_fleet_bench
    from repro.obs.live.config import TelemetryConfig
    from repro.obs.live.top import fetch_json, render_fleet

    ports: "_queue.Queue[int]" = _queue.Queue()
    config = MeshConfig(
        n_locals=args.locals,
        n_shards=args.shards,
        relay_fanin=args.relay_fanin,
        query=QuantileQuery(q=args.q, gamma=args.gamma),
        # Paced replay: an unpaced mesh run saturates the event loop and
        # starves the HTTP plane, so the mid-run scrape would always lose
        # the race.  ~duration * time_scale seconds of wall clock leaves
        # the loop mostly idle between batches.
        time_scale=args.time_scale,
        telemetry=TelemetryConfig(
            http_port=0, announce=ports.put, sampler_interval_s=0.02
        ),
        timeout_s=120.0,
    )
    streams = workload(
        list(range(1, args.locals + 1)),
        GeneratorConfig(
            event_rate=args.rate, duration_s=args.duration, seed=args.seed
        ),
    )
    scraped: dict = {}

    async def scrape_mid_run(ctx) -> None:
        port = ports.get(timeout=5.0)
        # Keep scraping until the collector holds merged digests (or the
        # run ends and cancels us) — the last successful scrape wins.
        while True:
            try:
                doc = await _asyncio.to_thread(
                    fetch_json, "127.0.0.1", port, "/fleet", 2.0
                )
                scraped.clear()
                scraped.update(doc)
                if doc.get("digest_count", 0) > 0:
                    return
            except Exception:
                pass
            await _asyncio.sleep(0.02)

    report = run_mesh(config, streams, disturb=scrape_mid_run)
    classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
    final = report.telemetry["fleet"]
    mid = scraped or final
    print(
        f"fleet smoke: {config.n_locals} locals, {config.n_shards} shards, "
        f"relay fan-in {config.relay_fanin}"
    )
    print(
        f"  mid-run /fleet scrape: {mid['frames']} frames, "
        f"{mid['digest_count']} digests"
        + ("" if scraped else " (run outpaced the scraper; final view)")
    )
    print(render_fleet(final))
    failed = False
    if final["digest_count"] <= 0:
        print("SMOKE FAILED: no merged telemetry digests")
        failed = True
    if classes["mismatch"] or classes["lost"]:
        print(f"SMOKE FAILED: oracle divergence {classes}")
        failed = True
    merged = final["metrics"].get("seal_to_result_s", {})
    central = report.seal_to_result
    if central.count and merged.get("count"):
        # The shard digests are built from exactly the samples the
        # central LatencyStats aggregates, so the comparison is only
        # bounded by t-digest interpolation.
        for name, reference in (("p50", central.p50), ("p95", central.p95)):
            got = merged[name]
            bound = max(0.05 * reference, 1e-4)
            print(
                f"  seal→result {name}: fleet {got * 1e3:.3f} ms vs "
                f"central {reference * 1e3:.3f} ms"
            )
            if abs(got - reference) > bound:
                print(
                    f"SMOKE FAILED: fleet {name} diverges from the "
                    f"central oracle by more than {bound * 1e3:.3f} ms"
                )
                failed = True
    elif central.count:
        print("SMOKE FAILED: fleet view has no seal→result digest")
        failed = True
    path = args.bench_output or DEFAULT_FLEET_PATH
    artifact = write_fleet_bench(path, seed=args.seed)
    worst = max(
        point["digest_fraction_of_raw"] for point in artifact["curve"]
    )
    for point in artifact["curve"]:
        print(
            f"  {point['n_locals']:>4} locals: digest uplink "
            f"{point['digest_uplink_bytes']:>9} B vs raw "
            f"{point['raw_sample_bytes']:>11} B "
            f"({point['digest_fraction_of_raw']:.1%})"
        )
    print(f"wrote {path}")
    if worst > 0.10:
        print(
            f"SMOKE FAILED: digest uplink costs {worst:.1%} of raw-sample "
            "shipping at some fleet size (bound: 10%)"
        )
        failed = True
    if failed:
        return 1
    print("fleet telemetry plane healthy; digests within the byte budget")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import runner

    forwarded: list[str] = list(args.figures)
    if args.all:
        forwarded.append("--all")
    if args.quick:
        forwarded.append("--quick")
    return runner.main(forwarded)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Shared live-telemetry flags for the ``live`` and ``chaos`` commands."""
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics and /timeline on this port during the run "
             "(0 = ephemeral; the bound port is announced on stderr)",
    )
    parser.add_argument(
        "--flight-recorder", default=None, metavar="PATH",
        help="arm a flight recorder that dumps the last spans/events to "
             "PATH (JSONL) if the run crashes",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="head-based trace sampling rate in [0, 1] (default 1.0)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment inventory")

    demo = sub.add_parser("demo", help="guided demonstration")
    demo.add_argument("--seed", type=int, default=42)

    quantile = sub.add_parser("quantile", help="one decentralized quantile")
    quantile.add_argument("--q", type=float, default=0.5)
    quantile.add_argument("--gamma", type=int, default=100)
    quantile.add_argument("--nodes", type=int, default=3)
    quantile.add_argument("--events-per-node", type=int, default=10_000)
    quantile.add_argument("--seed", type=int, default=42)

    experiments = sub.add_parser(
        "experiments", help="regenerate paper figures"
    )
    experiments.add_argument("figures", nargs="*")
    experiments.add_argument("--all", action="store_true")
    experiments.add_argument("--quick", action="store_true")

    trace = sub.add_parser(
        "trace", help="run a named scenario under the recording tracer"
    )
    trace.add_argument(
        "scenario", nargs="?", default="quickstart",
        help="scenario name (see --list); default: quickstart",
    )
    trace.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="JSONL output path (default <scenario>.trace.jsonl)")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also write a Chrome trace_event JSON file")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="also write Prometheus-format metrics")
    trace.add_argument("--report", action="store_true",
                       help="print the per-phase breakdown after tracing")

    report = sub.add_parser(
        "report", help="per-phase latency/byte breakdown of a JSONL trace"
    )
    report.add_argument("trace", help="path to a .trace.jsonl file")

    live = sub.add_parser(
        "live", help="run a live asyncio cluster (real wire protocol)"
    )
    live.add_argument("--locals", "--n-locals", dest="locals",
                      type=int, default=2,
                      help="local (edge) node count")
    live.add_argument("--streams", "--streams-per-local", dest="streams",
                      type=int, default=2,
                      help="stream servers per local node")
    live.add_argument("--rate", type=float, default=20_000.0,
                      help="target aggregate events/second")
    live.add_argument("--duration", type=float, default=3.0,
                      help="workload length in event-time seconds")
    live.add_argument("--transport", default="tcp",
                      choices=["tcp", "memory"])
    live.add_argument("--time-scale", type=float, default=1.0,
                      help="wall seconds per event-time second (1.0 = "
                           "real time)")
    live.add_argument("--fast", action="store_true",
                      help="replay unpaced, as fast as backpressure allows")
    live.add_argument("--gamma", type=int, default=100)
    live.add_argument("--q", type=float, default=0.5)
    live.add_argument("--seed", type=int, default=42)
    live.add_argument("--bench", action="store_true",
                      help="write the BENCH_live.json artifact")
    live.add_argument("--bench-output", default=None, metavar="PATH")
    live.add_argument("--objects", action="store_true",
                      help="replay per-event objects instead of columnar "
                           "batches (bit-identical results, slower)")
    live.add_argument("--uvloop", action="store_true",
                      help="install uvloop as the event-loop policy if "
                           "available (falls back to asyncio with a "
                           "warning when it is not)")
    _add_telemetry_flags(live)

    query = sub.add_parser(
        "query", help="live multi-query plane with runtime registration"
    )
    query.add_argument("--queries", type=int, default=8,
                       help="concurrent queries to register at runtime")
    query.add_argument("--keys", type=int, default=3,
                       help="distinct key selectors to cycle over")
    query.add_argument("--locals", type=int, default=3)
    query.add_argument("--streams", type=int, default=2,
                       help="stream servers per local node")
    query.add_argument("--rate", type=float, default=400.0,
                       help="target aggregate events/second")
    query.add_argument("--duration", type=float, default=4.0,
                       help="workload length in event-time seconds")
    query.add_argument("--transport", default="memory",
                       choices=["tcp", "memory"])
    query.add_argument("--time-scale", type=float, default=0.0,
                       help="wall seconds per event-time second "
                            "(0 = replay unpaced; churn needs > 0)")
    query.add_argument("--churn", action="store_true",
                       help="register joiners and deregister half the "
                            "queries mid-run (needs --time-scale > 0)")
    query.add_argument("--window-ms", type=int, default=1000,
                       help="window length in event-time milliseconds")
    query.add_argument("--gamma", type=int, default=32)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument("--smoke", action="store_true",
                       help="CI mode: 8 churning queries over 3 keys on "
                            "the memory transport, bench artifact on, "
                            "nonzero exit on any oracle mismatch")
    query.add_argument("--bench", action="store_true",
                       help="write the BENCH_queries.json artifact")
    query.add_argument("--bench-output", default=None, metavar="PATH")

    mesh = sub.add_parser(
        "mesh", help="scale-out mesh: sharded roots, relays, elastic "
                     "membership"
    )
    mesh.add_argument("--locals", "--n-locals", dest="locals",
                      type=int, default=8,
                      help="initial local (edge) node count")
    mesh.add_argument("--streams", "--streams-per-local", dest="streams",
                      type=int, default=1,
                      help="stream servers per local node")
    mesh.add_argument("--shards", type=int, default=2,
                      help="root shard count (window-partitioned)")
    mesh.add_argument("--relay-fanin", type=int, default=0,
                      help="children per relay (0 = no relay tier)")
    mesh.add_argument("--rate", type=float, default=200.0,
                      help="target aggregate events/second")
    mesh.add_argument("--duration", type=float, default=4.0,
                      help="workload length in event-time seconds")
    mesh.add_argument("--transport", default="memory",
                      choices=["tcp", "memory"])
    mesh.add_argument("--time-scale", type=float, default=0.0,
                      help="wall seconds per event-time second (0 = replay "
                           "unpaced; pace the run to watch it serve)")
    mesh.add_argument("--gamma", type=int, default=10_000)
    mesh.add_argument("--q", type=float, default=0.5)
    mesh.add_argument("--seed", type=int, default=42)
    mesh.add_argument("--join", action="append", default=[],
                      metavar="LOCAL@MS",
                      help="add local LOCAL at event-time MS (a window "
                           "boundary); repeatable")
    mesh.add_argument("--leave", action="append", default=[],
                      metavar="LOCAL@MS",
                      help="retire local LOCAL at event-time MS; repeatable")
    mesh.add_argument("--smoke", action="store_true",
                      help="CI mode: graded elastic relay scenario, then "
                           "the 2..100-local scale curve with the "
                           "BENCH_scale.json artifact; nonzero exit on "
                           "any oracle divergence")
    mesh.add_argument("--bench", action="store_true",
                      help="also run the scale curve and write the "
                           "BENCH_scale.json artifact")
    mesh.add_argument("--bench-output", default=None, metavar="PATH")
    _add_telemetry_flags(mesh)

    fleet = sub.add_parser(
        "fleet", help="fleet-telemetry smoke: scrape /fleet mid-run and "
                      "grade the merged digests"
    )
    fleet.add_argument("--locals", "--n-locals", dest="locals",
                       type=int, default=16,
                       help="local (edge) node count")
    fleet.add_argument("--shards", type=int, default=2,
                       help="root shard count")
    fleet.add_argument("--relay-fanin", type=int, default=4,
                       help="children per relay (0 = no relay tier)")
    fleet.add_argument("--rate", type=float, default=300.0,
                       help="target aggregate events/second")
    fleet.add_argument("--duration", type=float, default=6.0,
                       help="workload length in event-time seconds")
    fleet.add_argument("--gamma", type=int, default=10_000)
    fleet.add_argument("--q", type=float, default=0.5)
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument("--time-scale", type=float, default=0.4,
                       help="wall seconds per event-time second; the run "
                            "must be paced so the mid-run /fleet scrape "
                            "sees a serving mesh (0 = unpaced)")
    fleet.add_argument("--bench-output", default=None, metavar="PATH",
                       help="BENCH_fleet.json output path")

    chaos = sub.add_parser(
        "chaos", help="run a cluster under a named fault scenario"
    )
    chaos.add_argument("--scenario", default="crash-reconnect",
                       help="scenario name (see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")
    chaos.add_argument("--mode", default="live", choices=["sim", "live"],
                       help="substrate: discrete-event sim or live asyncio")
    chaos.add_argument("--transport", default="memory",
                       choices=["tcp", "memory"],
                       help="live mode transport")
    chaos.add_argument("--locals", type=int, default=2)
    chaos.add_argument("--streams", type=int, default=2,
                       help="stream servers per local (live mode)")
    chaos.add_argument("--rate", type=float, default=300.0)
    chaos.add_argument("--duration", type=float, default=3.0)
    chaos.add_argument("--time-scale", type=float, default=0.3,
                       help="live mode: wall seconds per event-time second")
    chaos.add_argument("--gamma", type=int, default=64)
    chaos.add_argument("--q", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--shards", type=int, default=0,
                       help="mesh scenarios: root shard count (default 2)")
    chaos.add_argument("--relay-fanin", type=int, default=0,
                       help="mesh scenarios: relay fan-in (0 = no relays; "
                            "kill-shard-with-relay defaults to 3)")
    _add_telemetry_flags(chaos)

    top = sub.add_parser(
        "top", help="attach to a serving cluster's telemetry endpoint"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=None,
                     help="telemetry endpoint port (omit to watch a "
                          "self-contained demo cluster)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit")
    top.add_argument("--mesh", action="store_true",
                     help="scrape /fleet and render the mesh-wide fleet "
                          "view instead of /summary")

    perf = sub.add_parser(
        "perf", help="hot-path microbenchmarks and regression check"
    )
    perf.add_argument("--smoke", action="store_true",
                      help="CI mode: shrink the live benchmark and exit "
                           "nonzero on a >tolerance regression vs the "
                           "committed baseline")
    perf.add_argument("--no-live", action="store_true",
                      help="skip the end-to-end live cluster benchmark")
    perf.add_argument("-o", "--output", default="BENCH_hotpath.json",
                      metavar="PATH", help="artifact output path")
    perf.add_argument("--baseline", default="BENCH_hotpath.json",
                      metavar="PATH",
                      help="artifact holding the baseline numbers to "
                           "compare against (default: the committed "
                           "BENCH_hotpath.json)")
    perf.add_argument("--curve", action="store_true",
                      help="also measure the throughput-vs-locals "
                           "scaling curve and write its artifact")
    perf.add_argument("--curve-output", default="BENCH_scaling.json",
                      metavar="PATH",
                      help="scaling-curve artifact output path")

    sweep = sub.add_parser("sweep", help="sweep a parameter over systems")
    sweep.add_argument("--parameter", required=True,
                       choices=["gamma", "n_local_nodes", "event_rate", "q",
                                "loss_rate"])
    sweep.add_argument("--values", required=True,
                       help="comma-separated, e.g. 2,20,200")
    sweep.add_argument("--metric", default="throughput",
                       choices=["throughput", "network_bytes", "latency_p50"])
    sweep.add_argument("--systems", default="dema",
                       help="comma-separated system names")
    sweep.add_argument("--nodes", type=int, default=2)
    sweep.add_argument("--gamma", type=int, default=100)
    sweep.add_argument("--q", type=float, default=0.5)
    sweep.add_argument("--event-rate", type=float, default=2_000.0)
    sweep.add_argument("--csv", default=None, metavar="PATH")

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "quantile": _cmd_quantile,
        "experiments": _cmd_experiments,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "live": _cmd_live,
        "query": _cmd_query,
        "mesh": _cmd_mesh,
        "fleet": _cmd_fleet,
        "chaos": _cmd_chaos,
        "perf": _cmd_perf,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
