"""Typed messages with byte-exact serialized sizes.

Network cost in the evaluation is counted in bytes on the wire, so every
message type declares how large its serialized form is.  Sizes are not
estimates: each ``payload_bytes`` property mirrors, field for field, the
binary encoding in :mod:`repro.runtime.codec` (struct layouts in
:mod:`repro.runtime.wire`), and the runtime test suite asserts that
``payload_bytes == len(encode_payload(message))`` for every type.  The
simulator therefore charges exactly the bytes the live asyncio runtime
puts on a socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.runtime import wire
from repro.streaming.events import EVENT_WIRE_BYTES, Event
from repro.streaming.windows import Window

__all__ = [
    "MESSAGE_HEADER_BYTES",
    "SYNOPSIS_WIRE_BYTES",
    "Message",
    "EventBatchMessage",
    "SynopsisMessage",
    "SynopsisRequestMessage",
    "WindowReleaseMessage",
    "CandidateRequestMessage",
    "CandidateEventsMessage",
    "GammaUpdateMessage",
    "DigestMessage",
    "QDigestMessage",
    "PartialAggregateMessage",
    "SortedRunMessage",
    "WatermarkMessage",
    "ResultMessage",
    "HeartbeatMessage",
    "QueryRegisterMessage",
    "QueryAckMessage",
    "QueryResultMessage",
    "QueryDeregisterMessage",
    "JoinMessage",
    "LeaveMessage",
    "RouteUpdateMessage",
    "RelaySynopsisMessage",
    "RelayRunsMessage",
    "ShardFailoverMessage",
    "ResultAckMessage",
    "TelemetrySnapshotMessage",
    "TelemetryDigestMessage",
]

#: Fixed per-message framing overhead: u32 length prefix plus the frame
#: header (version, type tag, flags, sender, group id, window bounds).
MESSAGE_HEADER_BYTES = wire.MESSAGE_HEADER_BYTES

#: One slice synopsis: first key + last key (16 bytes each) plus count,
#: slice index, slice total and owner id as u32 each.
SYNOPSIS_WIRE_BYTES = wire.SYNOPSIS_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for everything that crosses a channel.

    ``group_id`` multiplexes concurrent query groups over the same
    channels (0 for single-query deployments); its 4 bytes are part of the
    fixed header, as are the sender id and the window bounds.
    """

    sender: int
    window: Window
    group_id: int = 0

    @property
    def payload_bytes(self) -> int:
        """Serialized payload size, excluding the fixed header."""
        return 0

    @property
    def wire_bytes(self) -> int:
        """Total serialized size on the wire."""
        return MESSAGE_HEADER_BYTES + self.payload_bytes


@dataclass(frozen=True, slots=True)
class EventBatchMessage(Message):
    """Raw events forwarded upstream (centralized aggregation)."""

    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return wire.COUNT_BYTES + len(self.events) * EVENT_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class SortedRunMessage(Message):
    """A fully sorted local window (Desis-style decentralized sorting)."""

    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return wire.COUNT_BYTES + len(self.events) * EVENT_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class SynopsisMessage(Message):
    """Dema identification step: slice synopses of one local window."""

    synopses: tuple = ()  # tuple[SliceSynopsis, ...]; typed loosely to avoid a cycle
    local_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return (
            wire.COUNT_BYTES
            + wire.U64_BYTES
            + len(self.synopses) * SYNOPSIS_WIRE_BYTES
        )


@dataclass(frozen=True, slots=True)
class CandidateRequestMessage(Message):
    """Dema calculation step: root requests candidate slices by index."""

    slice_indices: tuple[int, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return wire.COUNT_BYTES + len(self.slice_indices) * wire.U32_BYTES


@dataclass(frozen=True, slots=True)
class CandidateEventsMessage(Message):
    """Dema calculation step: the requested candidate events (pre-sorted)."""

    slice_index: int = 0
    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return (
            wire.U32_BYTES
            + wire.COUNT_BYTES
            + len(self.events) * EVENT_WIRE_BYTES
        )


@dataclass(frozen=True, slots=True)
class SynopsisRequestMessage(Message):
    """Root asks a local node to (re)send its synopsis batch for a window.

    Part of the reliability extension: sent when the root's completeness
    timeout fires before every local reported.  Pure control message — the
    window in the header says everything, so the payload is empty.
    """


@dataclass(frozen=True, slots=True)
class WindowReleaseMessage(Message):
    """Root tells a local node the window is fully answered; free its state.

    Part of the reliability extension: with retransmissions enabled, local
    nodes retain sealed windows until this acknowledgement arrives.  Pure
    control message with an empty payload.
    """


@dataclass(frozen=True, slots=True)
class GammaUpdateMessage(Message):
    """Root broadcasts a new slice factor γ for the next window."""

    gamma: int = 2

    @property
    def payload_bytes(self) -> int:
        return wire.U32_BYTES


@dataclass(frozen=True, slots=True)
class DigestMessage(Message):
    """A serialized quantile sketch (t-digest and KLL baselines).

    The payload is the sender's exact ``minimum``/``maximum`` (two f64 —
    sketches track true extremes, and tail centroid *means* sit strictly
    inside the data range, so extreme quantiles need the real bounds on
    the wire) followed by ``centroid_count`` (mean, weight) pairs of 16
    bytes each behind a u32 count.
    """

    centroids: tuple[tuple[float, float], ...] = ()
    minimum: float = 0.0
    maximum: float = 0.0

    @property
    def payload_bytes(self) -> int:
        return (
            wire.COUNT_BYTES
            + 2 * wire.F64_BYTES
            + len(self.centroids) * wire.CENTROID_WIRE_BYTES
        )


@dataclass(frozen=True, slots=True)
class PartialAggregateMessage(Message):
    """A decomposable function's partial aggregate for one local window.

    The payload is a small fixed-size state (e.g. ``(count, sum, sum_sq)``
    for variance) — the reason decomposable functions aggregate cheaply at
    the edge and non-decomposable ones need Dema.
    """

    state: tuple[float, ...] = ()
    local_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return (
            wire.COUNT_BYTES
            + wire.U64_BYTES
            + len(self.state) * wire.F64_BYTES
        )


@dataclass(frozen=True, slots=True)
class QDigestMessage(Message):
    """A serialized q-digest: ``(level, index, count)`` tree nodes."""

    nodes: tuple[tuple[int, int, int], ...] = ()
    local_count: int = 0

    @property
    def payload_bytes(self) -> int:
        return (
            wire.COUNT_BYTES
            + wire.U64_BYTES
            + len(self.nodes) * wire.QDIGEST_NODE_WIRE_BYTES
        )


@dataclass(frozen=True, slots=True)
class WatermarkMessage(Message):
    """Event-time progress announcement from a local node."""

    watermark_time: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.U64_BYTES


@dataclass(frozen=True, slots=True)
class ResultMessage(Message):
    """Final aggregate emitted by the root (for latency bookkeeping)."""

    value: float = 0.0
    global_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.F64_BYTES + wire.U64_BYTES


@dataclass(frozen=True, slots=True)
class HeartbeatMessage(Message):
    """Periodic liveness beacon from a local host to the root host.

    Part of the fault-tolerance extension: carries no operator state, only
    a monotonically increasing sequence number so the root's failure
    detector can distinguish "quiet but alive" from "gone".  The window in
    the header is a placeholder (heartbeats are not window-scoped).
    """

    sequence: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.U64_BYTES


@dataclass(frozen=True, slots=True)
class QueryRegisterMessage(Message):
    """Register (or propagate) a continuous quantile query at runtime.

    Sent client → root to register a query, and root → local (with the
    assigned ``group_id``) to propagate a new execution group.  The fixed
    part carries the query id, the quantile, the window shape (kind code,
    length, step) plus the slice factor and the freshness budget; the
    variable part is the UTF-8 key selector behind a u32 byte count.
    """

    query_id: int = 0
    q: float = 0.5
    kind: str = "tumbling"
    length_ms: int = 1000
    step_ms: int = 1000
    gamma: int = 64
    freshness_ms: int = 0
    selector: str = "all"

    @property
    def payload_bytes(self) -> int:
        return (
            wire.QUERY_REGISTER_FIXED_BYTES
            + wire.COUNT_BYTES
            + len(self.selector.encode("utf-8"))
        )


@dataclass(frozen=True, slots=True)
class QueryAckMessage(Message):
    """Acknowledge a query lifecycle transition.

    Three uses, distinguished by direction and ``group_id``: root → client
    accepts or rejects a registration (the header window carries the
    query's first guaranteed window, its *horizon*); local → root proposes
    the earliest window start the local can fully serve for a new group
    (in the header window); root → local activates a group at the agreed
    start.  ``reason`` is empty unless ``accepted`` is false.
    """

    query_id: int = 0
    accepted: bool = True
    reason: str = ""

    @property
    def payload_bytes(self) -> int:
        return (
            wire.QUERY_ACK_FIXED_BYTES
            + wire.COUNT_BYTES
            + len(self.reason.encode("utf-8"))
        )


@dataclass(frozen=True, slots=True)
class QueryResultMessage(Message):
    """One served result for one registered query and one window.

    The header window identifies the window; an empty window is served
    with ``global_window_size == 0`` (the value and rank are then
    meaningless placeholders).
    """

    query_id: int = 0
    value: float = 0.0
    global_window_size: int = 0
    rank: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.QUERY_RESULT_BYTES


@dataclass(frozen=True, slots=True)
class QueryDeregisterMessage(Message):
    """Remove a query (client → root) or a whole group (root → local).

    Client → root carries the query id with ``group_id`` 0; root → local
    carries ``query_id`` 0 and the emptied group in ``group_id``.
    """

    query_id: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.U32_BYTES


@dataclass(frozen=True, slots=True)
class JoinMessage(Message):
    """A local announces it is joining the mesh at runtime.

    Sent FIFO-first on every upstream link (before any synopsis), so by
    the time the joiner's first window data arrives, every root shard
    already counts it as a member.  ``first_window_start`` is the start
    (event-time ms) of the first grid window the joiner will fully serve;
    the membership table makes it eligible from that window on.
    """

    first_window_start: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.I64_BYTES


@dataclass(frozen=True, slots=True)
class LeaveMessage(Message):
    """A local announces a graceful departure.

    ``effective_from`` is the first grid window start (event-time ms) the
    sender will *not* serve.  Windows before it complete normally; windows
    at or past it no longer wait on the sender — departure degrades
    nothing and can never hang a window.
    """

    effective_from: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.I64_BYTES


@dataclass(frozen=True, slots=True)
class RouteUpdateMessage(Message):
    """Root shard broadcasts its membership view after a join or leave.

    ``epoch`` increments on every membership change; ``members`` is the
    shard's full current member list.  Relays and locals use it to keep
    their routing tables in step (and tests use it to assert convergence).
    """

    epoch: int = 0
    members: tuple[int, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return (
            wire.U64_BYTES
            + wire.COUNT_BYTES
            + len(self.members) * wire.U32_BYTES
        )


@dataclass(frozen=True, slots=True)
class RelaySynopsisMessage(Message):
    """Several locals' synopsis batches combined into one relay frame.

    Each section is ``(node_id, local_window_size, synopses)`` and carries
    one child's *complete, ordered* batch for the window.  The compact
    36-byte synopsis encoding drops the owner id (section header) and the
    slice index / slice total (position and length of the section), all of
    which reconstruct exactly on decode — the root explodes sections back
    into the identical per-child :class:`SynopsisMessage` frames, so the
    identification operator runs unmodified and bit-identically.

    ``section_contexts`` (one trace context or ``None`` per section, in
    section order) travels in the frame's *header extension block*
    (:data:`repro.runtime.wire.EXT_SECTION_CONTEXT`), never the payload —
    old peers skip the unknown extension entries and decode the same
    frame, and ``payload_bytes`` accounting is untouched.  It lets the
    root parent each exploded section's dispatch span on the child span
    that actually caused it, instead of truncating every mesh timeline
    at the relay boundary.
    """

    #: tuple[(node_id, local_window_size, tuple[SliceSynopsis, ...]), ...]
    sections: tuple = ()
    #: tuple[TraceContext | None, ...] aligned with ``sections`` (typed
    #: loosely to keep this module import-free of the tracing layer).
    section_contexts: tuple = ()

    @property
    def payload_bytes(self) -> int:
        return wire.COUNT_BYTES + sum(
            wire.RELAY_SYNOPSIS_SECTION_FIXED_BYTES
            + len(synopses) * wire.RELAY_SYNOPSIS_WIRE_BYTES
            for _, _, synopses in self.sections
        )


@dataclass(frozen=True, slots=True)
class RelayRunsMessage(Message):
    """Several candidate runs combined into one relay frame.

    Each section is ``(node_id, slice_index, events)`` — one child's
    pre-sorted candidate run, exactly as the child served it.  The root
    explodes sections into per-child :class:`CandidateEventsMessage`
    frames, so the calculation operator runs unmodified.

    ``section_contexts`` mirrors :class:`RelaySynopsisMessage`: per-section
    trace contexts riding the header extension block, invisible to the
    payload byte accounting and skippable by older peers.
    """

    #: tuple[(node_id, slice_index, tuple[Event, ...]), ...]
    sections: tuple = ()
    #: tuple[TraceContext | None, ...] aligned with ``sections``.
    section_contexts: tuple = ()

    @property
    def payload_bytes(self) -> int:
        return wire.COUNT_BYTES + sum(
            wire.RELAY_RUN_SECTION_FIXED_BYTES
            + len(events) * EVENT_WIRE_BYTES
            for _, _, events in self.sections
        )


@dataclass(frozen=True, slots=True)
class ShardFailoverMessage(Message):
    """A successor shard announces an epoch-versioned failover in-band.

    ``epoch`` is the failover count (strictly greater than any epoch a
    receiver has seen, or the frame is stale and dropped); ``dead``
    lists every shard index declared dead so far.  The pair fully
    determines window ownership (see
    :class:`~repro.mesh.routing.ShardMap`): receivers rebuild the map,
    reroute, and replay their retained sent-but-unreleased state to the
    successor.  Monotonic epochs double as the resurrection fence — a
    dead shard coming back cannot announce anything newer than its
    death.
    """

    epoch: int = 0
    dead: tuple[int, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return (
            wire.U64_BYTES
            + wire.COUNT_BYTES
            + len(self.dead) * wire.U32_BYTES
        )


@dataclass(frozen=True, slots=True)
class ResultAckMessage(Message):
    """A query driver acknowledges served results up to a cursor.

    ``cursor`` counts results received on this client's connection since
    registration (the same unit as the ``resume_from`` hello field for
    the ``driver`` role).  A durable root prunes its per-client result
    log below the acked cursor — the query-plane analogue of the window
    release acting as the locals' pruning horizon.
    """

    cursor: int = 0

    @property
    def payload_bytes(self) -> int:
        return wire.U64_BYTES


@dataclass(frozen=True, slots=True)
class TelemetrySnapshotMessage(Message):
    """One node's counters and gauges, piggybacked on an existing link.

    Part of the fleet telemetry plane: every node periodically ships its
    scalar vitals (frames sent, windows sealed, oldest-pending-window age,
    …) in-band to the coordinator, the way heartbeats ride the data
    links — so chaos and partition scenarios exercise the telemetry path
    automatically.  ``stats`` is a tuple of ``(name, value)`` pairs; each
    name travels as UTF-8 behind a u32 byte count, each value as one f64.
    The header window is a placeholder (snapshots are not window-scoped)
    and ``sequence`` orders snapshots from one sender so a late frame
    routed through a second shard never rolls the collector backwards.
    """

    sequence: int = 0
    stats: tuple[tuple[str, float], ...] = ()

    @property
    def payload_bytes(self) -> int:
        return (
            wire.U64_BYTES
            + wire.COUNT_BYTES
            + sum(
                wire.COUNT_BYTES
                + len(name.encode("utf-8"))
                + wire.F64_BYTES
                for name, _ in self.stats
            )
        )


@dataclass(frozen=True, slots=True)
class TelemetryDigestMessage(Message):
    """One node's t-digest summary of one local metric's samples.

    The fleet collector merges these per-metric across nodes into
    cluster-wide percentiles — the repo's own sketch machinery applied to
    its own operational latencies, at a fraction of the bytes raw-sample
    shipping would cost.  The layout mirrors :class:`DigestMessage`
    (u32 centroid count, exact min/max f64, 16-byte centroid pairs) with
    a UTF-8 metric name and a snapshot ``sequence`` in front; digests are
    cumulative per (sender, metric), so the collector keeps only the
    highest sequence from each sender and merges across senders.
    """

    metric: str = ""
    sequence: int = 0
    centroids: tuple[tuple[float, float], ...] = ()
    minimum: float = 0.0
    maximum: float = 0.0

    @property
    def payload_bytes(self) -> int:
        return (
            wire.COUNT_BYTES
            + len(self.metric.encode("utf-8"))
            + wire.U64_BYTES
            + wire.COUNT_BYTES
            + 2 * wire.F64_BYTES
            + len(self.centroids) * wire.CENTROID_WIRE_BYTES
        )


def batch_events(
    sender: int, window: Window, events: Sequence[Event]
) -> EventBatchMessage:
    """Convenience constructor for a raw-event batch."""
    return EventBatchMessage(sender=sender, window=window, events=tuple(events))
