"""Typed messages with byte-exact serialized sizes.

Network cost in the evaluation is counted in bytes on the wire, so every
message type declares how large its serialized form would be.  The sizes
follow the paper's event layout (8-byte value, 4-byte timestamp, 4-byte id)
plus small fixed headers; what matters for the reproduced figures is that the
*relative* costs of synopses, candidate events and raw events are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.streaming.events import EVENT_WIRE_BYTES, Event
from repro.streaming.windows import Window

__all__ = [
    "MESSAGE_HEADER_BYTES",
    "SYNOPSIS_WIRE_BYTES",
    "Message",
    "EventBatchMessage",
    "SynopsisMessage",
    "SynopsisRequestMessage",
    "WindowReleaseMessage",
    "CandidateRequestMessage",
    "CandidateEventsMessage",
    "GammaUpdateMessage",
    "DigestMessage",
    "QDigestMessage",
    "PartialAggregateMessage",
    "SortedRunMessage",
    "WatermarkMessage",
    "ResultMessage",
]

#: Fixed per-message framing overhead (type tag, sender, window id, length).
MESSAGE_HEADER_BYTES = 24

#: One slice synopsis: first event + last event + count + slice index +
#: slice total (three 4-byte integers on top of two events).
SYNOPSIS_WIRE_BYTES = 2 * EVENT_WIRE_BYTES + 12


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for everything that crosses a channel.

    ``group_id`` multiplexes concurrent query groups over the same
    channels (0 for single-query deployments); its 4 bytes are part of the
    fixed header.
    """

    sender: int
    window: Window
    group_id: int = 0

    @property
    def payload_bytes(self) -> int:
        """Serialized payload size, excluding the fixed header."""
        return 0

    @property
    def wire_bytes(self) -> int:
        """Total serialized size on the wire."""
        return MESSAGE_HEADER_BYTES + self.payload_bytes


@dataclass(frozen=True, slots=True)
class EventBatchMessage(Message):
    """Raw events forwarded upstream (centralized aggregation)."""

    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return len(self.events) * EVENT_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class SortedRunMessage(Message):
    """A fully sorted local window (Desis-style decentralized sorting)."""

    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return len(self.events) * EVENT_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class SynopsisMessage(Message):
    """Dema identification step: slice synopses of one local window."""

    synopses: tuple = ()  # tuple[SliceSynopsis, ...]; typed loosely to avoid a cycle
    local_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return len(self.synopses) * SYNOPSIS_WIRE_BYTES + 8


@dataclass(frozen=True, slots=True)
class CandidateRequestMessage(Message):
    """Dema calculation step: root requests candidate slices by index."""

    slice_indices: tuple[int, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return len(self.slice_indices) * 4


@dataclass(frozen=True, slots=True)
class CandidateEventsMessage(Message):
    """Dema calculation step: the requested candidate events (pre-sorted)."""

    slice_index: int = 0
    events: tuple[Event, ...] = ()

    @property
    def payload_bytes(self) -> int:
        return 4 + len(self.events) * EVENT_WIRE_BYTES


@dataclass(frozen=True, slots=True)
class SynopsisRequestMessage(Message):
    """Root asks a local node to (re)send its synopsis batch for a window.

    Part of the reliability extension: sent when the root's completeness
    timeout fires before every local reported.
    """

    @property
    def payload_bytes(self) -> int:
        return 4


@dataclass(frozen=True, slots=True)
class WindowReleaseMessage(Message):
    """Root tells a local node the window is fully answered; free its state.

    Part of the reliability extension: with retransmissions enabled, local
    nodes retain sealed windows until this acknowledgement arrives.
    """

    @property
    def payload_bytes(self) -> int:
        return 4


@dataclass(frozen=True, slots=True)
class GammaUpdateMessage(Message):
    """Root broadcasts a new slice factor γ for the next window."""

    gamma: int = 2

    @property
    def payload_bytes(self) -> int:
        return 4


@dataclass(frozen=True, slots=True)
class DigestMessage(Message):
    """A serialized quantile sketch (t-digest baseline).

    The payload is ``centroid_count`` (mean, weight) pairs of 8 bytes each.
    """

    centroids: tuple[tuple[float, float], ...] = ()

    @property
    def payload_bytes(self) -> int:
        return len(self.centroids) * 16 + 8


@dataclass(frozen=True, slots=True)
class PartialAggregateMessage(Message):
    """A decomposable function's partial aggregate for one local window.

    The payload is a small fixed-size state (e.g. ``(count, sum, sum_sq)``
    for variance) — the reason decomposable functions aggregate cheaply at
    the edge and non-decomposable ones need Dema.
    """

    state: tuple[float, ...] = ()
    local_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return len(self.state) * 8 + 8


@dataclass(frozen=True, slots=True)
class QDigestMessage(Message):
    """A serialized q-digest: ``(level, index, count)`` tree nodes."""

    nodes: tuple[tuple[int, int, int], ...] = ()
    local_count: int = 0

    @property
    def payload_bytes(self) -> int:
        return len(self.nodes) * 12 + 8


@dataclass(frozen=True, slots=True)
class WatermarkMessage(Message):
    """Event-time progress announcement from a local node."""

    watermark_time: int = 0

    @property
    def payload_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class ResultMessage(Message):
    """Final aggregate emitted by the root (for latency bookkeeping)."""

    value: float = 0.0
    global_window_size: int = 0

    @property
    def payload_bytes(self) -> int:
        return 16


def batch_events(
    sender: int, window: Window, events: Sequence[Event]
) -> EventBatchMessage:
    """Convenience constructor for a raw-event batch."""
    return EventBatchMessage(sender=sender, window=window, events=tuple(events))
