"""Three-layer decentralized topology: stream → local → root.

Mirrors Figure 1 of the paper: data-stream nodes (weak sensors) feed local
nodes (edge switches/routers), which feed a single root node (a powerful
cloud server).  The topology builder wires channels in both directions
between adjacent layers and exposes helpers for the per-layer node sets.

Node-capacity defaults encode the paper's asymmetry: stream nodes are weak,
local nodes are mid-range edge hardware, and the root is a server.  Channels
between the local layer and the root default to the paper's 25 Gbit/s
datacenter links but are configurable down to Wi-Fi-class bandwidths, which
is where Dema's network savings matter most (Section 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.network.channels import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LATENCY_S,
    Channel,
)
from repro.network.simulator import SimulatedNode, Simulator

__all__ = ["NodeRole", "TopologyConfig", "Topology", "relay_groups"]

#: Root node id is fixed; local and stream node ids are assigned from here.
ROOT_NODE_ID = 0


class NodeRole(enum.Enum):
    """Layer a node belongs to in the three-layer topology."""

    STREAM = "stream"
    LOCAL = "local"
    ROOT = "root"
    #: Optional aggregation tier between locals and the root (mesh runs):
    #: a relay merges its children's synopsis batches into combined frames
    #: so root ingress grows with the relay count, not the local count.
    RELAY = "relay"


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Parameters of a simulated deployment.

    Attributes:
        n_local_nodes: Number of edge (local) nodes.
        streams_per_local: Data-stream nodes attached to each local node.
            Defaults to 0 because the benchmark driver plays the stream
            layer directly; set it to deploy explicit sensor nodes.
        root_ops_per_second: CPU budget of the root node.
        local_ops_per_second: CPU budget of each local node.
        stream_ops_per_second: CPU budget of each data-stream node.
        uplink_bandwidth_bps: Bandwidth local → root, bytes/second.
        downlink_bandwidth_bps: Bandwidth root → local, bytes/second.
        edge_bandwidth_bps: Bandwidth stream → local, bytes/second.
        link_latency_s: One-way propagation latency on every link.
        loss_rate: Probability that any root↔local message is lost in
            transit (deterministic per-channel RNG; see ``loss_seed``).
            Requires a reliability-enabled protocol to still produce
            results — see :mod:`repro.core.reliability`.
        loss_seed: Seed for the per-channel loss RNGs.
    """

    n_local_nodes: int = 2
    streams_per_local: int = 0
    root_ops_per_second: float = 2.0e8
    local_ops_per_second: float = 1.0e8
    stream_ops_per_second: float = 2.0e7
    uplink_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    downlink_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    edge_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    link_latency_s: float = DEFAULT_LATENCY_S
    loss_rate: float = 0.0
    loss_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_local_nodes < 1:
            raise ConfigurationError(
                f"need at least one local node, got {self.n_local_nodes}"
            )
        if self.streams_per_local < 0:
            raise ConfigurationError(
                f"streams_per_local must be >= 0, got {self.streams_per_local}"
            )


@dataclass
class Topology:
    """A wired three-layer deployment on a simulator.

    Use :meth:`build` to construct; node objects are supplied by the caller
    through factory callables so that every system (Dema, Scotty, Desis,
    t-digest) can install its own operators on the same physical layout.
    """

    simulator: Simulator
    config: TopologyConfig
    root_id: int
    local_ids: list[int]
    stream_ids: dict[int, list[int]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        simulator: Simulator,
        config: TopologyConfig,
        *,
        root_factory,
        local_factory,
        stream_factory=None,
    ) -> "Topology":
        """Create nodes via the factories and wire all channels.

        Args:
            simulator: Engine to register nodes and channels on.
            config: Deployment parameters.
            root_factory: ``(node_id, ops_per_second) -> SimulatedNode``.
            local_factory: ``(node_id, ops_per_second) -> SimulatedNode``.
            stream_factory: Optional ``(node_id, ops_per_second, local_id) ->
                SimulatedNode``; required when ``streams_per_local > 0``.

        Returns:
            The wired topology.
        """
        root = root_factory(ROOT_NODE_ID, config.root_ops_per_second)
        _require_node(root, "root_factory")
        simulator.add_node(root)

        local_ids = []
        stream_ids: dict[int, list[int]] = {}
        next_id = ROOT_NODE_ID + 1
        for _ in range(config.n_local_nodes):
            local = local_factory(next_id, config.local_ops_per_second)
            _require_node(local, "local_factory")
            simulator.add_node(local)
            local_ids.append(local.node_id)
            next_id += 1

        for local_id in local_ids:
            simulator.connect(
                Channel(
                    local_id,
                    ROOT_NODE_ID,
                    bandwidth_bps=config.uplink_bandwidth_bps,
                    latency_s=config.link_latency_s,
                    loss_rate=config.loss_rate,
                    loss_seed=config.loss_seed,
                )
            )
            simulator.connect(
                Channel(
                    ROOT_NODE_ID,
                    local_id,
                    bandwidth_bps=config.downlink_bandwidth_bps,
                    latency_s=config.link_latency_s,
                    loss_rate=config.loss_rate,
                    loss_seed=config.loss_seed,
                )
            )
            attached = []
            for _ in range(config.streams_per_local):
                if stream_factory is None:
                    raise ConfigurationError(
                        "streams_per_local > 0 requires a stream_factory"
                    )
                stream = stream_factory(
                    next_id, config.stream_ops_per_second, local_id
                )
                _require_node(stream, "stream_factory")
                simulator.add_node(stream)
                simulator.connect(
                    Channel(
                        stream.node_id,
                        local_id,
                        bandwidth_bps=config.edge_bandwidth_bps,
                        latency_s=config.link_latency_s,
                    )
                )
                attached.append(stream.node_id)
                next_id += 1
            stream_ids[local_id] = attached

        return cls(
            simulator=simulator,
            config=config,
            root_id=ROOT_NODE_ID,
            local_ids=local_ids,
            stream_ids=stream_ids,
        )

    def role_of(self, node_id: int) -> NodeRole:
        """Return the layer of ``node_id``.

        Raises:
            ConfigurationError: If the id is not part of this topology.
        """
        if node_id == self.root_id:
            return NodeRole.ROOT
        if node_id in self.local_ids:
            return NodeRole.LOCAL
        for streams in self.stream_ids.values():
            if node_id in streams:
                return NodeRole.STREAM
        raise ConfigurationError(f"node {node_id} is not in this topology")

    def uplink(self, local_id: int) -> Channel:
        """The local → root channel of ``local_id``."""
        return self.simulator.channel(local_id, self.root_id)

    def downlink(self, local_id: int) -> Channel:
        """The root → local channel of ``local_id``."""
        return self.simulator.channel(self.root_id, local_id)


def relay_groups(
    local_ids: "list[int] | tuple[int, ...]", fanin: int
) -> "list[tuple[int, ...]]":
    """Partition locals into contiguous relay groups of at most ``fanin``.

    Deterministic: group ``k`` holds ``local_ids[k*fanin : (k+1)*fanin]``,
    so the same member list always yields the same tree.  ``fanin <= 0``
    means "no relay tier" and returns the empty list.
    """
    if fanin <= 0:
        return []
    ids = tuple(local_ids)
    return [ids[i:i + fanin] for i in range(0, len(ids), fanin)]


def _require_node(candidate, factory_name: str) -> None:
    if not isinstance(candidate, SimulatedNode):
        raise ConfigurationError(
            f"{factory_name} must return a SimulatedNode, got "
            f"{type(candidate).__name__}"
        )
