"""Deterministic discrete-event simulator.

The engine keeps a priority queue of ``(time, seq, action)`` entries; ``seq``
is a tie-breaker that makes execution order fully deterministic.  Nodes never
see wall-clock time — only the simulated clock — so every run of a benchmark
configuration produces identical traffic, latencies and results.

CPU cost model.  Each node owns a :class:`CpuModel` with an
operations-per-second budget.  Handlers report abstract work (e.g. ``n log n``
comparisons for a sort); the model serializes work on the node, so a node
that receives more work per window than its budget allows falls behind — the
mechanism by which centralized baselines bottleneck at the root in the
throughput experiments.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Protocol, runtime_checkable

from repro.errors import ConfigurationError, RoutingError, SimulationError
from repro.network.channels import Channel
from repro.network.messages import Message

# MessageTrace moved to the observability event model; re-exported here so
# ``from repro.network.simulator import MessageTrace`` keeps working.
from repro.obs.events import MessageTrace
from repro.obs.tracer import NOOP_TRACER, Tracer

__all__ = [
    "CpuModel",
    "Fabric",
    "SimulatedNode",
    "Simulator",
    "MessageTrace",
    "sort_cost",
    "merge_cost",
    "receive_ops",
]

#: Abstract operations charged per comparison when bulk-sorting n unsorted
#: elements.  A full comparison sort of a large buffer is random-access and
#: cache-hostile, so it costs several times a sequential merge comparison —
#: this constant factor is what separates a centralized root (sorts
#: everything) from a merging root (Desis) and from Dema's root (merges a
#: few candidate runs).
SORT_OPS_PER_CMP = 4.0

#: Abstract operations charged per comparison when merging pre-sorted runs
#: (sequential access, branch-predictable).
MERGE_OPS_PER_CMP = 1.0

#: Abstract operations charged for ingesting one event (parse + route).
INGEST_OPS = 4.0

#: Abstract operations charged per payload byte when a node receives a
#: message (network deserialization).  At 16 bytes per event this makes
#: receiving one raw event cost 12 ops — deliberately the dominant per-event
#: cost, matching the observation that (de)serialization dominates SPE
#: ingestion and that funnelling every raw event through the root is what
#: bottlenecks centralized aggregation.
RECEIVE_OPS_PER_BYTE = 0.75

#: Fixed per-message receive overhead (framing, dispatch).
RECEIVE_OPS_BASE = 8.0


def receive_ops(payload_bytes: int) -> float:
    """Deserialization cost of receiving a message with this payload size."""
    return RECEIVE_OPS_BASE + RECEIVE_OPS_PER_BYTE * payload_bytes


def sort_cost(n: int) -> float:
    """Comparison cost of sorting ``n`` elements (n log2 n, floored at n)."""
    if n <= 1:
        return float(max(n, 0))
    return SORT_OPS_PER_CMP * n * math.log2(n)


def merge_cost(n: int, runs: int) -> float:
    """Cost of a k-way merge of ``n`` total elements from ``runs`` runs."""
    if n <= 0:
        return 0.0
    if runs <= 1:
        return float(n)
    return MERGE_OPS_PER_CMP * n * math.log2(runs)


class CpuModel:
    """Serialized abstract-work executor for one node."""

    def __init__(self, ops_per_second: float) -> None:
        if ops_per_second <= 0:
            raise ConfigurationError(
                f"ops_per_second must be > 0, got {ops_per_second}"
            )
        self._ops_per_second = ops_per_second
        self._busy_until = 0.0
        self._total_ops = 0.0

    @property
    def ops_per_second(self) -> float:
        """The node's processing budget."""
        return self._ops_per_second

    @property
    def busy_until(self) -> float:
        """Simulated time at which all accepted work completes."""
        return self._busy_until

    @property
    def total_ops(self) -> float:
        """Total abstract operations accepted so far."""
        return self._total_ops

    def execute(self, ops: float, now: float) -> float:
        """Accept ``ops`` units of work at time ``now``; return finish time."""
        if ops < 0:
            raise SimulationError(f"negative work {ops}")
        start = max(now, self._busy_until)
        self._busy_until = start + ops / self._ops_per_second
        self._total_ops += ops
        return self._busy_until


@runtime_checkable
class Fabric(Protocol):
    """The substrate a protocol node sends and schedules through.

    Everything a :class:`SimulatedNode` needs from its host: route a
    message toward a peer and run a callback at a later time.  The
    discrete-event :class:`Simulator` is one implementation; the live
    asyncio runtime (:mod:`repro.runtime.servers`) is another, which is
    what lets the unmodified ``repro.core`` operators drive both the
    simulation and a real cluster.
    """

    def route(self, message: Message, src: int, dst: int, now: float) -> None:
        """Carry ``message`` from ``src`` to ``dst``, starting at ``now``."""
        ...

    def schedule(self, time: float, action: Callable[[float], None]) -> None:
        """Run ``action(now)`` once the clock reaches ``time``."""
        ...


class SimulatedNode:
    """Base class for every node participating in a simulation.

    Subclasses implement :meth:`on_message`; they communicate exclusively via
    :meth:`send`, which routes through the owning fabric's channels.
    """

    def __init__(self, node_id: int, *, ops_per_second: float = 1e9) -> None:
        self._node_id = node_id
        self._cpu = CpuModel(ops_per_second)
        self._simulator: Fabric | None = None
        self._tracer: Tracer = NOOP_TRACER

    @property
    def node_id(self) -> int:
        """Unique id of this node within its simulator."""
        return self._node_id

    @property
    def cpu(self) -> CpuModel:
        """The node's CPU model."""
        return self._cpu

    @property
    def simulator(self) -> Fabric:
        """The fabric this node is attached to (simulator or live runtime).

        Raises:
            SimulationError: If the node has not been attached yet.
        """
        if self._simulator is None:
            raise SimulationError(f"node {self._node_id} is not attached")
        return self._simulator

    def attach(self, fabric: Fabric) -> None:
        """Called by the owning fabric when the node is registered."""
        self._simulator = fabric

    @property
    def tracer(self) -> Tracer:
        """The node's span tracer (the shared no-op tracer by default)."""
        return self._tracer

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; engines call this on every node after build."""
        self._tracer = tracer

    def send(self, message: Message, dst: int, now: float) -> None:
        """Transmit ``message`` to node ``dst`` starting at time ``now``."""
        self.simulator.route(message, self._node_id, dst, now)

    def call_later(
        self, delay: float, action: Callable[[float], None], now: float
    ) -> None:
        """Run ``action`` ``delay`` seconds after ``now`` on the fabric.

        The transport-agnostic face of timers (reliability timeouts and the
        like): the simulator turns this into a queue entry, the live
        runtime into an event-loop timer.
        """
        self.simulator.schedule(now + delay, action)

    def work(self, ops: float, now: float) -> float:
        """Charge abstract CPU work; returns the completion time."""
        return self._cpu.execute(ops, now)

    def on_message(self, message: Message, now: float) -> None:
        """Handle a delivered message at simulated time ``now``."""
        raise NotImplementedError

    def on_start(self, now: float) -> None:
        """Hook invoked once when the simulation starts."""


class Simulator:
    """Priority-queue discrete-event engine with channel routing."""

    def __init__(
        self,
        *,
        trace: Callable[["MessageTrace"], None] | None = None,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self._queue: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._nodes: dict[int, SimulatedNode] = {}
        self._channels: dict[tuple[int, int], Channel] = {}
        self._processed_events = 0
        self._started = False
        self._trace = trace
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        """The run's span tracer (the shared no-op tracer by default)."""
        return self._tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def nodes(self) -> dict[int, SimulatedNode]:
        """All registered nodes, keyed by id."""
        return dict(self._nodes)

    @property
    def channels(self) -> dict[tuple[int, int], Channel]:
        """All registered channels, keyed by (src, dst)."""
        return dict(self._channels)

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def add_node(self, node: SimulatedNode) -> SimulatedNode:
        """Register a node.

        Raises:
            ConfigurationError: If the node id is already taken.
        """
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        node.attach(self)
        return node

    def connect(self, channel: Channel) -> Channel:
        """Register a directed channel.

        Raises:
            ConfigurationError: If either endpoint is unknown or the channel
                already exists.
        """
        key = (channel.src, channel.dst)
        if channel.src not in self._nodes or channel.dst not in self._nodes:
            raise ConfigurationError(
                f"channel {key} references an unregistered node"
            )
        if key in self._channels:
            raise ConfigurationError(f"duplicate channel {key}")
        self._channels[key] = channel
        return channel

    def channel(self, src: int, dst: int) -> Channel:
        """Look up the channel from ``src`` to ``dst``.

        Raises:
            RoutingError: If no such channel is registered.
        """
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise RoutingError(f"no channel from {src} to {dst}") from None

    def schedule(
        self, time: float, action: Callable[[float], None]
    ) -> None:
        """Enqueue ``action`` to run at simulated ``time``.

        Raises:
            SimulationError: If ``time`` is in the simulated past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self._now}"
            )
        heapq.heappush(self._queue, (time, self._seq, action))
        self._seq += 1

    def route(self, message: Message, src: int, dst: int, now: float) -> None:
        """Send ``message`` over the (src, dst) channel; schedules delivery.

        Lost messages (lossy channels) are charged but never delivered.
        """
        channel = self.channel(src, dst)
        delivery = channel.transmit(message, now)
        if self._trace is not None or self._tracer.enabled:
            observed = MessageTrace(
                sent_at=now,
                delivered_at=delivery,
                src=src,
                dst=dst,
                message=message,
            )
            if self._trace is not None:
                self._trace(observed)
            self._tracer.record_message(observed)
        if delivery is None:
            return
        receiver = self._nodes[dst]
        self.schedule(delivery, lambda t: receiver.on_message(message, t))

    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue; returns the final simulated time.

        Args:
            until: Stop once the clock would pass this time (the triggering
                event is left queued).
            max_events: Safety valve against runaway simulations.

        Raises:
            SimulationError: If ``max_events`` is exhausted.
        """
        if not self._started:
            self._started = True
            for node in self._nodes.values():
                node.on_start(self._now)
        while self._queue:
            time, _seq, action = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            action(time)
            self._processed_events += 1
            if max_events is not None and self._processed_events > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a loop"
                )
        return self._now

    def total_network_bytes(self) -> int:
        """Sum of bytes across all channels."""
        return sum(c.stats.bytes for c in self._channels.values())

    def total_network_messages(self) -> int:
        """Sum of messages across all channels."""
        return sum(c.stats.messages for c in self._channels.values())
