"""Point-to-point channels with bandwidth, latency and byte accounting.

A channel models one direction of a link between two simulated nodes.  It is
FIFO: transmissions serialize on the link, so a message's transfer can only
start once the previous message has fully left the sender.  Delivery time is

    start = max(now, link_free_at)
    delivery = start + wire_bytes / bandwidth + latency

Every byte that crosses the channel is counted; the network-cost figures
(Fig. 6a/6b) are sums over these counters.

Channels can optionally be *lossy* (``loss_rate``): a lost message still
occupies the link and is still counted as sent bytes — the packet went out,
it just never arrived — but no delivery happens.  Loss is driven by a
deterministic per-channel RNG so simulations stay reproducible.

Beyond i.i.d. loss, a channel can carry *outage intervals* — scheduled
``[start, end)`` windows of simulated time during which every transmission
is dropped.  Outages are how the fault-injection subsystem
(:mod:`repro.faults`) models node crashes and network partitions on the
simulator: deterministic, seed-independent total loss for the interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, NetworkError
from repro.network.messages import Message

__all__ = ["ChannelStats", "Channel"]

#: 25 Gbit/s in bytes per second — the paper's cluster interconnect.
DEFAULT_BANDWIDTH_BPS = 25e9 / 8

#: Intra-cluster latency assumed for the simulated testbed, in seconds.
DEFAULT_LATENCY_S = 100e-6


@dataclass
class ChannelStats:
    """Cumulative traffic counters for one channel."""

    messages: int = 0
    bytes: int = 0
    events: int = 0
    dropped: int = 0
    #: Subset of ``dropped`` lost to scheduled outages (crashes/partitions)
    #: rather than i.i.d. loss.
    outage_drops: int = 0
    #: Bytes by concrete message class name (e.g. ``"SynopsisMessage"``) —
    #: the per-message-type split the observability report renders.
    bytes_by_type: dict[str, int] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        """Account one transmitted message."""
        self.messages += 1
        self.bytes += message.wire_bytes
        kind = type(message).__name__
        self.bytes_by_type[kind] = (
            self.bytes_by_type.get(kind, 0) + message.wire_bytes
        )
        events = getattr(message, "events", None)
        if events is not None:
            self.events += len(events)


class Channel:
    """One direction of a simulated network link."""

    def __init__(
        self,
        src: int,
        dst: int,
        *,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_s: float = DEFAULT_LATENCY_S,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        outages: Iterable[Sequence[float]] = (),
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigurationError(
                f"bandwidth must be > 0 bytes/s, got {bandwidth_bps}"
            )
        if latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0 s, got {latency_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        self._src = src
        self._dst = dst
        self._bandwidth_bps = bandwidth_bps
        self._latency_s = latency_s
        self._loss_rate = loss_rate
        self._loss_rng = random.Random(f"{loss_seed}:{src}:{dst}")
        self._link_free_at = 0.0
        self._stats = ChannelStats()
        self._outages: list[tuple[float, float]] = []
        for start, end in outages:
            self.add_outage(start, end)

    @property
    def src(self) -> int:
        """Sending node id."""
        return self._src

    @property
    def dst(self) -> int:
        """Receiving node id."""
        return self._dst

    @property
    def bandwidth_bps(self) -> float:
        """Link bandwidth in bytes per second."""
        return self._bandwidth_bps

    @property
    def latency_s(self) -> float:
        """Propagation latency in seconds."""
        return self._latency_s

    @property
    def stats(self) -> ChannelStats:
        """Cumulative traffic counters."""
        return self._stats

    @property
    def busy_until(self) -> float:
        """Simulated time at which the link becomes idle."""
        return self._link_free_at

    @property
    def loss_rate(self) -> float:
        """Probability that a transmitted message never arrives."""
        return self._loss_rate

    @property
    def outages(self) -> tuple[tuple[float, float], ...]:
        """Scheduled total-loss intervals, sorted by start time."""
        return tuple(self._outages)

    def add_outage(self, start_s: float, end_s: float) -> None:
        """Schedule a ``[start_s, end_s)`` interval of total loss.

        Transmissions started inside any outage are dropped
        deterministically (bytes still charged, like probabilistic loss).
        Intervals may overlap; each is validated independently.
        """
        if start_s < 0:
            raise ConfigurationError(
                f"outage start must be >= 0 s, got {start_s}"
            )
        if end_s <= start_s:
            raise ConfigurationError(
                f"outage must end after it starts, got [{start_s}, {end_s})"
            )
        self._outages.append((float(start_s), float(end_s)))
        self._outages.sort()

    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside a scheduled outage."""
        return any(start <= now < end for start, end in self._outages)

    def transmit(self, message: Message, now: float) -> float | None:
        """Account a transmission started at ``now``; return delivery time.

        Returns ``None`` when the message is lost in transit (the bytes are
        still charged — the packet left the sender).

        Raises:
            NetworkError: If ``now`` precedes the channel's last transmission
                start (the simulator must hand times monotonically).
        """
        if now < 0:
            raise NetworkError(f"negative transmission time {now}")
        start = max(now, self._link_free_at)
        transfer = message.wire_bytes / self._bandwidth_bps
        self._link_free_at = start + transfer
        self._stats.record(message)
        if self._outages and self.in_outage(now):
            self._stats.dropped += 1
            self._stats.outage_drops += 1
            return None
        if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
            self._stats.dropped += 1
            return None
        return self._link_free_at + self._latency_s

    def reset_stats(self) -> None:
        """Zero the traffic counters (link occupancy is preserved)."""
        self._stats = ChannelStats()
