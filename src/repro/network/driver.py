"""Drives per-node event streams into simulated local operators.

Every system under evaluation (Dema, Scotty, Desis, t-digest) exposes local
operators with the same two entry points — ``ingest(events, now)`` and
``on_window_complete(window, now)`` — so a single driver can feed identical
workloads to all of them.  The driver schedules event batches at their
event-time instants (simulated seconds = timestamp milliseconds / 1000) and
announces window completion right after the window's last instant, playing
the role of the data-stream layer plus a perfect watermark.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.errors import ConfigurationError
from repro.network.simulator import Simulator
from repro.streaming.events import Event
from repro.streaming.windows import Window, WindowAssigner

__all__ = ["LocalOperator", "BatchSourceDriver", "MS_PER_SECOND"]

#: Event timestamps are milliseconds; the simulator clock runs in seconds.
MS_PER_SECOND = 1000.0


class LocalOperator(Protocol):
    """What the driver requires of a local node operator."""

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Accept a batch of events arriving at simulated time ``now``."""

    def on_window_complete(self, window: Window, now: float) -> None:
        """React to the event-time end of ``window``."""


class BatchSourceDriver:
    """Schedules one node's event stream as timed ingestion batches."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        batch_size: int = 512,
        window_grace_s: float = 1e-6,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if window_grace_s < 0:
            raise ConfigurationError(
                f"window_grace_s must be >= 0, got {window_grace_s}"
            )
        self._simulator = simulator
        self._batch_size = batch_size
        self._window_grace_s = window_grace_s
        self._scheduled_events = 0

    @property
    def scheduled_events(self) -> int:
        """Events scheduled across all :meth:`feed` calls."""
        return self._scheduled_events

    def account_external_events(self, count: int) -> None:
        """Count events injected outside the driver (e.g. sensor nodes)."""
        self._scheduled_events += count

    def feed(
        self,
        operator: LocalOperator,
        events: Sequence[Event],
        assigner: WindowAssigner,
    ) -> list[Window]:
        """Schedule ``events`` into ``operator`` and announce window ends.

        Args:
            operator: The local operator to drive.
            events: The node's stream in non-decreasing timestamp order.
            assigner: Tumbling windows that frame the stream.

        Window completion is *not* scheduled here: in a multi-node deployment
        every local node must announce every global window (a node whose
        local window is empty still sends an empty synopsis batch), so the
        caller unions the windows of all nodes and then calls
        :meth:`announce_windows` per operator.

        Returns:
            The windows this node's events touch, in chronological order.

        Raises:
            ConfigurationError: If timestamps regress.
        """
        windows: set[Window] = set()
        batch: list[Event] = []
        last_timestamp: int | None = None

        def flush(batch_events: list[Event]) -> None:
            arrival = batch_events[-1].timestamp / MS_PER_SECOND
            self._simulator.schedule(
                arrival, lambda now, b=tuple(batch_events): operator.ingest(b, now)
            )

        for event in events:
            if last_timestamp is not None and event.timestamp < last_timestamp:
                raise ConfigurationError(
                    f"event timestamps must be non-decreasing; saw "
                    f"{event.timestamp} after {last_timestamp}"
                )
            last_timestamp = event.timestamp
            windows.update(assigner.assign(event.timestamp))
            # Never let a batch span a window boundary: arrival times must
            # stay within the owning window(s).
            crosses_window = batch and assigner.assign(
                batch[0].timestamp
            ) != assigner.assign(event.timestamp)
            if crosses_window:
                flush(batch)
                self._scheduled_events += len(batch)
                batch = []
            batch.append(event)
            if len(batch) >= self._batch_size:
                flush(batch)
                self._scheduled_events += len(batch)
                batch = []
        if batch:
            flush(batch)
            self._scheduled_events += len(batch)

        return sorted(windows)

    def feed_unordered(
        self,
        operator: LocalOperator,
        arrivals: Sequence[tuple[Event, int]],
        assigner: WindowAssigner,
    ) -> list[Window]:
        """Schedule events by *arrival* time; arrivals may be out of order
        with respect to event time.

        Args:
            operator: The local operator to drive.
            arrivals: ``(event, arrival_ms)`` pairs in any order.
            assigner: Windows framing the stream (by event time).

        Returns:
            The windows the events belong to, in chronological order.
            Combine with :meth:`announce_windows` and a positive
            ``allowed_lateness_ms`` to tolerate the disorder; events whose
            window was sealed before they arrived are dropped by the
            operator and counted as late.
        """
        ordered = sorted(enumerate(arrivals), key=lambda ia: (ia[1][1], ia[0]))
        windows: set[Window] = set()
        batch: list[Event] = []
        batch_arrival = 0

        def flush() -> None:
            arrival_s = batch_arrival / MS_PER_SECOND
            self._simulator.schedule(
                arrival_s,
                lambda now, b=tuple(batch): operator.ingest(b, now),
            )

        for _, (event, arrival_ms) in ordered:
            if arrival_ms < 0:
                raise ConfigurationError(
                    f"negative arrival time {arrival_ms} for {event}"
                )
            windows.update(assigner.assign(event.timestamp))
            # A batch only groups events sharing one arrival instant, so
            # nothing is delivered earlier or later than it arrived.
            if batch and (
                arrival_ms != batch_arrival or len(batch) >= self._batch_size
            ):
                flush()
                self._scheduled_events += len(batch)
                batch = []
            batch.append(event)
            batch_arrival = arrival_ms
        if batch:
            flush()
            self._scheduled_events += len(batch)
        return sorted(windows)

    def announce_windows(
        self,
        operator: LocalOperator,
        windows: Sequence[Window],
        *,
        allowed_lateness_ms: int = 0,
    ) -> None:
        """Schedule window-completion callbacks on ``operator``.

        Call once per operator with the union of all nodes' windows so that
        empty local windows are still announced.  ``allowed_lateness_ms``
        delays completion past the window's event-time end so that
        bounded-delay arrivals can still be folded in.
        """
        for window in windows:
            completion = (
                (window.end + allowed_lateness_ms) / MS_PER_SECOND
                + self._window_grace_s
            )
            self._simulator.schedule(
                completion,
                lambda now, w=window: operator.on_window_complete(w, now),
            )
