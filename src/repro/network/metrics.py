"""Network and CPU accounting for evaluation runs.

The paper's network-cost metric is "the individual cost for each node ...
aggregated across the system" (Section 4).  :class:`NetworkMetrics` snapshots
the per-channel byte counters of a simulator and aggregates them per node,
per direction and per layer; latency statistics are collected from result
records by the harness.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.network.simulator import Simulator

__all__ = ["LinkUsage", "NetworkMetrics", "LatencyStats"]


@dataclass(frozen=True, slots=True)
class LinkUsage:
    """Traffic observed on one directed channel."""

    src: int
    dst: int
    messages: int
    bytes: int
    events: int


@dataclass
class NetworkMetrics:
    """Aggregated traffic snapshot of a simulation."""

    links: list[LinkUsage] = field(default_factory=list)

    @classmethod
    def capture(cls, simulator: Simulator) -> "NetworkMetrics":
        """Snapshot every channel's counters."""
        links = [
            LinkUsage(
                src=src,
                dst=dst,
                messages=channel.stats.messages,
                bytes=channel.stats.bytes,
                events=channel.stats.events,
            )
            for (src, dst), channel in sorted(simulator.channels.items())
        ]
        return cls(links=links)

    @property
    def total_bytes(self) -> int:
        """Bytes summed over every channel."""
        return sum(link.bytes for link in self.links)

    @property
    def total_messages(self) -> int:
        """Messages summed over every channel."""
        return sum(link.messages for link in self.links)

    @property
    def total_events_on_wire(self) -> int:
        """Events that crossed any channel (counted once per hop)."""
        return sum(link.events for link in self.links)

    def bytes_sent_by(self, node_id: int) -> int:
        """Bytes transmitted by ``node_id`` across all its outgoing links."""
        return sum(link.bytes for link in self.links if link.src == node_id)

    def bytes_received_by(self, node_id: int) -> int:
        """Bytes delivered to ``node_id`` across all its incoming links."""
        return sum(link.bytes for link in self.links if link.dst == node_id)

    def bytes_into(self, node_id: int) -> int:
        """Alias of :meth:`bytes_received_by` (root ingress in the figures)."""
        return self.bytes_received_by(node_id)

    @property
    def mean_bytes_per_link(self) -> float:
        """Mean bytes per channel; 0.0 with no channels."""
        if not self.links:
            return 0.0
        return statistics.fmean(link.bytes for link in self.links)

    @property
    def max_link_bytes(self) -> int:
        """Bytes on the busiest channel; 0 with no channels."""
        return max((link.bytes for link in self.links), default=0)

    def diff(self, earlier: "NetworkMetrics") -> "NetworkMetrics":
        """Traffic between two snapshots of the *same* simulator.

        ``NetworkMetrics.capture`` reads cumulative counters; capturing once
        per window boundary and diffing consecutive snapshots yields the
        per-window-interval traffic the paper plots over time.  Links absent
        from ``earlier`` (e.g. channels connected mid-run) count in full.

        Raises:
            ValueError: If any counter went backwards, which means the two
                snapshots are not ordered captures of one simulator.
        """
        baseline = {(link.src, link.dst): link for link in earlier.links}
        links = []
        for link in self.links:
            before = baseline.get((link.src, link.dst))
            if before is None:
                links.append(link)
                continue
            delta = LinkUsage(
                src=link.src,
                dst=link.dst,
                messages=link.messages - before.messages,
                bytes=link.bytes - before.bytes,
                events=link.events - before.events,
            )
            if delta.messages < 0 or delta.bytes < 0 or delta.events < 0:
                raise ValueError(
                    f"channel ({link.src}, {link.dst}) counters decreased; "
                    "'earlier' is not an earlier snapshot of this simulator"
                )
            links.append(delta)
        return NetworkMetrics(links=links)

    def reduction_vs(self, other: "NetworkMetrics") -> float:
        """Fractional byte reduction of ``self`` relative to ``other``.

        Returns 0.0 when ``other`` carried no traffic.
        """
        if other.total_bytes == 0:
            return 0.0
        return 1.0 - self.total_bytes / other.total_bytes


@dataclass
class LatencyStats:
    """Summary statistics over per-window result latencies (seconds)."""

    samples: list[float] = field(default_factory=list)

    def add(self, latency_s: float) -> None:
        """Record one latency sample."""
        self.samples.append(latency_s)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency; 0.0 with no samples."""
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def p50(self) -> float:
        """Median latency; 0.0 with no samples."""
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def p95(self) -> float:
        """95th-percentile latency; 0.0 with no samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[index]

    @property
    def max(self) -> float:
        """Largest latency; 0.0 with no samples."""
        return max(self.samples) if self.samples else 0.0
