"""Explicit data-stream sensor nodes (the bottom tier of Figure 1).

The benchmark driver normally plays the stream layer by calling local-node
``ingest`` directly — cheap and sufficient for the figures.  This module
provides the *physical* alternative: weak sensor nodes that transmit their
readings to the local node over a real simulated channel, paying bytes,
bandwidth, latency and CPU on both ends.  Local operators accept the
resulting :class:`~repro.network.messages.EventBatchMessage`s through their
``on_message`` path, so the whole three-tier topology of the paper can be
exercised end to end.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.messages import EventBatchMessage, Message
from repro.network.simulator import INGEST_OPS, SimulatedNode
from repro.streaming.events import Event

__all__ = ["StreamSensorNode"]


class StreamSensorNode(SimulatedNode):
    """A weak sensor that produces events and ships them to its local node.

    Load the sensor with :meth:`load` before the simulation starts; it
    schedules one transmission per batch at the batch's last event time.
    """

    def __init__(
        self,
        node_id: int,
        *,
        local_id: int,
        ops_per_second: float = 2e7,
        batch_size: int = 256,
        max_batch_delay_ms: int = 20,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if max_batch_delay_ms < 1:
            raise ConfigurationError(
                f"max_batch_delay_ms must be >= 1, got {max_batch_delay_ms}"
            )
        self._local_id = local_id
        self._batch_size = batch_size
        self._max_batch_delay_ms = max_batch_delay_ms
        self._events_produced = 0

    @property
    def local_id(self) -> int:
        """The edge node this sensor reports to."""
        return self._local_id

    @property
    def max_batch_delay_ms(self) -> int:
        """Longest a reading may sit in the transmit buffer."""
        return self._max_batch_delay_ms

    @property
    def events_produced(self) -> int:
        """Events scheduled for transmission so far."""
        return self._events_produced

    def load(self, events: Sequence[Event]) -> None:
        """Schedule the sensor's readings for transmission.

        Args:
            events: The sensor's stream in non-decreasing timestamp order.

        Raises:
            ConfigurationError: If timestamps regress.
        """
        batch: list[Event] = []
        last_timestamp: int | None = None
        for event in events:
            if last_timestamp is not None and event.timestamp < last_timestamp:
                raise ConfigurationError(
                    f"sensor timestamps must be non-decreasing; saw "
                    f"{event.timestamp} after {last_timestamp}"
                )
            last_timestamp = event.timestamp
            # Flush before the oldest buffered reading grows stale; this
            # also bounds how far a batch can spill past a window boundary.
            if batch and (
                event.timestamp - batch[0].timestamp
                >= self._max_batch_delay_ms
            ):
                self._schedule_batch(tuple(batch))
                batch = []
            batch.append(event)
            if len(batch) >= self._batch_size:
                self._schedule_batch(tuple(batch))
                batch = []
        if batch:
            self._schedule_batch(tuple(batch))

    def _schedule_batch(self, batch: tuple[Event, ...]) -> None:
        send_time = batch[-1].timestamp / 1000.0
        self._events_produced += len(batch)
        self.simulator.schedule(
            send_time, lambda now, b=batch: self._transmit(b, now)
        )

    def _transmit(self, batch: tuple[Event, ...], now: float) -> None:
        finish = self.work(INGEST_OPS * len(batch), now)
        message = EventBatchMessage(
            sender=self.node_id,
            window=_span_of(batch),
            events=batch,
        )
        self.send(message, self._local_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        raise ConfigurationError(
            f"sensor {self.node_id} does not accept messages, got "
            f"{type(message).__name__}"
        )


def _span_of(batch: tuple[Event, ...]):
    """An advisory window tag covering the batch (receivers re-assign)."""
    from repro.streaming.windows import Window

    start = batch[0].timestamp
    end = batch[-1].timestamp + 1
    return Window(start, end)
