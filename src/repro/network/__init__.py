"""Simulated decentralized network: the reproduction's testbed.

The paper evaluates on a 9-node cluster with 25 Gbit/s Ethernet.  This
subpackage replaces that hardware with a deterministic discrete-event
simulator: nodes exchange typed messages over channels with configurable
bandwidth and latency, every message has a byte-exact serialized size, and
each node owns a CPU model with a configurable operations-per-second budget.
All evaluation metrics — throughput, latency, network cost — are read off the
simulator clock and the channel byte counters.
"""

from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    DigestMessage,
    EventBatchMessage,
    GammaUpdateMessage,
    Message,
    ResultMessage,
    SortedRunMessage,
    SynopsisMessage,
    WatermarkMessage,
)
from repro.network.channels import Channel, ChannelStats
from repro.network.simulator import Simulator, SimulatedNode, CpuModel
from repro.network.topology import Topology, TopologyConfig, NodeRole
from repro.network.metrics import NetworkMetrics, LinkUsage

__all__ = [
    "Message",
    "EventBatchMessage",
    "SynopsisMessage",
    "CandidateRequestMessage",
    "CandidateEventsMessage",
    "GammaUpdateMessage",
    "DigestMessage",
    "SortedRunMessage",
    "WatermarkMessage",
    "ResultMessage",
    "Channel",
    "ChannelStats",
    "Simulator",
    "SimulatedNode",
    "CpuModel",
    "Topology",
    "TopologyConfig",
    "NodeRole",
    "NetworkMetrics",
    "LinkUsage",
]
