"""Exception hierarchy for the Dema reproduction.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WindowError",
    "AggregationError",
    "SliceError",
    "IdentificationError",
    "CalculationError",
    "NetworkError",
    "RoutingError",
    "SimulationError",
    "CodecError",
    "TransportError",
    "SketchError",
    "GeneratorError",
    "HarnessError",
    "QueryError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class WindowError(ReproError):
    """A window definition or window assignment is invalid."""


class AggregationError(ReproError):
    """An aggregation function was misused (e.g. empty-window quantile)."""


class SliceError(ReproError):
    """A local window could not be sliced, or a synopsis is malformed."""


class IdentificationError(ReproError):
    """The identification step received inconsistent synopses."""


class CalculationError(ReproError):
    """The calculation step could not select the requested rank."""


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class RoutingError(NetworkError):
    """A message was addressed to an unknown node or channel."""


class SimulationError(NetworkError):
    """The discrete-event simulator reached an inconsistent state."""


class CodecError(NetworkError):
    """A frame could not be encoded or decoded (bad version, tag, length)."""


class TransportError(NetworkError):
    """A live transport failed (peer gone, stream closed, queue overrun)."""


class SketchError(ReproError):
    """A quantile sketch (t-digest / q-digest) was misused."""


class GeneratorError(ReproError):
    """The workload generator received invalid parameters."""


class HarnessError(ReproError):
    """The benchmark harness could not complete a measurement."""


class QueryError(ReproError):
    """A query spec is invalid or its lifecycle was violated."""
