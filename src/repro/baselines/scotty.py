"""Scotty-style centralized aggregation baseline.

Scotty's general stream slicing cannot pre-aggregate non-decomposable
functions, so for quantiles it degenerates to centralized aggregation: local
nodes forward every raw event to the root as it arrives, and the root sorts
the complete global window when it closes (the paper notes Scotty matches
native Flink for single-window processing).  This system is also the exact
ground truth of the accuracy experiment (Fig. 7b).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AggregationError
from repro.network.messages import (
    EventBatchMessage,
    Message,
    WatermarkMessage,
)
from repro.network.simulator import (
    INGEST_OPS,
    SimulatedNode,
    receive_ops,
    sort_cost,
)
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import Event, event_key
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.baselines.base import BaselineRootMixin

__all__ = ["ScottyLocalNode", "ScottyRootNode"]


class ScottyLocalNode(SimulatedNode):
    """Local operator that forwards raw events immediately."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._events_ingested = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Forward the batch upstream unchanged."""
        self._events_ingested += len(events)
        finish = self.work(INGEST_OPS * len(events), now)
        if events:
            # The window tag is advisory; the root files each event by its
            # own timestamp, so mixed-window batches are fine.
            window = self._assigner.assign(events[0].timestamp)[0]
            message = EventBatchMessage(
                sender=self.node_id, window=window, events=tuple(events)
            )
            self.send(message, self._root_id, finish)
        return finish

    def on_window_complete(self, window: Window, now: float) -> None:
        """Announce event-time progress so the root can close the window."""
        self.send(
            WatermarkMessage(
                sender=self.node_id, window=window, watermark_time=window.end
            ),
            self._root_id,
            now,
        )

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"Scotty local node received unexpected {type(message).__name__}"
        )


class ScottyRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator: buffers all raw events, sorts, selects the quantile."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._query = query
        self._assigner = query.assigner()
        self._buffers: dict[Window, list[Event]] = {}
        self._watermarks: dict[Window, set[int]] = {}
        self._closed: set[Window] = set()
        self._late_events = 0

    @property
    def open_windows(self) -> int:
        """Windows still awaiting events or watermarks."""
        return len(self._watermarks) + sum(
            1 for w in self._buffers if w not in self._watermarks
        )

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already closed."""
        return self._late_events

    def on_message(self, message: Message, now: float) -> None:
        """Buffer raw events; close windows once all locals reported.

        Events are filed by their own event-time windows — the batch's
        window tag is advisory, so batches may mix windows (out-of-order
        streams).
        """
        if isinstance(message, EventBatchMessage):
            ops = receive_ops(message.payload_bytes)
            ops += INGEST_OPS * len(message.events)
            self.work(ops, now)
            for event in message.events:
                window = self._assigner.assign(event.timestamp)[0]
                if window in self._closed:
                    self._late_events += 1
                    continue
                self._buffers.setdefault(window, []).append(event)
        elif isinstance(message, WatermarkMessage):
            seen = self._watermarks.setdefault(message.window, set())
            seen.add(message.sender)
            if len(seen) == len(self._local_ids):
                self._close(message.window, now)
        else:
            raise AggregationError(
                f"Scotty root received unexpected {type(message).__name__}"
            )

    def _close(self, window: Window, now: float) -> None:
        self._watermarks.pop(window, None)
        self._closed.add(window)
        events = self._buffers.pop(window, [])
        if not events:
            self._emit(window, None, 0, now)
            return
        finish = self.work(sort_cost(len(events)), now)
        if self._tracer.enabled:
            self._tracer.record(
                "sort",
                self.node_id,
                now,
                finish,
                window=window,
                events=len(events),
            )
        ordered = sorted(events, key=event_key)
        rank = quantile_rank(self._query.q, len(ordered))
        self._emit(window, ordered[rank - 1].value, len(ordered), finish)
