"""Desis baseline: decentralized sorting, centralized merge.

Desis performs partial aggregation at the edge for decomposable functions;
for quantiles the paper's authors modified it so that local nodes sort their
windows and the root merges the pre-sorted runs.  Network cost equals
centralized aggregation — every event still crosses the wire — but the root
replaces an O(n log n) sort with an O(n log r) merge over r runs, and the
sorting cost moves to the edge.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.errors import AggregationError
from repro.network.messages import EventBatchMessage, Message, SortedRunMessage
from repro.network.simulator import (
    INGEST_OPS,
    SimulatedNode,
    merge_cost,
    receive_ops,
)
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import Event, event_key
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.core.sorted_window import SortedLocalWindow
from repro.baselines.base import BaselineRootMixin

__all__ = ["DesisLocalNode", "DesisRootNode"]


class DesisLocalNode(SimulatedNode):
    """Local operator: incrementally sorts windows, ships full sorted runs."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._open: dict[Window, SortedLocalWindow] = {}
        self._completed: set[Window] = set()
        self._events_ingested = 0
        self._late_events = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already shipped."""
        return self._late_events

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Insert events into their window's sorted buffer.

        Sorting is incremental, so the per-event insertion cost is charged
        here — the same model as Dema's local node.
        """
        batch_counts: dict[Window, int] = {}
        sizes: dict[Window, int] = {}
        for event in events:
            window = self._assigner.assign(event.timestamp)[0]
            if window in self._completed:
                self._late_events += 1
                continue
            sorted_window = self._open.setdefault(window, SortedLocalWindow())
            sorted_window.add(event)
            batch_counts[window] = batch_counts.get(window, 0) + 1
            sizes[window] = len(sorted_window)
        self._events_ingested += len(events)
        insert_ops = sum(
            count * math.log2(max(sizes[window], 2))
            for window, count in batch_counts.items()
        )
        return self.work(INGEST_OPS * len(events) + insert_ops, now)

    def on_window_complete(self, window: Window, now: float) -> None:
        """Seal the window and ship the entire sorted run upstream."""
        if window in self._completed:
            return
        self._completed.add(window)
        sorted_window = self._open.pop(window, SortedLocalWindow())
        events = sorted_window.seal()
        finish = now
        message = SortedRunMessage(
            sender=self.node_id, window=window, events=tuple(events)
        )
        self.send(message, self._root_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"Desis local node received unexpected {type(message).__name__}"
        )


class DesisRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator: k-way merges sorted runs and selects the quantile."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._query = query
        self._runs: dict[Window, dict[int, tuple[Event, ...]]] = {}

    @property
    def open_windows(self) -> int:
        """Windows still awaiting sorted runs."""
        return len(self._runs)

    def on_message(self, message: Message, now: float) -> None:
        """Collect one sorted run per local node, then merge and answer."""
        if not isinstance(message, SortedRunMessage):
            raise AggregationError(
                f"Desis root received unexpected {type(message).__name__}"
            )
        self.work(receive_ops(message.payload_bytes), now)
        runs = self._runs.setdefault(message.window, {})
        if message.sender in runs:
            raise AggregationError(
                f"duplicate sorted run from node {message.sender} for "
                f"window {message.window}"
            )
        runs[message.sender] = message.events
        if len(runs) == len(self._local_ids):
            self._close(message.window, now)

    def _close(self, window: Window, now: float) -> None:
        runs = self._runs.pop(window)
        total = sum(len(run) for run in runs.values())
        if total == 0:
            self._emit(window, None, 0, now)
            return
        non_empty = [run for run in runs.values() if run]
        finish = self.work(merge_cost(total, len(non_empty)), now)
        if self._tracer.enabled:
            self._tracer.record(
                "merge",
                self.node_id,
                now,
                finish,
                window=window,
                events=total,
                runs=len(non_empty),
            )
        merged = list(heapq.merge(*non_empty, key=event_key))
        rank = quantile_rank(self._query.q, total)
        self._emit(window, merged[rank - 1].value, total, finish)
